"""API-evolution helpers.

The public configuration dataclasses (:class:`ExperimentSettings`,
:class:`RunSpec`) are keyword-only: passing fields positionally silently
reorders them when fields are added — exactly the class of bug behind
the positional-settings crash fixed in PR 1.  :func:`keyword_only`
enforces that at the constructor while keeping one release of grace for
legacy callers: positional arguments still map onto the declared field
order, but emit a :class:`DeprecationWarning` and will become a
``TypeError`` in a future release.
"""

from __future__ import annotations

import dataclasses
import functools
import warnings

__all__ = ["deprecated", "keyword_only"]


def keyword_only(cls):
    """Class decorator making a dataclass's ``__init__`` keyword-only.

    Positional calls are deprecated, not (yet) rejected: they warn and
    are mapped onto the declared field order, so behaviour is
    well-defined during the migration window.
    """
    fields = [f.name for f in dataclasses.fields(cls)]
    original = cls.__init__

    @functools.wraps(original)
    def __init__(self, *args, **kwargs):
        if args:
            warnings.warn(
                f"positional arguments to {cls.__name__}() are deprecated; "
                "pass every field by keyword",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > len(fields):
                raise TypeError(
                    f"{cls.__name__}() takes at most {len(fields)} "
                    f"arguments ({len(args)} given)"
                )
            for name, value in zip(fields, args):
                if name in kwargs:
                    raise TypeError(
                        f"{cls.__name__}() got multiple values for "
                        f"argument {name!r}"
                    )
                kwargs[name] = value
        original(self, **kwargs)

    cls.__init__ = __init__
    return cls


def deprecated(reason: str):
    """Mark a class or function as deprecated.

    Instantiating the class (or calling the function) emits a
    :class:`DeprecationWarning` carrying *reason*, which should name the
    replacement.  Behaviour is otherwise unchanged — one release of
    grace before removal.
    """

    def decorate(obj):
        message = f"{obj.__name__} is deprecated: {reason}"
        if isinstance(obj, type):
            original = obj.__init__

            @functools.wraps(original)
            def __init__(self, *args, **kwargs):
                warnings.warn(message, DeprecationWarning, stacklevel=2)
                original(self, *args, **kwargs)

            obj.__init__ = __init__
            return obj

        @functools.wraps(obj)
        def wrapper(*args, **kwargs):
            warnings.warn(message, DeprecationWarning, stacklevel=2)
            return obj(*args, **kwargs)

        return wrapper

    return decorate
