"""Cluster and cost-model configuration.

The single deliberate calibration (DESIGN.md §5): a worker node has 16
cores and steady message processing consumes ~75 % of them, matching the
paper's reported utilization.  Everything the evaluation reproduces —
the compaction-thread knee at 4, the ~1 s drain-out delay, the flush
knee at 16 — follows from that one anchor plus the per-MB cost constants
below, whose values are ordinary for the hardware class in Figure 4(c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .errors import ConfigurationError
from .storage.backend import StorageProfile, TMPFS

__all__ = ["CostModel", "ClusterConfig", "CheckpointConfig"]


@dataclass(frozen=True)
class CostModel:
    """Converts logical work into simulated resource demand."""

    #: CPU-seconds per message through one stage instance.  With 16
    #: cores/node, 15 000 msg/s/node into s0 *and* 15 000 msg/s/node
    #: into s1, this yields the paper's ~75 % steady utilization:
    #: 30 000 × 0.0004 = 12 of 16 cores.
    cpu_seconds_per_message: float = 0.0004
    #: CPU-seconds per MB of memtable serialized by a flush (iterate,
    #: serialize, checksum — JVM-side costs included).
    flush_cpu_seconds_per_mb: float = 0.10
    #: CPU-seconds per MB of compaction input.  An *effective* constant:
    #: it absorbs the k-way merge itself plus the per-checkpoint overheads
    #: around it (JNI crossings, many small L0 files, index/filter
    #: rebuilds, state re-registration) that dominate when inputs are a
    #: few MB per job, as they are under continuous checkpointing.
    compaction_cpu_seconds_per_mb: float = 0.40
    #: Bytes written to the device per input byte compacted (read +
    #: rewrite; reads are charged at the read/write bandwidth ratio).
    compaction_write_amplification: float = 1.6
    #: Relative lock-contention overhead added to flush work for every
    #: flush thread beyond the core count (the over-allocation penalty
    #: of §4.2.1, after [52]).
    flush_overallocation_overhead: float = 0.5
    #: Latency every message pays outside queueing: Kafka hop, network,
    #: (de)serialization, output batching.  Sets the 0.2–0.4 s floor
    #: visible in Figure 3.
    base_latency_seconds: float = 0.22

    def __post_init__(self) -> None:
        for name in (
            "cpu_seconds_per_message",
            "flush_cpu_seconds_per_mb",
            "compaction_cpu_seconds_per_mb",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.compaction_write_amplification < 1.0:
            raise ConfigurationError("write amplification must be >= 1")

    def flush_cpu_work(self, nbytes: float, threads: int, cores: int) -> float:
        """CPU-seconds for flushing *nbytes*, with over-allocation
        penalty when *threads* exceeds *cores*."""
        overhead = 1.0 + self.flush_overallocation_overhead * max(
            0.0, threads / cores - 1.0
        )
        return (nbytes / 1e6) * self.flush_cpu_seconds_per_mb * overhead

    def compaction_cpu_work(self, input_bytes: float) -> float:
        return (input_bytes / 1e6) * self.compaction_cpu_seconds_per_mb

    def compaction_io_mb(self, input_bytes: float) -> float:
        return (input_bytes / 1e6) * self.compaction_write_amplification


@dataclass(frozen=True)
class ClusterConfig:
    """The worker fleet (Figure 4(b)/(c))."""

    num_nodes: int = 4
    cores_per_node: int = 16
    storage: StorageProfile = TMPFS
    #: HDFS uplink bandwidth for asynchronous checkpoint backup.
    backup_uplink_mb_s: float = 500.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        if self.cores_per_node < 1:
            raise ConfigurationError("cores_per_node must be >= 1")

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.cores_per_node


@dataclass(frozen=True)
class CheckpointConfig:
    """Flink's continuous-checkpointing knobs."""

    #: Seconds between checkpoint triggers (16 s in §3.2, 8 s in §3.3+§5).
    interval_s: float = 8.0
    #: Offset of the first checkpoint from run start.
    first_at_s: float = 8.0
    #: Whether a checkpoint may fire while the previous one still has
    #: unfinished flushes (Flink allows it by default).
    allow_overlap: bool = True
    #: Incremental checkpoints (RocksDB backend default): each
    #: checkpoint only flushes the memtable delta.  ``False`` models a
    #: full-snapshot backend that serializes the *entire* keyed state
    #: every checkpoint — the related-work configuration ([8]) whose
    #: avoidance is one reason LSM backends are popular, and which makes
    #: every ShadowSync window proportionally heavier.
    incremental: bool = True
    #: Abort a checkpoint whose flushes have not all acked within this
    #: many seconds of its trigger (Flink's checkpoint timeout).  ``None``
    #: (the default) never times out — aborts then only happen on worker
    #: crashes, keeping fault-free runs byte-identical to earlier
    #: versions.
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigurationError("checkpoint interval must be positive")
        if self.first_at_s < 0:
            raise ConfigurationError("first checkpoint cannot be negative")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("checkpoint timeout must be positive")
