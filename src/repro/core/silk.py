"""A SILK-style I/O scheduler — the related-work baseline.

SILK (Balmau et al., USENIX ATC '19, the paper's reference [3])
mitigates latency spikes *within one* LSM store by scheduling internal
I/O: flushes get priority, lower-level compactions are preempted or
throttled while client-critical work is pending, and compaction uses
spare bandwidth.  The paper argues (§7) that such single-store methods
reduce burst *intensity* but cannot remove ShadowSync, because the
synchronization happens *across hundreds of stores* that each look idle
to their own scheduler.

This module implements the transferable essence of SILK on our engine
so the claim is testable:

* compactions are **paused while any flush is active** on the node
  (flush priority), and
* the compaction pool is **throttled to a fraction of one core's worth
  of parallelism** while the message backlog is high (spare-resource
  scheduling), here approximated with a small fixed pool.

Used via :meth:`SilkPolicy.as_mitigation_plan` plus
:func:`install_silk_pauses` on a built job; see the ablation benchmark
``benchmarks/test_ablation_silk_baseline.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError
from .mitigation import MitigationPlan

__all__ = ["SilkPolicy", "install_silk_pauses"]


@dataclass(frozen=True)
class SilkPolicy:
    """Parameters of the SILK-like scheduler."""

    #: Compaction pool size while the system is busy (SILK keeps
    #: low-level compactions on minimal resources).
    throttled_compaction_threads: int = 2
    #: Seconds to keep compactions paused after the last flush of a
    #: cluster completes (hysteresis so interleaved flushes don't
    #: release the pause early).
    pause_hysteresis_s: float = 0.2

    def __post_init__(self) -> None:
        if self.throttled_compaction_threads < 1:
            raise ConfigurationError("need >= 1 compaction thread")
        if self.pause_hysteresis_s < 0:
            raise ConfigurationError("hysteresis must be >= 0")

    def as_mitigation_plan(self) -> MitigationPlan:
        """The static half of SILK: a small compaction pool.

        Deliberately *not* randomized and with no drain delay — SILK
        schedules I/O, it does not desynchronize triggers.
        """
        return MitigationPlan(
            compaction_threads=self.throttled_compaction_threads
        )


class _FlushPauser:
    """Pauses a node's compaction pool while flushes are active."""

    def __init__(self, sim, node, policy: SilkPolicy) -> None:
        self.sim = sim
        self.node = node
        self.policy = policy
        self._active_flushes = 0
        self._restore_event = None
        self._paused_size = None
        node.flush_pool.observers.append(self._on_flush)

    def _on_flush(self, job, what: str) -> None:
        if what == "start":
            self._active_flushes += 1
            self._pause()
        elif what == "end":
            self._active_flushes -= 1
            if self._active_flushes == 0:
                self._schedule_restore()

    def _pause(self) -> None:
        if self._restore_event is not None:
            self._restore_event.cancel()
            self._restore_event = None
        if self._paused_size is None:
            self._paused_size = self.node.compaction_pool.size
            # a size-0 pool is not allowed; "paused" = one thread that
            # only advances already-running jobs (SILK never aborts a
            # running compaction either)
            self.node.compaction_pool.resize(1)

    def _schedule_restore(self) -> None:
        if self._restore_event is not None:
            self._restore_event.cancel()
        self._restore_event = self.sim.schedule_after(
            self.policy.pause_hysteresis_s, self._restore
        )

    def _restore(self) -> None:
        self._restore_event = None
        if self._paused_size is not None:
            self.node.compaction_pool.resize(self._paused_size)
            self._paused_size = None


def install_silk_pauses(job, policy: SilkPolicy) -> List[_FlushPauser]:
    """Attach the dynamic half of SILK (flush-priority pausing) to a
    built :class:`~repro.stream.engine.StreamJob`."""
    return [_FlushPauser(job.sim, node, policy) for node in job.nodes]
