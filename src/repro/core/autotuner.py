"""Auto-tuning: online mitigation, and offline joint-space search.

The paper's mitigations are static configuration.  A production
deployment wants them applied *without a restart*: watch the running
job, and when the ShadowSync signature appears (periodic compaction
bursts synchronized with checkpoints), switch the stores to the
randomized trigger and install the drain-time delay on the fly.
:class:`OnlineAutoTuner` does exactly that.

Both interventions are safe mid-run because the engine reads them
dynamically: the L0 trigger policy is consulted at every compaction
pick, and the delay policy at every flush completion.

>>> job = build_traffic_job(...)
>>> tuner = OnlineAutoTuner()
>>> tuner.attach(job)            # before run(); acts during the run
>>> result = job.run(300.0)
>>> tuner.activated_at           # simulated time the mitigations went live

:func:`tune` is the *offline* half: it searches the joint mitigation
space — randomized-threshold spread α × compaction delay T × pool
sizes × compaction/scheduling policy (the mitigation zoo of
:mod:`repro.lsm.policies`) — through the parallel executor and result
cache, runs Kneedle knee detection on the p99.9-vs-threads curve, and
emits a serializable :class:`TunedConfig` artifact plus the headline
table (``repro tune`` on the command line).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..serialize import register
from .delay import estimate_drain_time
from .mitigation import MitigationPlan
from .thresholds import RandomizedL0Trigger

__all__ = ["OnlineAutoTuner", "TunedConfig", "TuneReport", "tune"]


class OnlineAutoTuner:
    """Watches checkpoints; activates §4.1 mitigations when ShadowSync
    is observed.

    Detection rule (evaluated after every checkpoint, once at least
    ``observe_checkpoints`` have passed): if any single checkpoint
    period carried at least ``burst_threshold`` compactions, the
    triggers are synchronized — randomize them and add the estimated
    drain-time delay.

    ``burst_threshold`` must sit above the well-spread steady rate
    (instances / cycle length, ≈32 for the paper's 129 instances) and
    below a synchronized per-stage burst (64); the default of 56 does.
    """

    def __init__(
        self,
        observe_checkpoints: int = 5,
        burst_threshold: int = 56,
        trigger_spread: int = 4,
        min_delay_s: float = 0.25,
        max_delay_s: float = 3.0,
    ) -> None:
        if observe_checkpoints < 1:
            raise ConfigurationError("observe_checkpoints must be >= 1")
        if burst_threshold < 1:
            raise ConfigurationError("burst_threshold must be >= 1")
        self.observe_checkpoints = observe_checkpoints
        self.burst_threshold = burst_threshold
        self.trigger_spread = trigger_spread
        self.min_delay_s = min_delay_s
        self.max_delay_s = max_delay_s

        self.activated_at: Optional[float] = None
        self.chosen_delay_s: Optional[float] = None
        self._job = None
        self._seen_checkpoints: List[float] = []

    # ------------------------------------------------------------------

    def attach(self, job) -> None:
        """Hook into *job* (before ``job.run``)."""
        if self._job is not None:
            raise ConfigurationError("tuner already attached")
        self._job = job
        job.coordinator.on_trigger.append(self._on_checkpoint)

    @property
    def active(self) -> bool:
        return self.activated_at is not None

    # ------------------------------------------------------------------

    def _on_checkpoint(self, time: float) -> None:
        self._seen_checkpoints.append(time)
        if self.active or len(self._seen_checkpoints) < self.observe_checkpoints:
            return
        if self._shadowsync_observed():
            self._activate(time)

    def _shadowsync_observed(self) -> bool:
        counts = self._job.collector.spans.per_cycle_counts(
            self._seen_checkpoints, kind="compaction", by="submit"
        )
        return any(c >= self.burst_threshold for c in counts.values())

    def _activate(self, now: float) -> None:
        job = self._job
        self.activated_at = now

        # 1. randomize every store's L0 trigger (§4.1, technique 1)
        for stage in job.stages:
            for instance in stage.instances:
                store = instance.store
                if store is None:
                    continue
                rng = job.sim.rng.stream(f"autotune-trigger/{instance.name}")
                store.options.l0_trigger_policy = RandomizedL0Trigger(
                    store.options.l0_compaction_trigger,
                    self.trigger_spread,
                    rng,
                )

        # 2. install the drain-time delay (§4.1, technique 2), estimated
        # from the flush phase of the most recent checkpoint (Eq. 2)
        delay = self._estimate_delay()
        self.chosen_delay_s = delay
        policy = job.backend.delay_policy
        policy.delay_s = delay
        policy.auto = False

    def _estimate_delay(self) -> float:
        job = self._job
        last_cp = self._seen_checkpoints[-2]
        flushes = [
            s
            for s in job.collector.spans.spans(kind="flush")
            if s.submit is not None and last_cp <= s.submit < last_cp + 2.0
        ]
        if not flushes:
            return self.min_delay_s
        phase = max(f.end for f in flushes) - min(f.start for f in flushes)
        node = job.nodes[0]
        arrival = sum(
            flow.arrival_rate
            for stage in job.stages
            for name, flow in stage.flows.items()
            if name == node.name
        )
        capacity_msgs = node.cores / job.cost.cpu_seconds_per_message
        drain = max(capacity_msgs - arrival, arrival * 0.1)
        estimate = estimate_drain_time(arrival, phase, drain,
                                       blocked_fraction=0.5)
        return min(max(estimate, self.min_delay_s), self.max_delay_s)


# ----------------------------------------------------------------------
# offline joint-space tuning
# ----------------------------------------------------------------------


@register
@dataclass
class TunedConfig:
    """The artifact :func:`tune` emits: the winning configuration.

    ``mitigation`` is the plain-dict form of the winning
    :class:`~repro.core.mitigation.MitigationPlan` — feed it back with
    ``MitigationPlan(**config.mitigation)``.
    """

    scenario: str = "baseline_traffic"
    label: str = ""
    policy: str = "reference"
    mitigation: Dict = field(default_factory=dict)
    p50: float = 0.0
    p99: float = 0.0
    p999: float = 0.0
    peak_p999: float = 0.0
    baseline_p999: float = 0.0
    paper_p999: float = 0.0
    #: Fractional p99.9 improvement over the paper's combined
    #: mitigation (positive = the learned config is better).
    improvement_vs_paper: float = 0.0
    #: Kneedle knee of the winner-policy p99.9-vs-compaction-threads
    #: curve (``None`` when the curve has no knee or too few points).
    knee_compaction_threads: Optional[float] = None
    seed: int = 1
    duration_s: float = 0.0
    warmup_s: float = 0.0
    version: str = ""

    def plan(self) -> MitigationPlan:
        """The winning plan, ready to run."""
        return MitigationPlan(**self.mitigation)

    def to_dict(self) -> dict:
        return asdict(self)


@register
@dataclass
class TuneReport:
    """Everything one :func:`tune` invocation measured."""

    scenario: str = "baseline_traffic"
    smoke: bool = False
    seed: int = 1
    duration_s: float = 0.0
    warmup_s: float = 0.0
    best: TunedConfig = field(default_factory=TunedConfig)
    #: One row per evaluated configuration (label, policy, pools,
    #: delay, spread, tail percentiles), in evaluation order.
    rows: List[Dict] = field(default_factory=list)
    version: str = ""

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TuneReport":
        data = dict(data)
        best = data.get("best")
        if isinstance(best, dict):
            data["best"] = TunedConfig(**best)
        names = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in data.items() if k in names})

    # ------------------------------------------------------------------

    def render(self, top: Optional[int] = None) -> str:
        """The headline table, ranked best-first."""
        header = (
            f"Mitigation-zoo tune — scenario={self.scenario} "
            f"seed={self.seed} ({self.duration_s:g}s, "
            f"warmup {self.warmup_s:g}s"
            + (", smoke grid" if self.smoke else "")
            + ")"
        )
        lines = [header, ""]
        lines.append(
            f"{'config':<34} {'policy':<14} {'pools':>7} {'delay':>6} "
            f"{'spread':>6} {'p99.9 ms':>9} {'peak ms':>8}"
        )
        ranked = sorted(self.rows, key=lambda r: (r["p999"], r["label"]))
        if top is not None:
            ranked = ranked[:top]
        for row in ranked:
            marker = "*" if row["label"] == self.best.label else " "
            pools = f"{row['flush_threads']}/{row['compaction_threads']}"
            lines.append(
                f"{marker}{row['label']:<33} {row['policy']:<14} "
                f"{pools:>7} {row['delay_s']:>6g} {row['spread']:>6d} "
                f"{row['p999'] * 1e3:>9.2f} {row['peak_p999'] * 1e3:>8.2f}"
            )
        best = self.best
        lines.append("")
        lines.append(
            f"best: {best.label} — p99.9 {best.p999 * 1e3:.2f} ms "
            f"vs paper {best.paper_p999 * 1e3:.2f} ms "
            f"({best.improvement_vs_paper * 100:+.1f}%), "
            f"baseline {best.baseline_p999 * 1e3:.2f} ms"
        )
        if best.knee_compaction_threads is not None:
            lines.append(
                "knee: p99.9-vs-threads flattens at "
                f"~{best.knee_compaction_threads:g} compaction threads "
                f"({best.policy})"
            )
        return "\n".join(lines)


def _tune_grid(policies, pool_grid, delay_grid, spread_grid):
    """The (label, plan) pairs one tune run evaluates."""
    entries = [
        ("baseline", MitigationPlan.baseline()),
        ("paper", MitigationPlan.paper_solution()),
    ]
    for policy in policies:
        for spread in spread_grid:
            for delay in delay_grid:
                for threads in pool_grid:
                    label = f"{policy}/a{spread}/d{delay:g}/c{threads}"
                    entries.append(
                        (
                            label,
                            MitigationPlan(
                                randomize_compaction_trigger=True,
                                trigger_spread=spread,
                                compaction_delay_s=delay,
                                flush_threads=16,
                                compaction_threads=threads,
                                compaction_policy=policy,
                            ),
                        )
                    )
    return entries


def tune(
    scenario: str = "baseline_traffic",
    duration_s: Optional[float] = None,
    warmup_s: Optional[float] = None,
    seed: int = 1,
    policies: Optional[List[str]] = None,
    pool_grid: Optional[List[int]] = None,
    delay_grid: Optional[List[float]] = None,
    spread_grid: Optional[List[int]] = None,
    smoke: bool = False,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_directory=None,
    shards: Optional[int] = None,
) -> TuneReport:
    """Search the joint mitigation space on a library scenario.

    The grid crosses the mitigation zoo's policies with the paper's
    knobs (threshold spread α, compaction delay T, compaction pool
    size; flushes pinned at cores=16 per §4.2), plus the canned
    ``baseline`` and ``paper`` plans as fixed reference points.  Runs
    go through :func:`repro.experiments.parallel.run_grid`, so repeats
    hit the content-addressed result cache.  ``smoke=True`` shrinks
    both the grid and the run length for CI.

    Deterministic end to end: same arguments, same report.
    """
    # Lazy imports: core must stay importable before the experiment
    # layer (experiments itself imports core.mitigation).
    from ..analysis.kneedle import kneedle
    from ..errors import AnalysisError
    from ..experiments.parallel import RunSpec, run_grid
    from ..experiments.runner import ExperimentSettings
    from ..lsm.policies import policy_names
    from ..scenarios.library import scenario as scenario_by_name
    from .. import __version__

    base_scenario = scenario_by_name(scenario)
    if policies is None:
        policies = policy_names()
    if smoke:
        duration_s = 60.0 if duration_s is None else duration_s
        warmup_s = 20.0 if warmup_s is None else warmup_s
        pool_grid = pool_grid or [4, 16]
        delay_grid = delay_grid or [1.0]
        spread_grid = spread_grid or [4]
    else:
        duration_s = 200.0 if duration_s is None else duration_s
        warmup_s = 40.0 if warmup_s is None else warmup_s
        pool_grid = pool_grid or [2, 4, 8, 16]
        delay_grid = delay_grid or [0.5, 1.0]
        spread_grid = spread_grid or [4]

    settings = ExperimentSettings(
        duration_s=duration_s, warmup_s=warmup_s, seed=seed
    )
    entries = _tune_grid(policies, pool_grid, delay_grid, spread_grid)
    specs = [
        RunSpec(
            scenario=replace(base_scenario, mitigation=plan),
            settings=settings,
            label=label,
        )
        for label, plan in entries
    ]
    summaries = run_grid(
        specs, jobs=jobs, cache=cache, cache_directory=cache_directory,
        shards=shards,
    )

    rows: List[Dict] = []
    for (label, plan), summary in zip(entries, summaries):
        rows.append(
            {
                "label": label,
                "policy": plan.compaction_policy,
                "flush_threads": plan.flush_threads or 16,
                "compaction_threads": plan.compaction_threads or 16,
                "delay_s": plan.compaction_delay_s,
                "spread": plan.trigger_spread,
                "randomize": plan.randomize_compaction_trigger,
                "p50": summary.tails["p50"],
                "p99": summary.tails["p99"],
                "p999": summary.p999,
                "peak_p999": summary.peak_p999,
            }
        )

    by_label = {row["label"]: row for row in rows}
    baseline_p999 = by_label["baseline"]["p999"]
    paper_p999 = by_label["paper"]["p999"]
    # Winner: lowest p99.9 among the searched (non-canned) configs;
    # ties break toward the cheaper pool, then the lexical label, so
    # the choice is deterministic across runs and platforms.
    searched = rows[2:]
    winner = min(
        searched,
        key=lambda r: (
            r["p999"],
            r["flush_threads"] + r["compaction_threads"],
            r["label"],
        ),
    )
    winner_plan = dict(entries)[winner["label"]]

    knee: Optional[float] = None
    curve = sorted(
        (
            (r["compaction_threads"], r["p999"])
            for r in searched
            if r["policy"] == winner["policy"]
            and r["delay_s"] == winner["delay_s"]
            and r["spread"] == winner["spread"]
        )
    )
    if len(curve) >= 3:
        try:
            result = kneedle(
                [float(c) for c, _ in curve],
                [p for _, p in curve],
                curve="convex",
                direction="decreasing",
            )
            knee = result.knee_x
        except AnalysisError:
            knee = None

    best = TunedConfig(
        scenario=scenario,
        label=winner["label"],
        policy=winner["policy"],
        mitigation=asdict(winner_plan),
        p50=winner["p50"],
        p99=winner["p99"],
        p999=winner["p999"],
        peak_p999=winner["peak_p999"],
        baseline_p999=baseline_p999,
        paper_p999=paper_p999,
        improvement_vs_paper=(
            (paper_p999 - winner["p999"]) / paper_p999 if paper_p999 else 0.0
        ),
        knee_compaction_threads=knee,
        seed=seed,
        duration_s=duration_s,
        warmup_s=warmup_s,
        version=__version__,
    )
    return TuneReport(
        scenario=scenario,
        smoke=smoke,
        seed=seed,
        duration_s=duration_s,
        warmup_s=warmup_s,
        best=best,
        rows=rows,
        version=__version__,
    )
