"""Online auto-tuning: detect ShadowSync at runtime and mitigate live.

The paper's mitigations are static configuration.  A production
deployment wants them applied *without a restart*: watch the running
job, and when the ShadowSync signature appears (periodic compaction
bursts synchronized with checkpoints), switch the stores to the
randomized trigger and install the drain-time delay on the fly.

Both interventions are safe mid-run because the engine reads them
dynamically: the L0 trigger policy is consulted at every compaction
pick, and the delay policy at every flush completion.

>>> job = build_traffic_job(...)
>>> tuner = OnlineAutoTuner()
>>> tuner.attach(job)            # before run(); acts during the run
>>> result = job.run(300.0)
>>> tuner.activated_at           # simulated time the mitigations went live
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigurationError
from .delay import estimate_drain_time
from .thresholds import RandomizedL0Trigger

__all__ = ["OnlineAutoTuner"]


class OnlineAutoTuner:
    """Watches checkpoints; activates §4.1 mitigations when ShadowSync
    is observed.

    Detection rule (evaluated after every checkpoint, once at least
    ``observe_checkpoints`` have passed): if any single checkpoint
    period carried at least ``burst_threshold`` compactions, the
    triggers are synchronized — randomize them and add the estimated
    drain-time delay.

    ``burst_threshold`` must sit above the well-spread steady rate
    (instances / cycle length, ≈32 for the paper's 129 instances) and
    below a synchronized per-stage burst (64); the default of 56 does.
    """

    def __init__(
        self,
        observe_checkpoints: int = 5,
        burst_threshold: int = 56,
        trigger_spread: int = 4,
        min_delay_s: float = 0.25,
        max_delay_s: float = 3.0,
    ) -> None:
        if observe_checkpoints < 1:
            raise ConfigurationError("observe_checkpoints must be >= 1")
        if burst_threshold < 1:
            raise ConfigurationError("burst_threshold must be >= 1")
        self.observe_checkpoints = observe_checkpoints
        self.burst_threshold = burst_threshold
        self.trigger_spread = trigger_spread
        self.min_delay_s = min_delay_s
        self.max_delay_s = max_delay_s

        self.activated_at: Optional[float] = None
        self.chosen_delay_s: Optional[float] = None
        self._job = None
        self._seen_checkpoints: List[float] = []

    # ------------------------------------------------------------------

    def attach(self, job) -> None:
        """Hook into *job* (before ``job.run``)."""
        if self._job is not None:
            raise ConfigurationError("tuner already attached")
        self._job = job
        job.coordinator.on_trigger.append(self._on_checkpoint)

    @property
    def active(self) -> bool:
        return self.activated_at is not None

    # ------------------------------------------------------------------

    def _on_checkpoint(self, time: float) -> None:
        self._seen_checkpoints.append(time)
        if self.active or len(self._seen_checkpoints) < self.observe_checkpoints:
            return
        if self._shadowsync_observed():
            self._activate(time)

    def _shadowsync_observed(self) -> bool:
        counts = self._job.collector.spans.per_cycle_counts(
            self._seen_checkpoints, kind="compaction", by="submit"
        )
        return any(c >= self.burst_threshold for c in counts.values())

    def _activate(self, now: float) -> None:
        job = self._job
        self.activated_at = now

        # 1. randomize every store's L0 trigger (§4.1, technique 1)
        for stage in job.stages:
            for instance in stage.instances:
                store = instance.store
                if store is None:
                    continue
                rng = job.sim.rng.stream(f"autotune-trigger/{instance.name}")
                store.options.l0_trigger_policy = RandomizedL0Trigger(
                    store.options.l0_compaction_trigger,
                    self.trigger_spread,
                    rng,
                )

        # 2. install the drain-time delay (§4.1, technique 2), estimated
        # from the flush phase of the most recent checkpoint (Eq. 2)
        delay = self._estimate_delay()
        self.chosen_delay_s = delay
        policy = job.backend.delay_policy
        policy.delay_s = delay
        policy.auto = False

    def _estimate_delay(self) -> float:
        job = self._job
        last_cp = self._seen_checkpoints[-2]
        flushes = [
            s
            for s in job.collector.spans.spans(kind="flush")
            if s.submit is not None and last_cp <= s.submit < last_cp + 2.0
        ]
        if not flushes:
            return self.min_delay_s
        phase = max(f.end for f in flushes) - min(f.start for f in flushes)
        node = job.nodes[0]
        arrival = sum(
            flow.arrival_rate
            for stage in job.stages
            for name, flow in stage.flows.items()
            if name == node.name
        )
        capacity_msgs = node.cores / job.cost.cpu_seconds_per_message
        drain = max(capacity_msgs - arrival, arrival * 0.1)
        estimate = estimate_drain_time(arrival, phase, drain,
                                       blocked_fraction=0.5)
        return min(max(estimate, self.min_delay_s), self.max_delay_s)
