"""The ShadowSync detector: find hidden synchronization in a run.

The paper's diagnostic workflow (§3) condensed into one object: feed it
a finished run's spans, checkpoints, CPU series and latency timeline;
it reports

* millibottleneck windows (short full-CPU saturation),
* flush/compaction overlap exposure during those windows,
* whether compaction bursts of different stages align (statistical) or
  alternate (scheduled),
* which latency spikes coincide with ShadowSync windows — the causal
  chain of Figure 6.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..analysis.longtail import LatencySpike, find_spikes, spike_period
from ..analysis.overlap import alignment_score, burst_alignment, overlap_report
from ..errors import AnalysisError
from ..metrics.spans import SpanLog
from ..metrics.timeline import StepSeries, millibottleneck_windows

__all__ = ["ShadowSyncFinding", "ShadowSyncDetector"]


class ShadowSyncFinding:
    """The detector's verdict on one run."""

    __slots__ = (
        "millibottlenecks",
        "spikes",
        "matched_spikes",
        "overlap_seconds",
        "alignment",
        "spike_period_s",
        "classification",
    )

    def __init__(self) -> None:
        self.millibottlenecks: List[Tuple[float, float]] = []
        self.spikes: List[LatencySpike] = []
        self.matched_spikes: List[Tuple[LatencySpike, Tuple[float, float]]] = []
        self.overlap_seconds = 0.0
        self.alignment = 0.0
        self.spike_period_s: Optional[float] = None
        self.classification = "none"

    @property
    def spike_match_fraction(self) -> float:
        """Share of latency spikes explained by a millibottleneck."""
        if not self.spikes:
            return 0.0
        return len(self.matched_spikes) / len(self.spikes)

    def as_dict(self) -> dict:
        return {
            "millibottlenecks": self.millibottlenecks,
            "num_spikes": len(self.spikes),
            "spike_match_fraction": self.spike_match_fraction,
            "overlap_seconds": self.overlap_seconds,
            "alignment": self.alignment,
            "spike_period_s": self.spike_period_s,
            "classification": self.classification,
        }


class ShadowSyncDetector:
    """Classifies a run's latency spikes as ShadowSync (or not)."""

    def __init__(
        self,
        spike_threshold_s: float = 0.8,
        saturation: float = 0.95,
        alignment_threshold: float = 0.8,
        match_slack_s: float = 1.0,
    ) -> None:
        self.spike_threshold_s = spike_threshold_s
        self.saturation = saturation
        self.alignment_threshold = alignment_threshold
        self.match_slack_s = match_slack_s

    def analyze(
        self,
        spans: SpanLog,
        cpu_series: StepSeries,
        cpu_capacity: float,
        latency_times: Sequence[float],
        latency_values: Sequence[float],
        checkpoint_times: Sequence[float],
        stages: Sequence[str],
        window: Tuple[float, float],
    ) -> ShadowSyncFinding:
        start, end = window
        if end <= start:
            raise AnalysisError("empty analysis window")
        finding = ShadowSyncFinding()

        finding.millibottlenecks = millibottleneck_windows(
            cpu_series, cpu_capacity, start, end,
            saturation=self.saturation, max_duration=float("inf"),
        )
        finding.spikes = find_spikes(
            latency_times, latency_values, self.spike_threshold_s
        )
        finding.spike_period_s = spike_period(finding.spikes)

        for spike in finding.spikes:
            for mb_start, mb_end in finding.millibottlenecks:
                if (
                    spike.start < mb_end + self.match_slack_s
                    and mb_start < spike.end + self.match_slack_s
                ):
                    finding.matched_spikes.append((spike, (mb_start, mb_end)))
                    break

        report = overlap_report(spans, start, end)
        finding.overlap_seconds = report.flush_compaction_overlap_s

        cps = [t for t in checkpoint_times if start <= t < end]
        if cps:
            per_cp = burst_alignment(spans, stages, cps)
            if per_cp and any(sum(c.values()) for c in per_cp.values()):
                finding.alignment = alignment_score(per_cp)

        finding.classification = self._classify(finding)
        return finding

    def _classify(self, finding: ShadowSyncFinding) -> str:
        if not finding.spikes or finding.spike_match_fraction < 0.5:
            return "none"
        if finding.overlap_seconds <= 0:
            return "none"
        if finding.alignment >= self.alignment_threshold:
            return "statistical"
        return "scheduled"
