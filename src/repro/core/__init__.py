"""The paper's contribution: ShadowSync detection and mitigation."""

from .allocation import (
    concurrency_latency_curve,
    recommend_compaction_threads,
    recommend_flush_threads,
)
from .autotuner import OnlineAutoTuner, TunedConfig, TuneReport, tune
from .delay import DelayedCompactionPolicy, estimate_drain_time
from .detector import ShadowSyncDetector, ShadowSyncFinding
from .mitigation import MitigationPlan
from .silk import SilkPolicy, install_silk_pauses
from .thresholds import RandomizedL0Trigger, StaticL0Trigger

__all__ = [
    "concurrency_latency_curve",
    "recommend_compaction_threads",
    "recommend_flush_threads",
    "OnlineAutoTuner",
    "TunedConfig",
    "TuneReport",
    "tune",
    "DelayedCompactionPolicy",
    "estimate_drain_time",
    "ShadowSyncDetector",
    "ShadowSyncFinding",
    "MitigationPlan",
    "SilkPolicy",
    "install_silk_pauses",
    "RandomizedL0Trigger",
    "StaticL0Trigger",
]
