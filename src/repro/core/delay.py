"""Delayed compaction (§4.1, second technique).

Flush stalls message processing (stop-the-world), queueing
``Q = λ · Δt`` messages (Eq. 1).  If compaction starts immediately the
queue compounds; postponing it by the drain-out time (Eq. 2)

    T = Q / C_drain = λ · Δt / C_drain

lets the backlog empty first.  ``C_drain`` is the rate at which queued
messages disappear once flushing ends — the processing capability left
after steady arrivals are served.  The paper measures λ, Δt and C online
and lands on T ≈ 0.8–1 s, rounding to a 1 s delay.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError

__all__ = ["estimate_drain_time", "DelayedCompactionPolicy"]


def estimate_drain_time(
    arrival_rate: float,
    flush_duration: float,
    drain_rate: float,
    blocked_fraction: float = 1.0,
) -> float:
    """Eq. (1)+(2): seconds until the flush-induced backlog drains.

    Parameters
    ----------
    arrival_rate:
        λ — input messages/s (per node or per system, as long as
        *drain_rate* uses the same scope).
    flush_duration:
        Δt — how long the flush cluster stalls processing.
    drain_rate:
        Net backlog-reduction rate once processing resumes
        (service capacity minus steady arrivals).
    blocked_fraction:
        Average fraction of instances stalled during Δt (1.0 when the
        flush freezes everything at once).
    """
    if arrival_rate < 0 or flush_duration < 0:
        raise ConfigurationError("λ and Δt must be non-negative")
    if drain_rate <= 0:
        raise ConfigurationError("drain rate must be positive")
    queued = arrival_rate * blocked_fraction * flush_duration
    return queued / drain_rate


class DelayedCompactionPolicy:
    """Decides how long to postpone compactions after their triggering
    flush completes.

    ``fixed`` mode always waits :attr:`delay_s`; ``auto`` mode waits the
    drain time estimated from the most recent observed flush phase
    (falling back to :attr:`delay_s` until an observation exists).
    """

    def __init__(self, delay_s: float = 0.0, auto: bool = False) -> None:
        if delay_s < 0:
            raise ConfigurationError("delay must be non-negative")
        self.delay_s = delay_s
        self.auto = auto
        self._last_estimate: Optional[float] = None

    def observe_flush_phase(
        self, arrival_rate: float, flush_duration: float,
        drain_rate: float, blocked_fraction: float = 1.0,
    ) -> float:
        """Feed an observed flush phase; returns the new estimate."""
        self._last_estimate = estimate_drain_time(
            arrival_rate, flush_duration, drain_rate, blocked_fraction
        )
        return self._last_estimate

    def current_delay(self) -> float:
        if self.auto and self._last_estimate is not None:
            return self._last_estimate
        return self.delay_s

    @property
    def enabled(self) -> bool:
        return self.auto or self.delay_s > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "auto" if self.auto else "fixed"
        return f"DelayedCompactionPolicy({mode}, delay={self.current_delay():.3f}s)"
