"""Soft-resource (thread-pool) allocation (§4.2).

Two recommendations:

* **Flush threads** — the rule of thumb: one per CPU core
  (:func:`recommend_flush_threads`).  Fewer serializes the stop-the-world
  phase; more adds locking overhead without adding CPU.
* **Compaction threads** — non-trivial.  Instead of brute-forcing every
  pool size, §4.2.2 correlates fine-grained (50 ms) windows' observed
  *compaction concurrency* with the same windows' tail latency from a
  single run, then finds the knee of that curve with Kneedle
  (:func:`recommend_compaction_threads`, Figure 15).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..analysis.kneedle import kneedle
from ..errors import AnalysisError

__all__ = [
    "recommend_flush_threads",
    "concurrency_latency_curve",
    "recommend_compaction_threads",
]


def recommend_flush_threads(cores_per_node: int) -> int:
    """The §4.2.1 rule of thumb: flush threads = CPU cores."""
    if cores_per_node < 1:
        raise AnalysisError("cores_per_node must be >= 1")
    return cores_per_node


def concurrency_latency_curve(
    window_times: np.ndarray,
    window_latency: np.ndarray,
    concurrency_times: np.ndarray,
    concurrency: np.ndarray,
    max_concurrency: Optional[int] = None,
    min_windows: int = 3,
) -> Tuple[np.ndarray, np.ndarray]:
    """Bin windows by their compaction concurrency → mean tail latency.

    Both series must share a window width; windows are matched by
    nearest timestamp.  Returns ``(concurrency_levels, mean_latency)``
    over levels observed in at least *min_windows* windows — the
    scatter/curve of Figure 15.
    """
    if len(window_times) == 0 or len(concurrency_times) == 0:
        raise AnalysisError("empty input series")
    idx = np.searchsorted(concurrency_times, window_times)
    idx = np.clip(idx, 0, len(concurrency) - 1)
    matched = concurrency[idx].astype(int)
    if max_concurrency is not None:
        keep = matched <= max_concurrency
        matched = matched[keep]
        window_latency = window_latency[keep]
    levels = []
    means = []
    for level in np.unique(matched):
        mask = matched == level
        if mask.sum() < min_windows:
            continue
        levels.append(int(level))
        means.append(float(np.mean(window_latency[mask])))
    if len(levels) < 3:
        raise AnalysisError(
            "not enough distinct concurrency levels to fit a curve "
            f"(got {len(levels)})"
        )
    return np.array(levels, dtype=float), np.array(means)


def recommend_compaction_threads(
    levels: np.ndarray,
    mean_latency: np.ndarray,
    sensitivity: float = 1.0,
    fallback: int = 4,
) -> int:
    """Knee of the latency-vs-concurrency curve (Figure 15).

    The curve is convex-increasing — flat while concurrency fits in the
    CPU headroom, rising fast once compaction steals from message
    processing.  The knee is the largest concurrency before the rise,
    i.e. the recommended ``max_background_compactions``.
    """
    result = kneedle(
        levels,
        mean_latency,
        sensitivity=sensitivity,
        curve="convex",
        direction="increasing",
    )
    if not result.found:
        return fallback
    return max(1, int(round(result.knee_x)))
