"""The mitigation plan: everything §4 proposes, composable.

A :class:`MitigationPlan` bundles the paper's three levers so an
experiment can switch any subset on:

1. randomized compaction threshold ``4 + α`` (§4.1),
2. delayed compaction by the queue drain-out time (§4.1),
3. flush/compaction thread-pool sizing (§4.2).

``MitigationPlan.baseline()`` is the unmitigated system;
``MitigationPlan.paper_solution()`` is the configuration evaluated in
§5 (randomized threshold + 1 s delay, default 16/16 pools).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from .delay import DelayedCompactionPolicy
from .thresholds import RandomizedL0Trigger, StaticL0Trigger

__all__ = ["MitigationPlan"]


@dataclass
class MitigationPlan:
    """Which mitigations are active, with their parameters."""

    #: Randomize each instance's L0 trigger as ``base + U{0..spread-1}``.
    randomize_compaction_trigger: bool = False
    #: Width of the randomization window; the paper uses the cycle
    #: length (α ∈ [0, 4)).
    trigger_spread: int = 4
    #: Seconds to postpone compactions after their triggering flush
    #: (0 disables; the paper recommends the drain time, ≈1 s).
    compaction_delay_s: float = 0.0
    #: Estimate the delay online from observed flush phases instead of
    #: using the fixed value.
    auto_delay: bool = False
    #: Flush pool size per node (None keeps the RocksDB default of 16).
    flush_threads: Optional[int] = None
    #: Compaction pool size per node (None keeps the default of 16).
    compaction_threads: Optional[int] = None
    #: Which registered compaction/scheduling policy the stores use
    #: (the mitigation zoo of :mod:`repro.lsm.policies`); ``"reference"``
    #: keeps the paper's RocksDB-leveled behavior.
    compaction_policy: str = "reference"

    def __post_init__(self) -> None:
        if self.trigger_spread < 1:
            raise ConfigurationError("trigger_spread must be >= 1")
        if self.compaction_delay_s < 0:
            raise ConfigurationError("compaction_delay_s must be >= 0")
        if self.flush_threads is not None and self.flush_threads < 1:
            raise ConfigurationError("flush_threads must be >= 1")
        if self.compaction_threads is not None and self.compaction_threads < 1:
            raise ConfigurationError("compaction_threads must be >= 1")
        # Lazy import: core must not depend on lsm at module load.
        from ..lsm.policies import policy_class

        policy_class(self.compaction_policy)

    # ------------------------------------------------------------------
    # canned configurations
    # ------------------------------------------------------------------

    @classmethod
    def baseline(cls) -> MitigationPlan:
        """The unmitigated system: static trigger, no delay, 16/16."""
        return cls()

    @classmethod
    def paper_solution(cls) -> MitigationPlan:
        """§5's evaluated solution: randomized trigger + 1 s delay,
        default thread pools (for a fair comparison, as in the paper)."""
        return cls(randomize_compaction_trigger=True, compaction_delay_s=1.0)

    @classmethod
    def full(cls) -> MitigationPlan:
        """Everything on, including §4.2's recommended pool sizes for a
        16-core node (flush = cores = 16, compaction = knee = 4)."""
        return cls(
            randomize_compaction_trigger=True,
            compaction_delay_s=1.0,
            flush_threads=16,
            compaction_threads=4,
        )

    # ------------------------------------------------------------------
    # factories used by the state backend
    # ------------------------------------------------------------------

    def l0_trigger_policy(self, base: int, rng: random.Random):
        """Per-store trigger policy; random when the plan says so."""
        if self.randomize_compaction_trigger:
            return RandomizedL0Trigger(base, self.trigger_spread, rng)
        return StaticL0Trigger(base)

    def delay_policy(self) -> DelayedCompactionPolicy:
        return DelayedCompactionPolicy(self.compaction_delay_s, auto=self.auto_delay)

    def pool_sizes(self, default_flush: int, default_compaction: int):
        """(flush, compaction) pool sizes after applying overrides."""
        flush = self.flush_threads or default_flush
        compaction = self.compaction_threads or default_compaction
        return flush, compaction

    @property
    def is_baseline(self) -> bool:
        return self == MitigationPlan.baseline()
