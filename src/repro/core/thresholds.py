"""Randomized compaction thresholds (§4.1, first technique).

The scheduled ShadowSync exists because every stage instance uses the
same static L0 trigger (4), so all instances' compactions land on the
same checkpoint.  The mitigation draws a per-instance random extra
``α ~ U{0 .. spread-1}`` and uses ``base + α`` as the trigger, re-drawn
after every compaction, so each instance's compactions wander uniformly
over the ``spread`` checkpoints of a cycle instead of piling onto one.
"""

from __future__ import annotations

import random

from ..errors import ConfigurationError

__all__ = ["RandomizedL0Trigger", "StaticL0Trigger"]


class StaticL0Trigger:
    """The default RocksDB behaviour: a fixed trigger (ShadowSync-prone)."""

    def __init__(self, base: int = 4) -> None:
        if base < 1:
            raise ConfigurationError("L0 trigger must be >= 1")
        self.base = base

    def __call__(self) -> int:
        return self.base

    def advance(self) -> None:
        """No-op; the trigger never changes."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticL0Trigger({self.base})"


class RandomizedL0Trigger:
    """The paper's ``4 + α`` policy, ``α ~ U{0 .. spread-1}``.

    The policy object is installed as
    :attr:`repro.lsm.options.LSMOptions.l0_trigger_policy` of one store;
    :meth:`advance` must be called when a compaction is scheduled so the
    next cycle draws a fresh α.
    """

    def __init__(self, base: int, spread: int, rng: random.Random) -> None:
        if base < 1:
            raise ConfigurationError("L0 trigger base must be >= 1")
        if spread < 1:
            raise ConfigurationError("spread must be >= 1")
        self.base = base
        self.spread = spread
        self._rng = rng
        self._current = self._draw()
        self.draw_history = [self._current]

    def _draw(self) -> int:
        return self.base + self._rng.randrange(self.spread)

    def __call__(self) -> int:
        return self._current

    def advance(self) -> None:
        """Re-draw α for the next compaction cycle."""
        self._current = self._draw()
        self.draw_history.append(self._current)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RandomizedL0Trigger(base={self.base}, spread={self.spread}, "
            f"current={self._current})"
        )
