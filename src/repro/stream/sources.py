"""Rate-controlled workload sources.

Sources drive the first stage's arrival rate.  :class:`ConstantSource`
is the paper's steady 60 k msg/s; :class:`PiecewiseSource` supports
ramp-up/initialization phases (whose uneven flush pressure is what
desynchronizes L0 counters between stages, §3.3).
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.kernel import Simulator

__all__ = [
    "ConstantSource",
    "PiecewiseSource",
    "DiurnalSource",
    "ClosedLoopSource",
]


class ConstantSource:
    """A fixed message rate from t = 0."""

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ConfigurationError("source rate must be >= 0")
        self.rate = rate

    def start(self, sim: Simulator, set_rate: Callable[[float], None]) -> None:
        sim.call_soon(set_rate, self.rate)

    def steady_rate(self) -> float:
        return self.rate


class PiecewiseSource:
    """A piecewise-constant rate schedule ``[(time, rate), ...]``."""

    def __init__(self, schedule: Sequence[Tuple[float, float]]) -> None:
        if not schedule:
            raise ConfigurationError("schedule must not be empty")
        times = [t for t, _r in schedule]
        if times != sorted(times):
            raise ConfigurationError("schedule times must be ascending")
        if any(r < 0 for _t, r in schedule):
            raise ConfigurationError("rates must be >= 0")
        self.schedule: List[Tuple[float, float]] = list(schedule)

    def start(self, sim: Simulator, set_rate: Callable[[float], None]) -> None:
        for time, rate in self.schedule:
            sim.schedule(time, set_rate, rate)

    def steady_rate(self) -> float:
        """The final (steady-state) rate of the schedule."""
        return self.schedule[-1][1]


class DiurnalSource:
    """A day/night load curve with optional flash-crowd bursts.

    The rate oscillates between ``base_rate`` (the daytime peak) and
    ``trough_factor * base_rate`` (the nightly trough) on a sinusoid of
    period ``period_s``, discretized into ``steps_per_period``
    piecewise-constant segments so the fluid engine sees clean rate
    events.  Each burst ``(at_s, duration_s, multiplier)`` — a flash
    crowd — multiplies whatever the diurnal curve says during its
    window.  The curve starts at the peak (t = 0 is "noon").
    """

    def __init__(
        self,
        base_rate: float,
        period_s: float,
        trough_factor: float = 0.3,
        bursts: Sequence[Tuple[float, float, float]] = (),
        steps_per_period: int = 24,
    ) -> None:
        if base_rate < 0:
            raise ConfigurationError("base_rate must be >= 0")
        if period_s <= 0:
            raise ConfigurationError("period_s must be > 0")
        if not 0.0 <= trough_factor <= 1.0:
            raise ConfigurationError("trough_factor must be in [0, 1]")
        if steps_per_period < 2:
            raise ConfigurationError("steps_per_period must be >= 2")
        for at_s, duration_s, multiplier in bursts:
            if at_s < 0 or duration_s <= 0 or multiplier <= 0:
                raise ConfigurationError(
                    "burst entries must be (at_s >= 0, duration_s > 0, "
                    "multiplier > 0)"
                )
        self.base_rate = base_rate
        self.period_s = period_s
        self.trough_factor = trough_factor
        self.bursts = sorted(bursts)
        self.steps_per_period = steps_per_period

    def _diurnal_rate(self, time: float) -> float:
        """The (step-quantized) diurnal curve sampled at *time*."""
        step = self.period_s / self.steps_per_period
        phase = 2.0 * math.pi * (math.floor(time / step) * step) / self.period_s
        mid = (1.0 + self.trough_factor) / 2.0
        amplitude = (1.0 - self.trough_factor) / 2.0
        return self.base_rate * (mid + amplitude * math.cos(phase))

    def _rate_at(self, time: float) -> float:
        rate = self._diurnal_rate(time)
        for at_s, duration_s, multiplier in self.bursts:
            if at_s <= time < at_s + duration_s:
                rate *= multiplier
        return rate

    def _change_points(self, horizon_s: float) -> List[float]:
        step = self.period_s / self.steps_per_period
        points = {0.0}
        t = 0.0
        while t < horizon_s:
            points.add(t)
            t += step
        for at_s, duration_s, _multiplier in self.bursts:
            points.add(at_s)
            points.add(at_s + duration_s)
        return sorted(p for p in points if p <= horizon_s)

    def start(self, sim: Simulator, set_rate: Callable[[float], None]) -> None:
        # Cover a generous horizon; runs longer than 16 periods keep the
        # last scheduled rate (the engine never re-asks the source).
        horizon = 16.0 * self.period_s
        for at_s, duration_s, _m in self.bursts:
            horizon = max(horizon, at_s + duration_s + self.period_s)
        for time in self._change_points(horizon):
            sim.schedule(time, set_rate, self._rate_at(time))

    def steady_rate(self) -> float:
        """Provision for the daytime peak, as a real deployment would."""
        return self.base_rate


class ClosedLoopSource:
    """A fixed population of request/response clients.

    Open-loop sources (the classes above) push a rate regardless of what
    the system does; a *closed-loop* client waits for its previous
    request to complete, thinks for ``think_time_s``, then issues the
    next one — so the offered rate self-limits when latency grows
    (coordinated omission).  The fluid equivalent: every ``interval_s``
    the source re-estimates the response time from the ingest stages'
    backlog (Little's law) and sets

        rate = clients / (think_time_s + response_time)

    which converges deterministically because the estimate only uses
    simulation state at the control tick.
    """

    def __init__(
        self,
        clients: int,
        think_time_s: float,
        base_service_s: float = 0.001,
        interval_s: float = 1.0,
        horizon_s: float = 3600.0,
    ) -> None:
        if clients < 1:
            raise ConfigurationError("clients must be >= 1")
        if think_time_s <= 0:
            raise ConfigurationError("think_time_s must be > 0")
        if base_service_s <= 0:
            raise ConfigurationError("base_service_s must be > 0")
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be > 0")
        self.clients = clients
        self.think_time_s = think_time_s
        self.base_service_s = base_service_s
        self.interval_s = interval_s
        self.horizon_s = horizon_s
        self._job = None
        self._last_rate = self.steady_rate()
        #: ``(time, rate)`` at every control tick — the record of how
        #: hard the population actually pushed (coordinated-omission
        #: analysis wants exactly this).
        self.rate_history: List[Tuple[float, float]] = []

    def bind(self, job) -> None:
        """Called by :meth:`StreamJob.start_run` so the control loop can
        observe the ingest stages' backlog."""
        self._job = job

    def _response_time(self, now: float) -> float:
        """Base service time plus queueing delay estimated from the
        source-fed stages' current backlog via Little's law."""
        if self._job is None:
            return self.base_service_s
        backlog = 0.0
        for index in self._job._source_fed:
            stage = self._job.stages[index]
            for node_name in stage.nodes():
                backlog += stage.flows[node_name].queue_at(now)
        throughput = max(self._last_rate, 1.0)
        return self.base_service_s + backlog / throughput

    def _tick(self, sim: Simulator, set_rate: Callable[[float], None]) -> None:
        response = self._response_time(sim.now)
        rate = self.clients / (self.think_time_s + response)
        self._last_rate = rate
        self.rate_history.append((sim.now, rate))
        set_rate(rate)
        if sim.now + self.interval_s <= self.horizon_s:
            sim.schedule_after(self.interval_s, self._tick, sim, set_rate)

    def start(self, sim: Simulator, set_rate: Callable[[float], None]) -> None:
        sim.call_soon(self._tick, sim, set_rate)

    def steady_rate(self) -> float:
        """The no-queueing throughput of the client population."""
        return self.clients / (self.think_time_s + self.base_service_s)
