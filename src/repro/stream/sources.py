"""Rate-controlled workload sources.

Sources drive the first stage's arrival rate.  :class:`ConstantSource`
is the paper's steady 60 k msg/s; :class:`PiecewiseSource` supports
ramp-up/initialization phases (whose uneven flush pressure is what
desynchronizes L0 counters between stages, §3.3).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.kernel import Simulator

__all__ = ["ConstantSource", "PiecewiseSource"]


class ConstantSource:
    """A fixed message rate from t = 0."""

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ConfigurationError("source rate must be >= 0")
        self.rate = rate

    def start(self, sim: Simulator, set_rate: Callable[[float], None]) -> None:
        sim.call_soon(set_rate, self.rate)

    def steady_rate(self) -> float:
        return self.rate


class PiecewiseSource:
    """A piecewise-constant rate schedule ``[(time, rate), ...]``."""

    def __init__(self, schedule: Sequence[Tuple[float, float]]) -> None:
        if not schedule:
            raise ConfigurationError("schedule must not be empty")
        times = [t for t, _r in schedule]
        if times != sorted(times):
            raise ConfigurationError("schedule times must be ascending")
        if any(r < 0 for _t, r in schedule):
            raise ConfigurationError("rates must be >= 0")
        self.schedule: List[Tuple[float, float]] = list(schedule)

    def start(self, sim: Simulator, set_rate: Callable[[float], None]) -> None:
        for time, rate in self.schedule:
            sim.schedule(time, set_rate, rate)

    def steady_rate(self) -> float:
        """The final (steady-state) rate of the schedule."""
        return self.schedule[-1][1]
