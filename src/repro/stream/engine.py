"""The stream job: construction, wiring and execution.

:class:`StreamJob` assembles a complete simulated deployment from
declarative pieces — stage specs, a source, cluster/cost/checkpoint
configs and a :class:`~repro.core.mitigation.MitigationPlan` — runs it,
and returns a :class:`StreamJobResult` with every measurement the
paper's figures need.

Wiring overview::

    source ──λ──> s0 flows ──rate──> s1 flows ──rate──> s2 flow
                   │   per (stage, node); share the node CPU with
                   │   flush / compaction tasks from the pools
    checkpoints ──> state backend ──> flush pool ──> L0 counters
                                           └──────> compaction pool
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..config import CheckpointConfig, ClusterConfig, CostModel
from ..core.mitigation import MitigationPlan
from ..errors import ConfigurationError, SimulationError
from ..lsm.options import LSMOptions
from ..lsm.sstable import SSTable
from ..metrics.collector import MetricsCollector
from ..metrics.percentiles import (
    compose_latencies,
    latency_from_segments,
    rates_on_grid,
    tail_summary,
    windowed_quantile,
)
from ..metrics.timeline import StepSeries
from ..sim.fluid import FluidFlow
from ..sim.kernel import Simulator
from ..sim.process import spawn
from ..storage.hdfs import HdfsBackup
from ..trace import Tracer
from .checkpoint import CheckpointCoordinator
from .sources import ConstantSource
from .stage import SOURCE_INPUT, Stage, StageInstance, StageSpec
from .state_backend import LSMStateBackend
from .worker import WorkerNode

__all__ = ["StreamJob", "StreamJobResult"]

InitialL0 = Union[int, Callable[[StageInstance], int]]

#: Index standing for the external source in the stage input graph.
_SOURCE = -1


class StreamJob:
    """A runnable streaming dataflow on a simulated cluster."""

    def __init__(
        self,
        stages: Sequence[StageSpec],
        source: ConstantSource,
        cluster: Optional[ClusterConfig] = None,
        cost: Optional[CostModel] = None,
        checkpoint: Optional[CheckpointConfig] = None,
        mitigation: Optional[MitigationPlan] = None,
        lsm_options_factory: Optional[Callable[[StageSpec, int], LSMOptions]] = None,
        initial_l0: Optional[Dict[str, InitialL0]] = None,
        seed: int = 0,
        accounting_dt: float = 1.0,
        sample_real_state: bool = True,
        coalesce_accounting: bool = True,
        tracer: Optional[Tracer] = None,
        faults=None,
        resilience=None,
        tie_break: str = "fifo",
        skew: Sequence = (),
    ) -> None:
        if not stages:
            raise ConfigurationError("a job needs at least one stage")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ConfigurationError("stage names must be unique")

        self.sim = Simulator(seed, tracer=tracer, tie_break=tie_break)
        self.cluster = cluster or ClusterConfig()
        self.cost = cost or CostModel()
        self.checkpoint_config = checkpoint or CheckpointConfig()
        self.mitigation = mitigation or MitigationPlan.baseline()
        self.source = source
        self.accounting_dt = accounting_dt
        self.sample_real_state = sample_real_state
        #: Drive all per-instance accounting ticks from one batched
        #: process instead of one process per instance.  State-identical
        #: to the scalar path (the bodies run in the same order at the
        #: same timestamps) but dispatches one kernel event per tick
        #: instead of one per instance — the scalar path is kept for the
        #: determinism A/B test.
        self.coalesce_accounting = coalesce_accounting
        self._started = False
        #: Set by repro.cluster.install_cluster(); None on static runs.
        self.cluster_manager = None
        #: Bumped on every topology mutation (node join, partition
        #: relocation); the batched accounting loop rebuilds its
        #: precomputed entries when it observes a new epoch.
        self._topology_epoch = 0

        default_options = LSMOptions()
        flush_threads, compaction_threads = self.mitigation.pool_sizes(
            default_options.max_background_flushes,
            default_options.max_background_compactions,
        )
        #: (flush, compaction) pool sizes, reused for nodes added mid-run.
        self._pool_threads = (flush_threads, compaction_threads)

        # --- nodes -----------------------------------------------------
        self.nodes: List[WorkerNode] = [
            WorkerNode(
                self.sim,
                f"node{i}",
                cores=self.cluster.cores_per_node,
                storage=self.cluster.storage,
                flush_threads=flush_threads,
                compaction_threads=compaction_threads,
            )
            for i in range(self.cluster.num_nodes)
        ]
        self.hdfs = HdfsBackup(self.sim, self.cluster.backup_uplink_mb_s)

        # --- metrics ---------------------------------------------------
        self.collector = MetricsCollector()
        for node in self.nodes:
            self.collector.watch_resource(node.cpu)
            self.collector.watch_pool(node.flush_pool, node.name)
            self.collector.watch_pool(node.compaction_pool, node.name)

        # --- stages, instances, flows -----------------------------------
        self.stages: List[Stage] = []
        for spec in stages:
            stage = Stage(spec)
            for index in range(spec.parallelism):
                node = self.nodes[index % len(self.nodes)]
                options = (
                    lsm_options_factory(spec, index)
                    if lsm_options_factory is not None
                    else LSMOptions()
                )
                if spec.distinct_keys and options.live_data_cap_bytes is None:
                    options.live_data_cap_bytes = int(
                        1.3
                        * spec.distinct_keys_per_instance
                        * (spec.state_entry_bytes + options.entry_overhead_bytes)
                    )
                instance = StageInstance(spec, index, node, options)
                if instance.store is not None:
                    instance.store.tracer = self.sim.tracer
                stage.add_instance(instance)
                node.host(instance)
            self.stages.append(stage)

        # Flink runs one processing thread per task *slot*, and slots are
        # sized to the core count — so a node's stages share ``cores``
        # processing threads, split here in proportion to hosted
        # instances.  This cap is what lets a compaction burst halve the
        # processing share instead of being politely absorbed.
        instances_per_node: Dict[str, int] = {}
        for stage in self.stages:
            for node_name, hosted in stage.instances_by_node.items():
                instances_per_node[node_name] = (
                    instances_per_node.get(node_name, 0) + len(hosted)
                )
        for stage in self.stages:
            spec = stage.spec
            for node_name, hosted in stage.instances_by_node.items():
                node = self._node(node_name)
                slots = node.cores * len(hosted) / instances_per_node[node_name]
                flow = FluidFlow(
                    self.sim,
                    name=f"{spec.name}@{node_name}",
                    work_per_message=self.cost.cpu_seconds_per_message
                    * spec.work_multiplier,
                    max_parallelism=min(float(len(hosted)), slots),
                )
                stage.flows[node_name] = flow
                node.cpu.add_flow(flow)

        # --- state backend + checkpointing -------------------------------
        self.backend = LSMStateBackend(
            self.sim,
            self.cost,
            self.mitigation,
            incremental_checkpoints=self.checkpoint_config.incremental,
        )
        for stage in self.stages:
            self.backend.register_stage(stage)
        self.coordinator = CheckpointCoordinator(
            self.sim,
            self.checkpoint_config,
            self.stages,
            self.backend,
            collector=self.collector,
            hdfs=self.hdfs,
        )

        # --- input graph ---------------------------------------------------
        # Per stage, the indices of its upstream feeds (the external
        # source is index ``_SOURCE``).  ``inputs=None`` keeps the
        # classic linear chain; explicit inputs support branched and
        # two-input (windowed-join) topologies and multi-tenant jobs.
        name_to_index = {spec.name: i for i, spec in enumerate(stages)}
        self._inputs: List[List[int]] = []
        for index, spec in enumerate(stages):
            if spec.inputs is None:
                self._inputs.append([_SOURCE] if index == 0 else [index - 1])
                continue
            resolved: List[int] = []
            for ref in spec.inputs:
                if ref == SOURCE_INPUT:
                    resolved.append(_SOURCE)
                    continue
                upstream = name_to_index.get(ref)
                if upstream is None:
                    raise ConfigurationError(
                        f"stage {spec.name!r}: unknown input {ref!r}"
                    )
                if upstream >= index:
                    raise ConfigurationError(
                        f"stage {spec.name!r}: input {ref!r} must be declared "
                        "earlier in the stage list (the dataflow is acyclic)"
                    )
                resolved.append(upstream)
            self._inputs.append(resolved)
        #: Upstream stage index -> downstream stage indices it feeds.
        self._consumers: List[List[int]] = [[] for _ in stages]
        for index, feeds in enumerate(self._inputs):
            for upstream in feeds:
                if upstream != _SOURCE:
                    self._consumers[upstream].append(index)
        #: Stage indices ingesting directly from the external source.
        self._source_fed: List[int] = [
            index for index, feeds in enumerate(self._inputs) if _SOURCE in feeds
        ]
        if not self._source_fed:
            raise ConfigurationError("no stage ingests from the source")

        # --- rate wiring --------------------------------------------------
        # Downstream arrival-rate updates are coalesced and applied after
        # a short propagation delay (network hop + output batching).
        # Besides being physically honest, the delay breaks the
        # instantaneous feedback loop between stages sharing a CPU,
        # which could otherwise livelock at a single timestamp.
        self.rate_propagation_delay_s = 0.05
        self._downstream_update_pending = [False] * len(self.stages)
        for upstream_index, consumers in enumerate(self._consumers):
            if not consumers:
                continue
            stage = self.stages[upstream_index]
            for flow in stage.flows.values():
                flow.output_listeners.append(
                    lambda _rate, k=upstream_index: self._queue_downstream_update(k)
                )

        # --- ingest skew ---------------------------------------------------
        #: Schedule of ``(at_s, hot_fraction, hot_node)`` entries: from
        #: ``at_s`` on, the hot node of every source-fed stage receives
        #: ``hot_fraction`` of that stage's ingest while the remaining
        #: nodes share the rest evenly — the fluid-level model of
        #: hot-key skew (and, by re-pointing ``hot_node`` mid-run, of a
        #: hot spot that shifts).
        self._skew_schedule = tuple(
            (float(at), float(frac), int(node)) for at, frac, node in skew
        )
        for at, frac, _node in self._skew_schedule:
            if at < 0:
                raise ConfigurationError(f"skew entry at_s must be >= 0, got {at}")
            if not 0.0 < frac <= 1.0:
                raise ConfigurationError(
                    f"skew hot_fraction must be in (0, 1], got {frac}"
                )
        #: Active ``(hot_fraction, hot_node)`` skew, or ``None`` = even.
        self._skew_state: Optional[tuple] = None
        #: Last admitted (post-shedding) source rate.
        self._admitted_rate = 0.0

        if initial_l0:
            self._preload_l0(initial_l0)

        # --- fault injection (repro.faults) ------------------------------
        #: Set by repro.faults.inject_faults(); None on fault-free runs.
        self.fault_plan = None
        self.fault_injector = None
        self.invariant_checker = None
        if faults is not None:
            from ..faults import inject_faults

            inject_faults(self, faults)

        # --- overload protection (repro.resilience) -----------------------
        #: Admission controller over the source rate (a LoadShedder when
        #: the resilience layer is installed, else None = pass-through).
        self.admission = None
        #: Last offered (pre-admission) source rate.
        self.offered_rate = 0.0
        #: Set by repro.resilience.install_resilience(); None when the
        #: layer is disabled.
        self.resilience = None
        self.resilience_config = None
        if resilience is not None:
            from ..resilience import install_resilience

            install_resilience(self, resilience)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _node(self, name: str) -> WorkerNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise SimulationError(f"unknown node {name!r}")

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise ConfigurationError(f"unknown stage {name!r}")

    # ------------------------------------------------------------------
    # elastic topology (driven by repro.cluster)
    # ------------------------------------------------------------------

    def add_worker_node(self, name: str, cores: int) -> WorkerNode:
        """Add a fresh worker node mid-run (scale-out).

        The node starts empty — :meth:`relocate_instance` moves
        partitions onto it — and is watched by the metrics collector
        like the initial fleet.
        """
        if any(node.name == name for node in self.nodes):
            raise ConfigurationError(f"node {name!r} already exists")
        node = WorkerNode(
            self.sim,
            name,
            cores=cores,
            storage=self.cluster.storage,
            flush_threads=self._pool_threads[0],
            compaction_threads=self._pool_threads[1],
        )
        self.nodes.append(node)
        self.collector.watch_resource(node.cpu)
        self.collector.watch_pool(node.flush_pool, node.name)
        self.collector.watch_pool(node.compaction_pool, node.name)
        self._topology_epoch += 1
        return node

    def _ensure_flow(self, stage: Stage, node: WorkerNode) -> FluidFlow:
        """The stage's flow on *node*, created and attached on demand
        (a stage newly placed on a node needs a processing lane)."""
        flow = stage.flows.get(node.name)
        if flow is not None:
            return flow
        spec = stage.spec
        flow = FluidFlow(
            self.sim,
            name=f"{spec.name}@{node.name}",
            work_per_message=self.cost.cpu_seconds_per_message
            * spec.work_multiplier,
            max_parallelism=1.0,
        )
        stage.flows[node.name] = flow
        node.cpu.add_flow(flow)
        index = self.stages.index(stage)
        if self._consumers[index]:
            flow.output_listeners.append(
                lambda _rate, k=index: self._queue_downstream_update(k)
            )
        return flow

    def _rebalance_flow_caps(self, node: WorkerNode) -> None:
        """Re-split *node*'s processing slots over the stages it hosts
        (the same cores × hosted/total rule as construction)."""
        total = sum(
            len(stage.instances_by_node.get(node.name, ()))
            for stage in self.stages
        )
        for stage in self.stages:
            hosted = len(stage.instances_by_node.get(node.name, ()))
            flow = stage.flows.get(node.name)
            if flow is None or hosted == 0 or total == 0:
                continue
            slots = node.cores * hosted / total
            flow.max_parallelism = min(float(hosted), slots)
        node.cpu.request_reallocation()

    def relocate_instance(self, instance: StageInstance,
                          dest: WorkerNode) -> float:
        """Move *instance* to *dest* at the current event time.

        Host maps, the instance's node pointer, per-node flows and slot
        caps, and the stage's arrival split all change together.  When
        the source node stops hosting the stage its flow is zeroed and
        drained; the drained backlog (messages) is returned so the
        caller can replay it on the destination.
        """
        stage = self.stage(instance.spec.name)
        src = instance.node
        if src is dest:
            return 0.0
        hosted = stage.instances_by_node.get(src.name, [])
        if instance in hosted:
            hosted.remove(instance)
        src_emptied = not hosted
        if src_emptied:
            stage.instances_by_node.pop(src.name, None)
        if instance in src.instances:
            src.instances.remove(instance)
        instance.node = dest
        dest.host(instance)
        stage.instances_by_node.setdefault(dest.name, []).append(instance)
        self._ensure_flow(stage, dest)
        drained = 0.0
        if src_emptied:
            flow = stage.flows.get(src.name)
            if flow is not None:
                flow.set_arrival_rate(0.0)
                drained = flow.drop_backlog()
        self._topology_epoch += 1
        self._rebalance_flow_caps(src)
        self._rebalance_flow_caps(dest)
        self._refresh_arrival(self.stages.index(stage))
        stage.update_blocked(src.name)
        stage.update_blocked(dest.name)
        return drained

    def expected_stage_rate(self, index: int) -> float:
        """Steady input rate of stage *index* given the source rate.

        Follows the input graph: a chained stage sees its upstream's
        output (input × selectivity), a source-fed stage its share of
        the source rate, and a two-input stage the sum of its feeds.
        """
        rate = 0.0
        for upstream in self._inputs[index]:
            if upstream == _SOURCE:
                rate += (
                    self.source.steady_rate()
                    * self.stages[index].spec.source_fraction
                )
            else:
                rate += (
                    self.expected_stage_rate(upstream)
                    * self.stages[upstream].spec.selectivity
                )
        return rate

    def expected_flush_bytes(self, spec: StageSpec, stage_index: int) -> float:
        """Expected memtable bytes accumulated per checkpoint interval."""
        per_instance_rate = self.expected_stage_rate(stage_index) / spec.parallelism
        accumulated = (
            per_instance_rate
            * spec.state_entry_bytes
            * self.checkpoint_config.interval_s
        )
        if spec.distinct_keys:
            saturated = spec.distinct_keys_per_instance * spec.state_entry_bytes
            return min(accumulated, saturated)
        return accumulated

    def _preload_l0(self, initial_l0: Dict[str, InitialL0]) -> None:
        """Install synthetic L0 SSTables to set each store's counter
        phase — the 'initial condition' of §3.3."""
        for stage_index, stage in enumerate(self.stages):
            setting = initial_l0.get(stage.name)
            if setting is None:
                continue
            size = int(self.expected_flush_bytes(stage.spec, stage_index))
            for instance in stage.instances:
                if instance.store is None:
                    continue
                count = setting(instance) if callable(setting) else int(setting)
                trigger = instance.store.options.l0_compaction_trigger
                if count < 0 or count >= trigger:
                    raise ConfigurationError(
                        f"initial L0 count {count} must be in [0, {trigger})"
                    )
                for _ in range(count):
                    instance.store.levels.add_l0(
                        SSTable([], logical_bytes=size, level=0)
                    )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def set_source_rate(self, rate: float) -> None:
        """Offer a new source rate; admission control may clamp it."""
        self.offered_rate = rate
        if self.admission is not None:
            rate = self.admission.offer(rate)
        self._apply_source_rate(rate)

    def _apply_source_rate(self, rate: float) -> None:
        """Push an (already admitted) source rate into every source-fed
        stage's flows."""
        self._admitted_rate = rate
        for index in self._source_fed:
            self._refresh_arrival(index)

    def _node_shares(self, stage: Stage, skewed: bool) -> Dict[str, float]:
        """Per-node split of *stage*'s arrival rate (sums to 1.0)."""
        hosting = stage.nodes()
        if skewed and self._skew_state is not None and len(hosting) > 1:
            frac, hot = self._skew_state
            hot_name = hosting[hot % len(hosting)]
            rest = (1.0 - frac) / (len(hosting) - 1)
            return {
                name: (frac if name == hot_name else rest) for name in hosting
            }
        # weight by hosted instances — identical to the historical even
        # split while hosting is uniform (counts/total rounds to the
        # same double as 1/n when the true ratios are equal), and the
        # correct keyed split once rebalancing makes hosting uneven
        counts = {
            name: len(stage.instances_by_node[name]) for name in hosting
        }
        total = sum(counts.values())
        return {name: counts[name] / total for name in hosting}

    def _refresh_arrival(self, index: int) -> None:
        """Recompute stage *index*'s total input rate from its feeds and
        split it over hosting nodes (skew-weighted at the source)."""
        stage = self.stages[index]
        total = 0.0
        source_fed = False
        for upstream in self._inputs[index]:
            if upstream == _SOURCE:
                total += self._admitted_rate * stage.spec.source_fraction
                source_fed = True
            else:
                total += self.stages[upstream].total_output_rate()
        for node_name, share in self._node_shares(stage, source_fed).items():
            stage.flows[node_name].set_arrival_rate(total * share)

    def _set_skew(self, hot_fraction: float, hot_node: int) -> None:
        """Activate one skew-schedule entry and re-split the ingest."""
        self._skew_state = (hot_fraction, hot_node)
        for index in self._source_fed:
            self._refresh_arrival(index)

    def _queue_downstream_update(self, upstream_index: int) -> None:
        if self._downstream_update_pending[upstream_index]:
            return
        self._downstream_update_pending[upstream_index] = True
        self.sim.schedule_after(
            self.rate_propagation_delay_s, self._update_downstream, upstream_index
        )

    def _update_downstream(self, upstream_index: int) -> None:
        self._downstream_update_pending[upstream_index] = False
        for downstream in self._consumers[upstream_index]:
            self._refresh_arrival(downstream)

    def _account_loop(self, instance: StageInstance, stage: Stage):
        store = instance.store
        spec = stage.spec
        tick = 0
        while True:
            yield self.accounting_dt
            tick += 1
            flow = stage.flows[instance.node.name]
            hosted = len(stage.instances_by_node[instance.node.name])
            rate = flow.arrival_rate / hosted
            updates = rate * self.accounting_dt
            if updates <= 0:
                continue
            # Keyed state overwrites in place: a memtable grows until it
            # holds every distinct key this instance owns, then updates
            # stop adding bytes (see StageSpec.distinct_keys).
            if spec.distinct_keys:
                capacity = spec.distinct_keys_per_instance
                new_entries = min(updates, max(0.0, capacity - store.memtable_entries))
            else:
                new_entries = updates
            if new_entries >= 1.0:
                store.account(
                    int(round(new_entries)),
                    int(round(new_entries * spec.state_entry_bytes)),
                )
            if self.sample_real_state:
                key_space = int(spec.distinct_keys_per_instance) or 997
                key = f"{instance.name}:{tick % key_space}".encode()
                payload = b"x" * min(int(spec.state_entry_bytes) or 1, 1024)
                store.put(key, payload)
            if store.memtable_full and instance.flush_in_flight == 0:
                # Memtable-full flush is the LSM write path's own
                # backpressure; deferring it would grow the memtable
                # without bound.
                # repro: allow[DS201] declared write-path backpressure
                self.backend.flush_instance(instance, reason="memtable-full")

    def _account_entries(self) -> list:
        """Per-instance accounting constants for the batched loop.

        One tuple per stateful instance, in spawn order (stage order,
        then instance index) — the iteration order is what keeps the
        batched loop state-identical to one process per instance.
        """
        entries = []
        for stage in self.stages:
            if not stage.spec.stateful or stage.spec.state_entry_bytes <= 0:
                continue
            spec = stage.spec
            entry_bytes = spec.state_entry_bytes
            key_space = int(spec.distinct_keys_per_instance) or 997
            payload = b"x" * min(int(entry_bytes) or 1, 1024)
            capacity = spec.distinct_keys_per_instance if spec.distinct_keys else None
            for instance in stage.instances:
                entries.append((
                    instance,
                    instance.store,
                    stage.flows[instance.node.name],
                    len(stage.instances_by_node[instance.node.name]),
                    capacity,
                    entry_bytes,
                    key_space,
                    f"{instance.name}:".encode(),
                    payload,
                ))
        return entries

    def _account_all_loop(self, entries: list):
        """One kernel event per accounting tick for *all* instances.

        Body-for-body identical to :meth:`_account_loop` (same math,
        same order), with the per-tick constants precomputed.
        """
        dt = self.accounting_dt
        sample = self.sample_real_state
        backend_flush = self.backend.flush_instance
        epoch = self._topology_epoch
        tick = 0
        while True:
            yield dt
            tick += 1
            if self._topology_epoch != epoch:
                # a node joined or a partition moved: the precomputed
                # flow/hosted-count references are stale — rebuild
                entries = self._account_entries()
                epoch = self._topology_epoch
            for (instance, store, flow, hosted, capacity, entry_bytes,
                 key_space, key_prefix, payload) in entries:
                updates = flow.arrival_rate / hosted * dt
                if updates <= 0:
                    continue
                if capacity is not None:
                    new_entries = min(
                        updates, max(0.0, capacity - store.memtable_entries)
                    )
                else:
                    new_entries = updates
                if new_entries >= 1.0:
                    store.account(
                        int(round(new_entries)),
                        int(round(new_entries * entry_bytes)),
                    )
                if sample:
                    store.put(key_prefix + b"%d" % (tick % key_space), payload)
                if store.memtable_full and instance.flush_in_flight == 0:
                    # Same memtable-full backpressure as the
                    # per-instance accounting loop.
                    # repro: allow[DS201] declared write-path backpressure
                    backend_flush(instance, reason="memtable-full")

    def start_run(self) -> None:
        """Arm the job: source, checkpoints and accounting loops.

        Part of the stepped-execution API used by sharded mode
        (:mod:`repro.experiments.shard`): ``start_run()`` once, then
        :meth:`advance_to` in increasing time steps, then
        :meth:`finish_run`.  :meth:`run` composes the three.
        """
        if self._started:
            raise SimulationError("a StreamJob can only be run once")
        self._started = True
        bind = getattr(self.source, "bind", None)
        if callable(bind):
            # Closed-loop clients need the job to observe backlog.
            bind(self)
        self.source.start(self.sim, self.set_source_rate)
        for at_s, hot_fraction, hot_node in self._skew_schedule:
            self.sim.schedule(at_s, self._set_skew, hot_fraction, hot_node)
        self.coordinator.start()
        if self.coalesce_accounting:
            entries = self._account_entries()
            if entries:
                spawn(self.sim, self._account_all_loop(entries), name="account-all")
        else:
            for stage in self.stages:
                if not stage.spec.stateful or stage.spec.state_entry_bytes <= 0:
                    continue
                for instance in stage.instances:
                    spawn(
                        self.sim,
                        self._account_loop(instance, stage),
                        name=f"account-{instance.name}",
                    )

    def advance_to(self, time: float) -> None:
        """Advance the armed job's clock exactly to *time*.

        Events are dispatched in the same global order as one
        uninterrupted run — ``sim.run(until=t)`` leaves the clock at
        ``t`` and resumes cleanly, so splitting a run into steps is
        state-identical to running it in one call.
        """
        if not self._started:
            raise SimulationError("advance_to() before start_run()")
        self.sim.run(until=time)

    def finish_run(self, duration: float) -> StreamJobResult:
        """Close out flow histories and collect the run's results."""
        for stage in self.stages:
            for flow in stage.flows.values():
                flow.finalize(self.sim.now)
        if self.invariant_checker is not None:
            self.invariant_checker.finalize()
        if self.resilience is not None:
            self.resilience.finalize(self.sim.now)
        return StreamJobResult(self, duration)

    def run(
        self, duration: float, barrier_s: Optional[float] = None
    ) -> StreamJobResult:
        """Run for *duration* simulated seconds and collect results.

        *barrier_s* advances the clock in lock-step epochs of that many
        seconds instead of one continuous run — the conservative
        synchronization window of sharded mode.  The event sequence is
        identical either way; the epochs only bound how far the clock
        advances per :meth:`advance_to` call.
        """
        self.start_run()
        if barrier_s is None:
            self.sim.run(until=duration)
        else:
            if barrier_s <= 0:
                raise ConfigurationError(f"barrier_s must be > 0, got {barrier_s}")
            now = 0.0
            while now < duration - 1e-12:
                now = min(now + barrier_s, duration)
                self.sim.run(until=now)
        return self.finish_run(duration)


class StreamJobResult:
    """Measurements of one finished run."""

    def __init__(self, job: StreamJob, duration: float) -> None:
        self.job = job
        self.duration = duration
        self.collector = job.collector
        self.coordinator = job.coordinator
        self.spans = job.collector.spans
        #: Memoized ``(start, end, dt) -> (times, latency, weights)``.
        #: The latency inversion is the single most repeated analysis:
        #: tails, the coarse and fine timelines and the run summary all
        #: ask for the same grid.  Callers treat the arrays as
        #: read-only.
        self._latency_cache: Dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # latency
    # ------------------------------------------------------------------

    def stage_latency(
        self, stage_name: str, start: float, end: float, dt: float = 0.01
    ):
        """Mean-over-nodes queueing latency of one stage on a grid."""
        stage = self.job.stage(stage_name)
        latencies = []
        weights = None
        times = None
        for flow in stage.flows.values():
            t, lat, w = latency_from_segments(flow.history(), start, end, dt)
            latencies.append(lat)
            times = t
            weights = w if weights is None else weights + w
        return times, np.mean(latencies, axis=0), weights

    def end_to_end_latency(
        self, start: float = 0.0, end: Optional[float] = None, dt: float = 0.01
    ):
        """End-to-end latency for arrivals on a grid.

        Returns ``(times, latency_seconds, arrival_weights)``; the
        constant pipeline overhead (:attr:`CostModel.base_latency_seconds`)
        is included.
        """
        if end is None:
            end = self.duration
        key = (start, end, dt)
        cached = self._latency_cache.get(key)
        if cached is not None:
            return cached
        per_stage = []
        weights = None
        times = None
        for stage in self.job.stages:
            t, lat, w = self.stage_latency(stage.name, start, end, dt)
            per_stage.append(lat)
            times = t
            if weights is None:
                weights = w
        total = compose_latencies(times, per_stage)
        result = times, total + self.job.cost.base_latency_seconds, weights
        self._latency_cache[key] = result
        return result

    def latency_timeline(
        self,
        quantile: float = 0.999,
        window: float = 0.05,
        start: float = 0.0,
        end: Optional[float] = None,
        dt: float = 0.01,
    ):
        """The paper's per-window pXX timeline (Figures 3, 8, 16–20)."""
        times, latency, weights = self.end_to_end_latency(start, end, dt)
        return windowed_quantile(times, latency, window, quantile, weights)

    def tail_summary(self, start: float = 0.0, end: Optional[float] = None) -> dict:
        times, latency, weights = self.end_to_end_latency(start, end)
        return tail_summary(latency, weights)

    # ------------------------------------------------------------------
    # resources and activities
    # ------------------------------------------------------------------

    def cpu_series(self, node: Optional[str] = None) -> StepSeries:
        return self.collector.cpu_series(node)

    def queue_series(self, stage_name: str, start: float, end: float, dt: float = 0.05):
        """Total backlog (messages) of one stage over time."""
        stage = self.job.stage(stage_name)
        times = np.arange(start, end, dt)
        total = np.zeros(len(times))
        for flow in stage.flows.values():
            _t, _lam, _mu, queue = rates_on_grid(flow.history(), start, end, dt)
            total += queue
        return times, total

    def concurrency(self, kind: str, start: float, end: float, dt: float = 0.05,
                    stage: Optional[str] = None):
        return self.spans.concurrency_series(start, end, dt, kind=kind, stage=stage)

    def checkpoint_stats(self):
        return self.collector.checkpoint_stats()

    def flush_spans(self, **filters):
        return self.spans.spans(kind="flush", **filters)

    def compaction_spans(self, **filters):
        return self.spans.spans(kind="compaction", **filters)

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------

    @property
    def tracer(self):
        """The run's tracer (the no-op tracer on untraced runs)."""
        return self.job.sim.tracer

    def export_trace(
        self,
        path,
        format: str = "jsonl",
        cpu_dt: float = 0.05,
        latency_window: float = 0.05,
    ) -> None:
        """Write the run's trace to *path*.

        ``format`` is ``"jsonl"`` (the stable interchange schema) or
        ``"chrome"`` (Chrome trace-event JSON, loadable in Perfetto).
        On top of the live events the export appends derived counter
        tracks — per-``cpu_dt`` mean CPU demand per node and the
        windowed p99.9 latency timeline — so a trace viewer shows the
        paper's full causal chain on one screen.
        """
        from ..trace import Tracer as _Tracer

        export = _Tracer()
        export.extend(self.tracer.events)
        for node in self.collector.node_names():
            times, values = self.cpu_series(node).on_grid(0.0, self.duration, cpu_dt)
            for t, v in zip(times.tolist(), values.tolist()):
                export.counter("cpu", "cpu", t, v, tid=node)
        times, p999 = self.latency_timeline(window=latency_window)
        for t, v in zip(times.tolist(), p999.tolist()):
            export.counter("latency_p999", "latency", t, v, tid="latency")
        if format == "chrome":
            export.write_chrome(path)
        elif format == "jsonl":
            export.write_jsonl(path)
        else:
            raise ValueError(f"unknown trace format {format!r}")

    @property
    def fault_events(self) -> List[dict]:
        """Injected-fault events (empty on fault-free runs)."""
        injector = self.job.fault_injector
        return [] if injector is None else [dict(e) for e in injector.events]

    @property
    def invariant_violations(self) -> List[dict]:
        """Recorded invariant violations (empty when no checker ran)."""
        checker = self.job.invariant_checker
        return [] if checker is None else [v.to_dict() for v in checker.violations]

    @property
    def resilience_report(self) -> Optional[dict]:
        """The resilience layer's digest, or ``None`` when disabled."""
        controller = self.job.resilience
        return None if controller is None else controller.report()

    @property
    def resilience_windows(self) -> List[tuple]:
        """``(label, start, end)`` degraded/shedding spans (attribution)."""
        controller = self.job.resilience
        return [] if controller is None else list(controller.windows)

    @property
    def cluster_report(self) -> Optional[dict]:
        """The cluster layer's digest, or ``None`` when disabled."""
        manager = self.job.cluster_manager
        return None if manager is None else manager.report()

    @property
    def cluster_windows(self) -> List[tuple]:
        """``(label, start, end)`` rebalance/failover spans (attribution)."""
        manager = self.job.cluster_manager
        return [] if manager is None else list(manager.windows)

    def millibottleneck_report(self, start: float = 0.0,
                               end: Optional[float] = None, **kwargs):
        """Run the §3 millibottleneck detector over this run's trace
        and measurements (see :mod:`repro.analysis.millibottleneck`)."""
        from ..analysis.millibottleneck import analyze_result

        return analyze_result(self, start=start, end=end, **kwargs)

    def summary(self, start: float = 0.0, end: Optional[float] = None) -> dict:
        """A JSON-serializable digest of the run (tails, activity
        counts, checkpoint/backup stats, stalls) for dashboards and the
        CLI."""
        if end is None:
            end = self.duration
        completed = self.coordinator.completed
        summary = {
            "duration_s": self.duration,
            "measured_span": [start, end],
            "tails_s": self.tail_summary(start=start, end=end),
            "checkpoints": {
                "triggered": len(self.coordinator.records),
                "completed": len(completed),
                "mean_duration_s": (
                    sum(r.duration for r in completed) / len(completed)
                    if completed
                    else None
                ),
                "total_bytes": sum(r.bytes for r in completed),
            },
            "activities": {
                "flushes": self.spans.count(kind="flush"),
                "compactions": self.spans.count(kind="compaction"),
                "compaction_input_bytes": self.spans.total_input_bytes(
                    kind="compaction"
                ),
                "flush_compaction_overlap_s": self.spans.overlap_seconds(
                    "flush", "compaction", start, end
                ),
            },
            "write_stall_events": self.job.backend.write_stall_events,
            "backup_pending": self.job.hdfs.pending,
            "mean_cpu_cores": self.cpu_series(None).time_average(start, end),
        }
        if self.job.fault_injector is not None or self.job.invariant_checker is not None:
            plan = self.job.fault_plan
            summary["faults"] = {
                "plan": None if plan is None else plan.to_dict(),
                "events": self.fault_events,
                "invariant_violations": self.invariant_violations,
            }
        if self.job.resilience is not None:
            summary["resilience"] = self.resilience_report
        if self.job.cluster_manager is not None:
            summary["cluster"] = self.cluster_report
        return summary
