"""Worker nodes: the physical machines of Figure 4(b).

A node bundles the shared resources that ShadowSync plays out on:

* a processor-sharing **CPU** (message flows + flush/compaction tasks),
* a bandwidth-sharing **storage device** (tmpfs or NVMe),
* the RocksDB background **thread pools** — one flush pool and one
  compaction pool per node, shared by every store hosted there, which is
  exactly why tens of per-instance "independent" maintenance jobs end up
  contending (§3.2).
"""

from __future__ import annotations

from typing import List

from ..sim.kernel import Simulator
from ..sim.resource import ProcessorSharingResource
from ..sim.threadpool import SimThreadPool
from ..storage.backend import StorageProfile

__all__ = ["WorkerNode"]


class WorkerNode:
    """One Flink TaskManager host."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cores: int,
        storage: StorageProfile,
        flush_threads: int,
        compaction_threads: int,
    ) -> None:
        self.sim = sim
        self.name = name
        self.cores = cores
        self.storage = storage
        self.cpu = ProcessorSharingResource(sim, name, float(cores))
        self.device = ProcessorSharingResource(
            sim, f"{name}-{storage.name}", storage.device_capacity
        )
        self.flush_pool = SimThreadPool(sim, f"{name}-flush", flush_threads)
        self.compaction_pool = SimThreadPool(
            sim, f"{name}-compaction", compaction_threads
        )
        self.instances: List = []
        #: Crash-fault nesting depth (see :meth:`begin_crash`).
        self._crash_depth = 0

    def host(self, instance) -> None:
        self.instances.append(instance)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crash_depth > 0

    def begin_crash(self) -> None:
        """Take the node down: freeze every hosted instance and stop the
        background pools from starting new jobs.  Nestable (overlapping
        crash faults); :meth:`end_crash` undoes one level."""
        self._crash_depth += 1
        for instance in self.instances:
            instance.crashed = True
        # A crash must freeze the node's pools — the stall models the
        # outage itself, not an accidental block.
        # repro: allow[DS201] crash freeze is the modeled outage
        self.flush_pool.pause()
        self.compaction_pool.pause()  # repro: allow[DS201] same outage freeze

    def end_crash(self) -> None:
        """Bring the node back up (after state restore)."""
        if self._crash_depth == 0:
            return
        self._crash_depth -= 1
        if self._crash_depth == 0:
            for instance in self.instances:
                instance.crashed = False
        self.flush_pool.resume()
        self.compaction_pool.resume()

    @property
    def flush_threads(self) -> int:
        return self.flush_pool.size

    @property
    def compaction_threads(self) -> int:
        return self.compaction_pool.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WorkerNode {self.name} cores={self.cores} "
            f"instances={len(self.instances)} storage={self.storage.name}>"
        )
