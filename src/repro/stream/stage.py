"""Stages and stage instances of a streaming dataflow.

A *stage* (Flink: operator) runs as many parallel *stage instances*
(Flink: subtasks), each owning a keyed slice of the stage's state in its
own embedded :class:`~repro.lsm.store.LSMStore` — one RocksDB instance
per stateful subtask, exactly as Flink's RocksDB state backend does.
Per-node message processing of a stage is modelled by one
:class:`~repro.sim.fluid.FluidFlow`; an instance whose memtable is being
flushed is *blocked* (stop-the-world), raising the flow's blocked
fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..lsm.options import LSMOptions
from ..lsm.store import LSMStore
from ..sim.fluid import FluidFlow

__all__ = ["SOURCE_INPUT", "StageSpec", "StageInstance", "Stage"]

#: Sentinel name in :attr:`StageSpec.inputs` standing for the job's
#: external source (Kafka) rather than another stage.
SOURCE_INPUT = "source"


@dataclass(frozen=True)
class StageSpec:
    """Static description of one pipeline stage."""

    name: str
    #: Number of parallel instances (64/64/1 in the paper's Figure 4).
    parallelism: int
    #: Size of one keyed state entry (a car object, a street record).
    state_entry_bytes: float = 0.0
    #: Number of distinct state keys across the whole stage (60 000 cars,
    #: ~10 000 streets).  Updates overwrite in place, so a memtable's
    #: size *saturates* at the instance's share of this — which is why
    #: flush sizes are roughly interval-independent in the paper's
    #: overwrite-heavy workload.  0 means unbounded (append-only state).
    distinct_keys: int = 0
    #: Output messages emitted per input message.
    selectivity: float = 1.0
    #: Relative CPU cost of this stage's per-message work.
    work_multiplier: float = 1.0
    #: Stateless stages skip checkpoint flushes entirely.
    stateful: bool = True
    #: Upstream wiring.  ``None`` keeps the classic linear chain (the
    #: previous stage in the list; the external source for the first
    #: stage).  An explicit tuple names the upstream stages whose output
    #: feeds this one — :data:`SOURCE_INPUT` (``"source"``) stands for
    #: the job's external source.  A stage naming two upstream stages is
    #: a *two-input* operator (windowed join): its arrival rate is the
    #: sum of both branches' output rates.
    inputs: Optional[Tuple[str, ...]] = None
    #: Fraction of the external source rate this stage ingests when it
    #: is source-fed (two branch stages splitting one topic use e.g.
    #: 0.7 / 0.3; tenants sharing a cluster use 1/tenants each).
    source_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ConfigurationError(f"stage {self.name!r}: parallelism >= 1")
        if self.selectivity < 0:
            raise ConfigurationError(f"stage {self.name!r}: selectivity >= 0")
        if self.state_entry_bytes < 0:
            raise ConfigurationError(f"stage {self.name!r}: state bytes >= 0")
        if self.distinct_keys < 0:
            raise ConfigurationError(f"stage {self.name!r}: distinct_keys >= 0")
        if self.work_multiplier <= 0:
            raise ConfigurationError(f"stage {self.name!r}: work multiplier > 0")
        if self.inputs is not None:
            object.__setattr__(self, "inputs", tuple(self.inputs))
            if not self.inputs:
                raise ConfigurationError(
                    f"stage {self.name!r}: explicit inputs must not be empty"
                )
            if len(set(self.inputs)) != len(self.inputs):
                raise ConfigurationError(
                    f"stage {self.name!r}: duplicate input names"
                )
            if self.name in self.inputs:
                raise ConfigurationError(
                    f"stage {self.name!r}: a stage cannot feed itself"
                )
        if not 0.0 < self.source_fraction <= 1.0:
            raise ConfigurationError(
                f"stage {self.name!r}: source_fraction must be in (0, 1]"
            )

    @property
    def distinct_keys_per_instance(self) -> float:
        return self.distinct_keys / self.parallelism if self.distinct_keys else 0.0

    def scaled(self, divisor: int) -> "StageSpec":
        """A 1/*divisor* slice of this stage for sharded execution.

        Parallelism and the key space shrink together so the per-instance
        key share — and therefore memtable saturation and flush sizes —
        are unchanged.  A singleton stage (parallelism 1, e.g. the
        traffic job's global ranking stage) is replicated into every
        shard with its 1/*divisor* key share; any other parallelism must
        divide evenly or the slice would not mirror the full deployment.
        """
        if divisor == 1:
            return self
        if divisor < 1:
            raise ConfigurationError(f"stage {self.name!r}: divisor >= 1")
        if self.parallelism == 1:
            parallelism = 1
        elif self.parallelism % divisor == 0:
            parallelism = self.parallelism // divisor
        else:
            raise ConfigurationError(
                f"stage {self.name!r}: parallelism {self.parallelism} "
                f"not divisible by {divisor} shards"
            )
        return replace(
            self,
            parallelism=parallelism,
            distinct_keys=self.distinct_keys // divisor,
        )


class StageInstance:
    """One parallel subtask with its embedded LSM store."""

    def __init__(
        self,
        spec: StageSpec,
        index: int,
        node,
        lsm_options: Optional[LSMOptions] = None,
    ) -> None:
        self.spec = spec
        self.index = index
        self.node = node
        self.store: Optional[LSMStore] = None
        if spec.stateful:
            self.store = LSMStore(
                lsm_options or LSMOptions(), name=f"{spec.name}/{index}"
            )
        self.blocked = False
        self.flush_in_flight = 0
        #: Write-stall severity: 0 none, 0.5 slowdown, 1.0 stopped.
        self.stall_level = 0.0
        #: Set while the hosting worker is down (fault injection); fully
        #: freezes this instance's share of the stage's processing.
        self.crashed = False
        #: Bumped by a watchdog-forced restart; in-flight flush jobs
        #: carry the epoch they started under and their completion is
        #: discarded when it no longer matches (the restart already
        #: reset the instance's flush bookkeeping).
        self.restart_epoch = 0

    @property
    def name(self) -> str:
        return f"{self.spec.name}/{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StageInstance {self.name} on {self.node.name}>"


class Stage:
    """A stage with its instances and per-node flows."""

    def __init__(self, spec: StageSpec) -> None:
        self.spec = spec
        self.instances: List[StageInstance] = []
        #: node name -> FluidFlow modelling this stage's processing there.
        self.flows: Dict[str, FluidFlow] = {}
        #: node name -> instances hosted there.
        self.instances_by_node: Dict[str, List[StageInstance]] = {}

    @property
    def name(self) -> str:
        return self.spec.name

    def add_instance(self, instance: StageInstance) -> None:
        self.instances.append(instance)
        self.instances_by_node.setdefault(instance.node.name, []).append(instance)

    def nodes(self) -> List[str]:
        return sorted(self.instances_by_node)

    def blocked_fraction(self, node_name: str) -> float:
        """Fraction of this stage's processing frozen on *node_name* —
        stop-the-world flushes plus LSM write stalls."""
        hosted = self.instances_by_node.get(node_name, [])
        if not hosted:
            return 0.0
        blocked = 0.0
        for inst in hosted:
            if inst.blocked or inst.crashed:
                blocked += 1.0
            else:
                blocked += inst.stall_level
        return blocked / len(hosted)

    def update_blocked(self, node_name: str) -> None:
        """Push the current blocked fraction into the node's flow."""
        flow = self.flows.get(node_name)
        if flow is not None:
            flow.set_blocked_fraction(self.blocked_fraction(node_name))

    def total_output_rate(self) -> float:
        """Aggregate downstream rate: served msgs/s × selectivity."""
        return self.spec.selectivity * sum(
            flow.serve_rate for flow in self.flows.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stage {self.name} x{self.spec.parallelism}>"
