"""The checkpoint coordinator (Flink's periodic, coordinated snapshots).

Every ``interval_s`` the coordinator triggers a global checkpoint: each
stateful stage instance flushes its memtable (the synchronous part that
stalls that instance), and when every flush of the checkpoint has
completed the new SSTables are shipped asynchronously to HDFS.  The
trigger is *simultaneous across all instances* — the second
pre-condition of ShadowSync (§4.1): hundreds of flushes start together,
so any compactions they trip also start together.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import CheckpointConfig
from ..metrics.collector import MetricsCollector
from ..sim.kernel import Simulator
from ..sim.process import spawn
from ..storage.hdfs import HdfsBackup
from .stage import Stage
from .state_backend import LSMStateBackend

__all__ = ["CheckpointRecord", "CheckpointCoordinator"]


class CheckpointRecord:
    """Outcome of one checkpoint."""

    __slots__ = ("checkpoint_id", "triggered_at", "completed_at", "bytes", "flushes")

    def __init__(self, checkpoint_id: int, triggered_at: float) -> None:
        self.checkpoint_id = checkpoint_id
        self.triggered_at = triggered_at
        self.completed_at: Optional[float] = None
        self.bytes = 0
        self.flushes = 0

    @property
    def duration(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.triggered_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Checkpoint #{self.checkpoint_id} at {self.triggered_at:.1f}s "
            f"bytes={self.bytes} flushes={self.flushes}>"
        )


class CheckpointCoordinator:
    """Triggers checkpoints and tracks their completion."""

    def __init__(
        self,
        sim: Simulator,
        config: CheckpointConfig,
        stages: List[Stage],
        backend: LSMStateBackend,
        collector: Optional[MetricsCollector] = None,
        hdfs: Optional[HdfsBackup] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.stages = stages
        self.backend = backend
        self.collector = collector
        self.hdfs = hdfs
        self.records: List[CheckpointRecord] = []
        self._next_id = 0
        self._in_flight = 0
        self.skipped_overlapping = 0
        #: Callbacks invoked with the trigger time of every checkpoint.
        self.on_trigger: List = []

    def start(self) -> None:
        spawn(self.sim, self._loop(), name="checkpoint-coordinator")

    def _loop(self):
        yield max(0.0, self.config.first_at_s - self.sim.now)
        while True:
            self.trigger()
            yield self.config.interval_s

    # ------------------------------------------------------------------

    def trigger(self) -> Optional[CheckpointRecord]:
        """Fire one checkpoint now; returns its record (or ``None`` when
        an overlapping checkpoint was rejected by configuration)."""
        tracer = self.sim.tracer
        if not self.config.allow_overlap and self._in_flight > 0:
            self.skipped_overlapping += 1
            if tracer.enabled:
                tracer.instant(
                    "checkpoint-skipped",
                    "checkpoint",
                    self.sim.now,
                    tid="coordinator",
                    in_flight=self._in_flight,
                )
            return None
        self._next_id += 1
        record = CheckpointRecord(self._next_id, self.sim.now)
        self.records.append(record)
        if tracer.enabled:
            tracer.instant(
                "checkpoint-trigger",
                "checkpoint",
                self.sim.now,
                tid="coordinator",
                checkpoint_id=record.checkpoint_id,
            )
        if self.collector is not None:
            self.collector.note_checkpoint(self.sim.now)
        for callback in self.on_trigger:
            callback(self.sim.now)

        pending = [0]  # boxed counter shared by the ack closures
        self._in_flight += 1

        def ack(nbytes: int, record: CheckpointRecord = record) -> None:
            record.bytes += nbytes
            if nbytes > 0:
                record.flushes += 1
            pending[0] -= 1
            if tracer.enabled:
                tracer.instant(
                    "checkpoint-ack",
                    "checkpoint",
                    self.sim.now,
                    tid="coordinator",
                    checkpoint_id=record.checkpoint_id,
                    bytes=nbytes,
                    pending=pending[0],
                )
            if pending[0] == 0:
                self._complete(record)

        instances = [
            instance
            for stage in self.stages
            if stage.spec.stateful
            for instance in stage.instances
        ]
        pending[0] = len(instances)
        if not instances:
            self._complete(record)
            return record
        for instance in instances:
            self.backend.flush_instance(instance, reason="checkpoint", on_done=ack)
        return record

    def _complete(self, record: CheckpointRecord) -> None:
        record.completed_at = self.sim.now
        self._in_flight -= 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.complete(
                f"checkpoint-{record.checkpoint_id}",
                "checkpoint",
                record.triggered_at,
                record.duration or 0.0,
                tid="coordinator",
                checkpoint_id=record.checkpoint_id,
                bytes=record.bytes,
                flushes=record.flushes,
            )
        if self.hdfs is not None:
            self.hdfs.backup(record.checkpoint_id, record.bytes)

    # ------------------------------------------------------------------

    @property
    def completed(self) -> List[CheckpointRecord]:
        return [r for r in self.records if r.completed_at is not None]

    def checkpoint_times(self) -> List[float]:
        return [r.triggered_at for r in self.records]
