"""The checkpoint coordinator (Flink's periodic, coordinated snapshots).

Every ``interval_s`` the coordinator triggers a global checkpoint: each
stateful stage instance flushes its memtable (the synchronous part that
stalls that instance), and when every flush of the checkpoint has
completed the new SSTables are shipped asynchronously to HDFS.  The
trigger is *simultaneous across all instances* — the second
pre-condition of ShadowSync (§4.1): hundreds of flushes start together,
so any compactions they trip also start together.

The coordinator also owns the recovery path exercised by fault
injection: each instance's ack captures a state snapshot (level
structure + WAL frontier), a completed checkpoint promotes those
snapshots to the instance's restore point, and
:meth:`CheckpointCoordinator.restore_instance` rewinds a crashed
instance's store to it in place.  Checkpoints caught by a crash (or by
the configured ``timeout_s``) are *aborted*: late acks are dropped and
their snapshots are never restored from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import CheckpointConfig
from ..metrics.collector import MetricsCollector
from ..sim.events import HIGH_PRIORITY
from ..sim.kernel import Simulator
from ..sim.process import spawn
from ..storage.hdfs import HdfsBackup
from .stage import Stage, StageInstance
from .state_backend import LSMStateBackend

__all__ = ["CheckpointRecord", "CheckpointCoordinator"]


class CheckpointRecord:
    """Outcome of one checkpoint."""

    __slots__ = (
        "checkpoint_id",
        "triggered_at",
        "completed_at",
        "aborted_at",
        "abort_reason",
        "state",
        "bytes",
        "flushes",
        "snapshots",
    )

    def __init__(self, checkpoint_id: int, triggered_at: float) -> None:
        self.checkpoint_id = checkpoint_id
        self.triggered_at = triggered_at
        self.completed_at: Optional[float] = None
        self.aborted_at: Optional[float] = None
        self.abort_reason: Optional[str] = None
        #: "in-flight" → "completed" | "aborted".
        self.state = "in-flight"
        self.bytes = 0
        self.flushes = 0
        #: instance name -> state snapshot captured at its flush ack.
        self.snapshots: Dict[str, dict] = {}

    @property
    def duration(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.triggered_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Checkpoint #{self.checkpoint_id} at {self.triggered_at:.1f}s "
            f"state={self.state} bytes={self.bytes} flushes={self.flushes}>"
        )


class CheckpointCoordinator:
    """Triggers checkpoints, tracks their completion, restores state."""

    def __init__(
        self,
        sim: Simulator,
        config: CheckpointConfig,
        stages: List[Stage],
        backend: LSMStateBackend,
        collector: Optional[MetricsCollector] = None,
        hdfs: Optional[HdfsBackup] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.stages = stages
        self.backend = backend
        self.collector = collector
        self.hdfs = hdfs
        self.records: List[CheckpointRecord] = []
        self._next_id = 0
        self._in_flight = 0
        self.skipped_overlapping = 0
        #: Checkpoint timeout in effect for *future* triggers; starts as
        #: the config value and may be changed by fault injection.
        self.timeout_s: Optional[float] = config.timeout_s
        #: Multiplier on the configured interval for *future* triggers.
        #: 1.0 normally; the resilience guard stretches it (> 1.0) in
        #: degraded mode to shed checkpoint-induced flush load.
        self.interval_scale: float = 1.0
        #: Optional hook replacing the direct HDFS upload of a completed
        #: checkpoint: called with ``(record)``.  The resilience layer
        #: installs a retry/deadline/circuit-breaker wrapper here.
        self.uploader = None
        #: instance name -> (checkpoint_id, triggered_at, snapshot) of
        #: the newest *completed* checkpoint covering that instance.
        self._latest_snapshot: Dict[str, Tuple[int, float, dict]] = {}
        #: Restore operations performed, for summaries and tests.
        self.restore_events: List[dict] = []
        #: Callbacks invoked with the trigger time of every checkpoint.
        self.on_trigger: List = []

    def start(self) -> None:
        # A trigger time t is the *boundary* of the interval it closes:
        # state accumulated strictly before t belongs to this checkpoint,
        # accounting ticks landing exactly at t to the next one.  The
        # HIGH_PRIORITY wake-up makes that ordering explicit; without it
        # the trigger races the per-instance accounting ticks scheduled
        # for the same timestamp (found by repro.sanitize's race
        # detector as a flushed-vs-refilled memtable divergence).
        spawn(
            self.sim,
            self._loop(),
            name="checkpoint-coordinator",
            priority=HIGH_PRIORITY,
        )

    def _loop(self):
        yield max(0.0, self.config.first_at_s - self.sim.now)
        while True:
            # The periodic barrier is the paper's declared sync point
            # (checkpoint.trigger in SYNC_CATALOG); this loop exists
            # to exercise it.
            # repro: allow[DS201] declared checkpoint barrier
            self.trigger()
            yield self.config.interval_s * self.interval_scale

    # ------------------------------------------------------------------

    def trigger(self) -> Optional[CheckpointRecord]:
        """Fire one checkpoint now; returns its record (or ``None`` when
        an overlapping checkpoint was rejected by configuration)."""
        tracer = self.sim.tracer
        if not self.config.allow_overlap and self._in_flight > 0:
            self.skipped_overlapping += 1
            if tracer.enabled:
                tracer.instant(
                    "checkpoint-skipped",
                    "checkpoint",
                    self.sim.now,
                    tid="coordinator",
                    in_flight=self._in_flight,
                )
            return None
        self._next_id += 1
        record = CheckpointRecord(self._next_id, self.sim.now)
        self.records.append(record)
        if tracer.enabled:
            tracer.instant(
                "checkpoint-trigger",
                "checkpoint",
                self.sim.now,
                tid="coordinator",
                checkpoint_id=record.checkpoint_id,
            )
        if self.collector is not None:
            self.collector.note_checkpoint(self.sim.now)
        for callback in self.on_trigger:
            callback(self.sim.now)

        pending = [0]  # boxed counter shared by the ack closures
        self._in_flight += 1
        if self.timeout_s is not None:
            self.sim.schedule_after(self.timeout_s, self._check_timeout, record)

        def make_ack(instance: StageInstance):
            def ack(nbytes: int) -> None:
                if record.state != "in-flight":
                    return  # aborted (crash or timeout): drop late acks
                self._capture_snapshot(record, instance)
                record.bytes += nbytes
                if nbytes > 0:
                    record.flushes += 1
                pending[0] -= 1
                if tracer.enabled:
                    tracer.instant(
                        "checkpoint-ack",
                        "checkpoint",
                        self.sim.now,
                        tid="coordinator",
                        checkpoint_id=record.checkpoint_id,
                        bytes=nbytes,
                        pending=pending[0],
                    )
                if pending[0] == 0:
                    self._complete(record)

            return ack

        instances = [
            instance
            for stage in self.stages
            if stage.spec.stateful
            for instance in stage.instances
        ]
        pending[0] = len(instances)
        if not instances:
            self._complete(record)
            return record
        for instance in instances:
            # Barrier semantics require every stateful instance to
            # flush before acking; this is checkpoint.trigger's
            # declared blocking edge (flush-block in the catalog).
            # repro: allow[DS201] declared barrier flush (backend.flush)
            self.backend.flush_instance(
                instance, reason="checkpoint", on_done=make_ack(instance)
            )
        return record

    def _capture_snapshot(
        self, record: CheckpointRecord, instance: StageInstance
    ) -> None:
        store = instance.store
        if store is None:
            return
        record.snapshots[instance.name] = store.snapshot_state()

    def _complete(self, record: CheckpointRecord) -> None:
        if record.state != "in-flight":
            return
        record.state = "completed"
        record.completed_at = self.sim.now
        self._in_flight -= 1
        for name, snapshot in record.snapshots.items():
            latest = self._latest_snapshot.get(name)
            if latest is None or latest[0] < record.checkpoint_id:
                self._latest_snapshot[name] = (
                    record.checkpoint_id, record.triggered_at, snapshot,
                )
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.complete(
                f"checkpoint-{record.checkpoint_id}",
                "checkpoint",
                record.triggered_at,
                record.duration or 0.0,
                tid="coordinator",
                checkpoint_id=record.checkpoint_id,
                bytes=record.bytes,
                flushes=record.flushes,
            )
        if self.uploader is not None:
            self.uploader(record)
        elif self.hdfs is not None:
            self.hdfs.backup(record.checkpoint_id, record.bytes)

    # ------------------------------------------------------------------
    # abort / timeout
    # ------------------------------------------------------------------

    def abort_in_flight(self, reason: str = "abort") -> List[CheckpointRecord]:
        """Abort every in-flight checkpoint (a worker crashed mid-barrier)."""
        aborted = [r for r in self.records if r.state == "in-flight"]
        for record in aborted:
            self._abort(record, reason)
        return aborted

    def _abort(self, record: CheckpointRecord, reason: str) -> None:
        if record.state != "in-flight":
            return
        record.state = "aborted"
        record.aborted_at = self.sim.now
        record.abort_reason = reason
        # an aborted checkpoint must never become a restore point
        record.snapshots.clear()
        self._in_flight -= 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "checkpoint-abort",
                "checkpoint",
                self.sim.now,
                tid="coordinator",
                checkpoint_id=record.checkpoint_id,
                reason=reason,
            )

    def _check_timeout(self, record: CheckpointRecord) -> None:
        if record.state == "in-flight":
            self._abort(record, "timeout")

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def latest_snapshot(self, instance_name: str) -> Optional[Tuple[int, float, dict]]:
        return self._latest_snapshot.get(instance_name)

    def last_completed_time(self) -> float:
        """Trigger time of the newest completed checkpoint (0 = none)."""
        done = [r.triggered_at for r in self.records if r.state == "completed"]
        return max(done) if done else 0.0

    def restore_instance(self, instance: StageInstance) -> dict:
        """Rewind *instance*'s store to its newest completed snapshot.

        A store that was never covered by a completed checkpoint is reset
        to a cold start (empty levels; WAL replay still applies).  The
        store object is mutated **in place** — the engine's accounting
        loops keep their references.  Returns a restore-info dict with
        ``checkpoint_id`` (``None`` = cold start) and ``snapshot_time``.
        """
        store = instance.store
        entry = self._latest_snapshot.get(instance.name)
        if store is None:
            info = {"instance": instance.name, "checkpoint_id": None,
                    "snapshot_time": self.last_completed_time(),
                    "restored": False}
        elif entry is None:
            store.restore_from_checkpoint(None)
            info = {"instance": instance.name, "checkpoint_id": None,
                    "snapshot_time": 0.0, "restored": True}
        else:
            checkpoint_id, triggered_at, snapshot = entry
            store.restore_from_checkpoint(snapshot)
            info = {"instance": instance.name, "checkpoint_id": checkpoint_id,
                    "snapshot_time": triggered_at, "restored": True}
        self.restore_events.append(dict(info, time=self.sim.now))
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "checkpoint-restore",
                "checkpoint",
                self.sim.now,
                tid="coordinator",
                instance=instance.name,
                checkpoint_id=info["checkpoint_id"],
            )
        return info

    # ------------------------------------------------------------------

    @property
    def completed(self) -> List[CheckpointRecord]:
        return [r for r in self.records if r.state == "completed"]

    @property
    def aborted(self) -> List[CheckpointRecord]:
        return [r for r in self.records if r.state == "aborted"]

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def checkpoint_times(self) -> List[float]:
        return [r.triggered_at for r in self.records]
