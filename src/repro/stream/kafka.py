"""A Kafka-like partitioned, persistent message queue.

The benchmark platform uses Kafka as its input/output queue
(Figure 4(a)) and Kafka Streams for the WordCount case study (§5.2).
This module implements the queue semantics the examples and the
WordCount data plane need: topics split into partitions, append-only
logs, key hashing, and per-consumer-group offset tracking.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from ..errors import ConfigurationError
from .messages import Record

__all__ = ["Partition", "Topic", "KafkaBroker"]


class Partition:
    """One append-only log."""

    def __init__(self, topic: str, index: int) -> None:
        self.topic = topic
        self.index = index
        self._log: List[Record] = []

    def append(self, record: Record) -> int:
        """Append and return the record's offset."""
        self._log.append(record)
        return len(self._log) - 1

    def read(self, offset: int, max_records: int = 100) -> List[Record]:
        if offset < 0:
            raise ConfigurationError("offset must be >= 0")
        return self._log[offset : offset + max_records]

    @property
    def end_offset(self) -> int:
        return len(self._log)

    def __len__(self) -> int:
        return len(self._log)


class Topic:
    """A named set of partitions with key-hash routing."""

    def __init__(self, name: str, partitions: int) -> None:
        if partitions < 1:
            raise ConfigurationError("a topic needs at least one partition")
        self.name = name
        self.partitions = [Partition(name, i) for i in range(partitions)]

    def partition_for(self, key: bytes) -> Partition:
        digest = hashlib.md5(key).digest()
        return self.partitions[int.from_bytes(digest[:4], "big") % len(self.partitions)]

    def produce(self, record: Record) -> int:
        """Route by key hash; returns the offset within the partition."""
        return self.partition_for(record.key).append(record)

    def total_records(self) -> int:
        return sum(len(p) for p in self.partitions)


class KafkaBroker:
    """A broker holding topics and consumer-group offsets."""

    def __init__(self) -> None:
        self._topics: Dict[str, Topic] = {}
        #: (group, topic, partition) -> committed offset
        self._offsets: Dict[tuple, int] = {}

    def create_topic(self, name: str, partitions: int) -> Topic:
        if name in self._topics:
            raise ConfigurationError(f"topic {name!r} already exists")
        topic = Topic(name, partitions)
        self._topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise ConfigurationError(f"unknown topic {name!r}") from None

    def poll(
        self, group: str, topic_name: str, partition: int, max_records: int = 100
    ) -> List[Record]:
        """Read records for *group* starting at its committed offset."""
        topic = self.topic(topic_name)
        key = (group, topic_name, partition)
        offset = self._offsets.get(key, 0)
        return topic.partitions[partition].read(offset, max_records)

    def commit(self, group: str, topic_name: str, partition: int, offset: int) -> None:
        self.topic(topic_name)  # validates the topic exists
        self._offsets[(group, topic_name, partition)] = offset

    def committed(self, group: str, topic_name: str, partition: int) -> int:
        return self._offsets.get((group, topic_name, partition), 0)

    def snapshot_offsets(self, group: str) -> Dict[tuple, int]:
        """Copy of *group*'s committed offsets across all topics —
        captured alongside state snapshots so a recovery can rewind the
        source to exactly the last checkpoint's read position."""
        return {key: offset for key, offset in self._offsets.items()
                if key[0] == group}

    def restore_offsets(self, group: str, snapshot: Dict[tuple, int]) -> None:
        """Rewind *group* to *snapshot*; offsets committed since the
        snapshot are discarded (their records will be re-read)."""
        for key in [key for key in self._offsets if key[0] == group]:
            del self._offsets[key]
        for key, offset in snapshot.items():
            if key[0] != group:
                raise ConfigurationError(
                    f"offset key {key} does not belong to group {group!r}"
                )
            self._offsets[key] = offset

    def lag(self, group: str, topic_name: str) -> int:
        """Total records not yet committed by *group* across partitions."""
        topic = self.topic(topic_name)
        return sum(
            p.end_offset - self.committed(group, topic_name, p.index)
            for p in topic.partitions
        )
