"""The LSM state backend: RocksDB embedded in the stream engine.

This module is the control plane that turns checkpoint triggers into
flush jobs, flush completions into L0-counter bumps, and counter trips
into compaction jobs — i.e. the exact machinery that produces (and,
with a :class:`~repro.core.mitigation.MitigationPlan`, mitigates)
ShadowSync:

* a **flush** freezes the instance's memtable, *blocks the instance*
  (stop-the-world), runs on the node's flush pool (CPU + device
  phases), and unblocks on completion;
* when a flush completes and the store's L0 count reaches its effective
  trigger, **compaction** jobs are scheduled — immediately in the
  baseline, after the mitigation delay otherwise — onto the node's
  compaction pool, where they contend with message processing for CPU.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..config import CostModel
from ..core.mitigation import MitigationPlan
from ..errors import SimulationError
from ..lsm.compaction import CompactionJob
from ..lsm.flush import FlushJob
from ..sim.kernel import Simulator
from ..sim.threadpool import JobPhase, SimJob
from .stage import Stage, StageInstance

__all__ = ["LSMStateBackend"]


class LSMStateBackend:
    """Orchestrates flush/compaction for every store in a job."""

    def __init__(
        self,
        sim: Simulator,
        cost: CostModel,
        mitigation: MitigationPlan,
        incremental_checkpoints: bool = True,
    ) -> None:
        self.sim = sim
        self.cost = cost
        self.mitigation = mitigation
        self.incremental_checkpoints = incremental_checkpoints
        self._stage_of: Dict[str, Stage] = {}
        self._delay_policy = mitigation.delay_policy()
        #: Lifetime counters for experiment reporting.
        self.flush_jobs_started = 0
        self.compaction_jobs_started = 0
        self.write_stall_events = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register_stage(self, stage: Stage) -> None:
        self._stage_of[stage.name] = stage
        for instance in stage.instances:
            self._install_trigger_policy(instance)

    def _install_trigger_policy(self, instance: StageInstance) -> None:
        store = instance.store
        if store is None:
            return
        rng = self.sim.rng.stream(f"l0-trigger/{instance.name}")
        policy = self.mitigation.l0_trigger_policy(
            store.options.l0_compaction_trigger, rng
        )
        store.options.l0_trigger_policy = policy
        # A non-default plan policy overrides the store's own; the
        # default leaves per-store configuration (lsm options) in force.
        plan_policy = getattr(self.mitigation, "compaction_policy", "reference")
        if plan_policy != "reference" and store.policy.name != plan_policy:
            store.install_compaction_policy(plan_policy)

    @property
    def delay_policy(self):
        return self._delay_policy

    # ------------------------------------------------------------------
    # flush
    # ------------------------------------------------------------------

    def flush_instance(
        self,
        instance: StageInstance,
        reason: str = "checkpoint",
        on_done: Optional[Callable[[int], None]] = None,
    ) -> bool:
        """Freeze and flush *instance*'s memtable.

        Returns ``True`` when a flush was started, ``False`` when the
        memtable was empty (the completion callback still fires with 0
        bytes so checkpoint accounting stays simple).
        """
        store = instance.store
        if store is None:
            raise SimulationError(f"{instance.name} is stateless")
        flush = store.begin_flush(reason=reason, now=self.sim.now)
        if flush is None:
            if on_done is not None:
                self.sim.call_soon(on_done, 0)
            return False

        node = instance.node
        stage = self._stage_of[instance.spec.name]
        instance.blocked = True
        instance.flush_in_flight += 1
        stage.update_blocked(node.name)
        self.flush_jobs_started += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "flush-trigger",
                "flush",
                self.sim.now,
                tid=instance.name,
                l0_files=store.l0_file_count,
                **flush.trace_args(),
            )

        nbytes = flush.input_bytes
        if not self.incremental_checkpoints and reason == "checkpoint":
            # full-snapshot backend: the whole keyed state is serialized
            # and shipped, not just the memtable delta
            nbytes = max(nbytes, store.total_bytes())
        cpu_work = self.cost.flush_cpu_work(
            nbytes, node.flush_threads, node.cores
        )
        cpu_work += (nbytes / 1e6) * node.storage.io_cpu_seconds_per_mb
        phases = [JobPhase(node.cpu, cpu_work, demand=1.0)]
        io_work = node.storage.write_work_mb(nbytes) + (
            node.storage.per_op_latency_s * node.device.capacity
        )
        if io_work > 0:
            # One sequential writer can saturate the device; concurrent
            # jobs share bandwidth through the device resource.
            phases.append(JobPhase(node.device, io_work, demand=node.device.capacity))

        epoch = instance.restart_epoch

        def complete(_job: SimJob, flush: FlushJob = flush) -> None:
            store.finish_flush(flush, now=self.sim.now)
            if instance.restart_epoch != epoch:
                # the watchdog force-restarted this instance while the
                # flush was in flight: its bookkeeping was already
                # reset, and the flush's output was orphaned by the
                # store restore — drop the completion
                return
            instance.flush_in_flight -= 1
            if instance.flush_in_flight == 0:
                instance.blocked = False
            self._update_stall(instance)
            stage.update_blocked(node.name)
            self._after_flush(instance)
            if on_done is not None:
                on_done(nbytes)

        job = SimJob(
            name=f"flush-{instance.name}@{self.sim.now:.1f}",
            kind="flush",
            phases=phases,
            on_complete=complete,
            metadata={
                "stage": instance.spec.name,
                "instance": instance.index,
                "input_bytes": nbytes,
                "reason": reason,
            },
        )
        node.flush_pool.submit(job)
        return True

    # ------------------------------------------------------------------
    # write stalls
    # ------------------------------------------------------------------

    def _update_stall(self, instance: StageInstance) -> None:
        """Re-evaluate the instance's L0-driven write-stall level.

        Mirrors RocksDB's write controller: too many L0 files first
        throttle (slowdown trigger), then stop (stop trigger), writes —
        and with them the instance's message processing.
        """
        store = instance.store
        options = store.options
        l0 = store.l0_file_count
        if l0 >= options.l0_stop_trigger:
            level = 1.0
        elif l0 >= options.l0_slowdown_trigger:
            level = 0.5
        else:
            level = 0.0
        if level != instance.stall_level:
            if level > instance.stall_level:
                self.write_stall_events += 1
            instance.stall_level = level

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def _after_flush(self, instance: StageInstance) -> None:
        delay = self._delay_policy.current_delay()
        tracer = self.sim.tracer
        if tracer.enabled and instance.store is not None:
            tracer.instant(
                "compaction-check",
                "compaction",
                self.sim.now,
                tid=instance.name,
                l0_files=instance.store.l0_file_count,
                trigger=instance.store.options.effective_l0_trigger(),
                delay_s=delay,
            )
        if delay > 0:
            self.sim.schedule_after(delay, self.schedule_due_compactions, instance)
        else:
            self.schedule_due_compactions(instance)

    def schedule_due_compactions(self, instance: StageInstance) -> int:
        """Submit every compaction the store currently owes; returns how
        many were scheduled."""
        store = instance.store
        if store is None or store.closed:
            return 0
        hold = store.policy.submission_hold(
            self.sim.now, node=instance.node, store=store
        )
        if hold > 0:
            # scheduling policy (flush-first, token bucket) defers the
            # whole drain; re-check once the hold elapses
            self.sim.schedule_after(hold, self.schedule_due_compactions, instance)
            return 0
        scheduled = 0
        while True:
            compaction = store.pick_compaction(now=self.sim.now)
            if compaction is None:
                break
            self._submit_compaction(instance, compaction)
            store.policy.on_submitted(compaction, now=self.sim.now)
            scheduled += 1
            policy = store.options.l0_trigger_policy
            if policy is not None and hasattr(policy, "advance"):
                policy.advance()
        return scheduled

    def _submit_compaction(
        self, instance: StageInstance, compaction: CompactionJob
    ) -> None:
        node = instance.node
        store = instance.store
        self.compaction_jobs_started += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "compaction-trigger",
                "compaction",
                self.sim.now,
                tid=instance.name,
                l0_files=store.l0_file_count,
                **compaction.trace_args(),
            )
        input_bytes = compaction.input_bytes
        cpu_work = self.cost.compaction_cpu_work(input_bytes)
        cpu_work += (
            self.cost.compaction_io_mb(input_bytes)
            * node.storage.io_cpu_seconds_per_mb
        )
        phases = [JobPhase(node.cpu, cpu_work, demand=1.0)]
        # Reads charged at the read/write bandwidth ratio; the device
        # resource's capacity is the write bandwidth.
        read_mb = node.storage.read_work_mb(input_bytes) * (
            node.storage.write_bandwidth_mb_s / node.storage.read_bandwidth_mb_s
        )
        write_mb = self.cost.compaction_io_mb(input_bytes) - input_bytes / 1e6
        io_work = read_mb + max(write_mb, 0.0) + (
            node.storage.per_op_latency_s * node.device.capacity
        )
        if io_work > 0:
            phases.append(
                JobPhase(node.device, io_work, demand=node.device.capacity)
            )

        def complete(_job: SimJob, compaction: CompactionJob = compaction) -> None:
            store.finish_compaction(compaction, now=self.sim.now)
            self._update_stall(instance)
            self._stage_of[instance.spec.name].update_blocked(node.name)

        job = SimJob(
            name=f"compaction-{instance.name}@{self.sim.now:.1f}",
            kind="compaction",
            phases=phases,
            on_complete=complete,
            metadata={
                "stage": instance.spec.name,
                "instance": instance.index,
                "input_bytes": input_bytes,
                "files": compaction.input_files,
                "policy": compaction.policy,
            },
        )
        node.compaction_pool.submit(job)
