"""The Flink-like stream engine: stages, workers, checkpoints, Kafka."""

from .checkpoint import CheckpointCoordinator, CheckpointRecord
from .engine import StreamJob, StreamJobResult
from .kafka import KafkaBroker, Partition, Topic
from .messages import Record, RecordBatch
from .sources import ClosedLoopSource, ConstantSource, DiurnalSource, PiecewiseSource
from .stage import Stage, StageInstance, StageSpec
from .state_backend import LSMStateBackend
from .worker import WorkerNode

__all__ = [
    "CheckpointCoordinator",
    "CheckpointRecord",
    "StreamJob",
    "StreamJobResult",
    "KafkaBroker",
    "Partition",
    "Topic",
    "Record",
    "RecordBatch",
    "ConstantSource",
    "PiecewiseSource",
    "Stage",
    "StageInstance",
    "StageSpec",
    "LSMStateBackend",
    "WorkerNode",
]
