"""Message records for the discrete data plane.

The fluid engine does not materialize individual messages, but the
examples and the Kafka layer do: a :class:`Record` is one keyed event
with an event time, and :class:`RecordBatch` groups them for
per-partition appends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["Record", "RecordBatch"]


@dataclass(frozen=True)
class Record:
    """One keyed event."""

    key: bytes
    value: bytes
    event_time: float = 0.0

    @property
    def size_bytes(self) -> int:
        return len(self.key) + len(self.value)


@dataclass
class RecordBatch:
    """An ordered group of records bound for one partition."""

    records: List[Record] = field(default_factory=list)

    def append(self, record: Record) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def size_bytes(self) -> int:
        return sum(r.size_bytes for r in self.records)
