"""Policy-wrapped I/O paths: checkpoint uploads and Kafka commits.

:class:`ResilientUploader` replaces the coordinator's direct
``hdfs.backup`` call: each upload races a per-attempt
:class:`~repro.resilience.policies.Deadline`; a miss is a failure that
feeds the circuit breaker and is retried with jittered exponential
backoff; an open breaker sheds uploads entirely (the run survives with
a worse recovery point instead of an unbounded upload queue).  This is
what turns an injected ``slow_disk`` on the uplink or a
``checkpoint_timeout`` window into retries and sheds rather than
silent absorption.

:class:`ResilientKafkaCommitter` wraps a synchronous offset-commit
callable in the same retry policy and an optional breaker, raising
:class:`~repro.errors.RetryExhaustedError` when every attempt fails.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import OverloadError, RetryExhaustedError
from .policies import CircuitBreaker, Deadline, RetryPolicy

__all__ = ["ResilientUploader", "ResilientKafkaCommitter"]


class ResilientUploader:
    """Retry/deadline/circuit-breaker wrapper around HDFS backups."""

    def __init__(
        self,
        sim,
        hdfs,
        policy: RetryPolicy,
        breaker: CircuitBreaker,
        deadline_s: float,
        name: str = "hdfs-upload",
    ) -> None:
        self.sim = sim
        self.hdfs = hdfs
        self.policy = policy
        self.breaker = breaker
        self.deadline_s = deadline_s
        self.name = name
        self.attempts = 0
        self.retries = 0
        self.timeouts = 0
        #: Checkpoint ids whose upload exhausted every retry.
        self.exhausted: List[int] = []
        #: Checkpoint ids shed outright by an open breaker.
        self.shed: List[int] = []
        self._rng = sim.rng.stream("resilience/upload-jitter")

    def upload(self, record) -> None:
        """Coordinator ``uploader`` hook: ship one completed checkpoint."""
        self._attempt(record.checkpoint_id, record.bytes, 1)

    def _attempt(self, checkpoint_id: int, nbytes: int, attempt: int) -> None:
        now = self.sim.now
        tracer = self.sim.tracer
        if not self.breaker.allow(now):
            self.shed.append(checkpoint_id)
            if tracer.enabled:
                tracer.instant(
                    "upload-shed", "resilience", now, tid=self.name,
                    checkpoint_id=checkpoint_id, breaker=self.breaker.state,
                )
            return
        self.attempts += 1
        deadline = Deadline.after(now, self.deadline_s)
        settled = [False]

        def on_done(_cp: int) -> None:
            if settled[0]:
                return  # already timed out; a retry owns this upload now
            settled[0] = True
            timer.cancel()
            self.breaker.record_success(self.sim.now)

        def timed_out() -> None:
            if settled[0]:
                return
            settled[0] = True
            self.timeouts += 1
            t = self.sim.now
            self.breaker.record_failure(t)
            was_tripped = self.breaker.state == "open"
            if tracer.enabled:
                tracer.instant(
                    "upload-timeout", "resilience", t, tid=self.name,
                    checkpoint_id=checkpoint_id, attempt=attempt,
                    breaker=self.breaker.state,
                )
                if was_tripped and self.breaker.transitions[-1][0] == t:
                    tracer.instant(
                        "breaker-open", "resilience", t, tid=self.name,
                        trips=self.breaker.trips,
                    )
            if attempt >= self.policy.max_attempts:
                self.exhausted.append(checkpoint_id)
                if tracer.enabled:
                    tracer.instant(
                        "retry-exhausted", "resilience", t, tid=self.name,
                        checkpoint_id=checkpoint_id,
                        attempts=self.policy.max_attempts,
                    )
                return
            self.retries += 1
            delay = self.policy.delay_s(attempt, self._rng)
            if tracer.enabled:
                tracer.instant(
                    "upload-retry", "resilience", t, tid=self.name,
                    checkpoint_id=checkpoint_id, attempt=attempt,
                    delay_s=delay,
                )
            self.sim.schedule_after(delay, self._attempt,
                                    checkpoint_id, nbytes, attempt + 1)

        timer = self.sim.schedule_after(deadline.remaining(now), timed_out)
        self.hdfs.backup(checkpoint_id, nbytes, on_done=on_done)

    def report(self) -> dict:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "exhausted": list(self.exhausted),
            "shed": list(self.shed),
            "breaker_state": self.breaker.state,
            "breaker_trips": self.breaker.trips,
        }


class ResilientKafkaCommitter:
    """Retry + circuit-breaker wrapper for a synchronous commit call."""

    def __init__(
        self,
        commit: Callable[..., object],
        policy: RetryPolicy,
        breaker: Optional[CircuitBreaker] = None,
        rng=None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._commit = commit
        self.policy = policy
        self.breaker = breaker
        self.rng = rng
        self.clock = clock or (lambda: 0.0)
        self.commits = 0
        self.retries = 0
        self.failures = 0

    def commit(self, *args, **kwargs):
        """Commit with retries; raises on an open breaker or exhaustion."""
        now = self.clock()
        if self.breaker is not None and not self.breaker.allow(now):
            raise OverloadError(
                f"commit rejected: circuit breaker {self.breaker.name!r} is open"
            )

        def note_retry(_attempt: int, _delay: float, _exc: Exception) -> None:
            self.retries += 1

        try:
            result = self.policy.call(
                lambda: self._commit(*args, **kwargs),
                rng=self.rng,
                on_retry=note_retry,
            )
        except RetryExhaustedError:
            self.failures += 1
            if self.breaker is not None:
                self.breaker.record_failure(self.clock())
            raise
        self.commits += 1
        if self.breaker is not None:
            self.breaker.record_success(self.clock())
        return result
