"""Source-side admission control: a fluid token-bucket load shedder.

The shedder sits between the source (and any backpressure fault that
manipulates it) and the stage-0 flows: every source-rate change passes
through :meth:`LoadShedder.offer`, which returns the *admitted* rate.
Disengaged it is a pure pass-through — no events, no state drift — so
a healthy guarded run is trajectory-identical to an unguarded one.

Engaged (by the SLO guard tripping into degraded mode) it becomes a
token bucket in fluid form: a burst allowance of
``limit_rate * burst_s`` messages is admitted at the full offered
rate; once the bucket drains, admission clamps to ``limit_rate`` and
the excess ``offered - limit`` is *shed* — counted exactly as the
integral of the excess rate, never enqueued, so queues cannot blow up
while shedding is active.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..sim.kernel import Simulator

__all__ = ["LoadShedder"]


class LoadShedder:
    """Token-bucket admission control over the job's source rate."""

    def __init__(
        self,
        sim: Simulator,
        limit_rate: float,
        burst_s: float = 1.0,
        name: str = "admission",
    ) -> None:
        self.sim = sim
        self.name = name
        #: Sustained admission rate while engaged (msgs/s).
        self.limit_rate = limit_rate
        #: Bucket capacity in messages.
        self.capacity = limit_rate * burst_s
        self.tokens = self.capacity
        self.engaged = False
        self.engagements = 0
        #: Current offered (pre-shedding) and admitted source rates.
        self.offered = 0.0
        self.admitted = 0.0
        #: Exact count of messages shed (integral of offered-admitted).
        self.shed_messages = 0.0
        #: ``(start, end)`` spans during which shedding was engaged.
        self.windows: List[Tuple[float, float]] = []
        #: Applies an admitted-rate change to the job's stage-0 flows;
        #: installed by the engine (``StreamJob._apply_source_rate``).
        self.apply_rate: Optional[Callable[[float], None]] = None
        self._window_start: Optional[float] = None
        self._last_sync = sim.now
        self._exhaust_event = None

    # ------------------------------------------------------------------
    # engine-facing path (every source-rate change goes through here)
    # ------------------------------------------------------------------

    def offer(self, rate: float) -> float:
        """Record the new offered rate; return the admitted rate."""
        now = self.sim.now
        self._sync(now)
        self.offered = rate
        self.admitted = self._target_admitted()
        self._reschedule(now)
        return self.admitted

    # ------------------------------------------------------------------
    # guard-facing controls
    # ------------------------------------------------------------------

    def engage(self) -> None:
        """Start shedding (degraded mode): refill the burst bucket."""
        if self.engaged:
            return
        now = self.sim.now
        self._sync(now)
        self.engaged = True
        self.engagements += 1
        self.tokens = self.capacity
        self._window_start = now
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "shed-engage", "resilience", now, tid=self.name,
                limit_rate=self.limit_rate, offered=self.offered,
                burst_tokens=self.tokens,
            )
        self._recompute(now)

    def disengage(self) -> None:
        """Stop shedding (recovery): admit the full offered rate again."""
        if not self.engaged:
            return
        now = self.sim.now
        self._sync(now)
        self.engaged = False
        if self._window_start is not None:
            self.windows.append((self._window_start, now))
            self._window_start = None
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "shed-disengage", "resilience", now, tid=self.name,
                shed_messages=self.shed_messages,
            )
        self._recompute(now)

    def finalize(self, now: float) -> None:
        """Close the books at end of run (open windows, final integral)."""
        self._sync(now)
        if self.engaged and self._window_start is not None:
            self.windows.append((self._window_start, now))
            self._window_start = None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _sync(self, now: float) -> None:
        dt = now - self._last_sync
        self._last_sync = now
        if dt <= 0 or not self.engaged:
            return
        excess = max(0.0, self.offered - self.limit_rate)
        if self.tokens > 0.0:
            self.tokens = max(0.0, self.tokens - excess * dt)
        else:
            # admitted is clamped at the limit: the excess is shed
            self.shed_messages += excess * dt

    def _target_admitted(self) -> float:
        if not self.engaged or self.tokens > 0.0:
            return self.offered
        return min(self.offered, self.limit_rate)

    def _recompute(self, now: float) -> None:
        admitted = self._target_admitted()
        if admitted != self.admitted:
            self.admitted = admitted
            if self.apply_rate is not None:
                self.apply_rate(admitted)
        self._reschedule(now)

    def _reschedule(self, now: float) -> None:
        if self._exhaust_event is not None:
            self._exhaust_event.cancel()
            self._exhaust_event = None
        if not self.engaged or self.tokens <= 0.0:
            return
        excess = self.offered - self.limit_rate
        if excess <= 0.0:
            return
        self._exhaust_event = self.sim.schedule_after(
            self.tokens / excess, self._exhausted
        )

    def _exhausted(self) -> None:
        now = self.sim.now
        self._exhaust_event = None
        self._sync(now)
        self.tokens = 0.0
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "shed-exhausted", "resilience", now, tid=self.name,
                offered=self.offered, limit_rate=self.limit_rate,
            )
        self._recompute(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LoadShedder {self.name!r} engaged={self.engaged} "
            f"offered={self.offered:.1f} admitted={self.admitted:.1f}>"
        )
