"""Closed-loop overload protection for simulated stream jobs.

The package wires four cooperating pieces onto a built
:class:`~repro.stream.engine.StreamJob`:

* :class:`~repro.resilience.guard.SLOGuard` — samples queues, CPU and
  estimated tail latency; trips into degraded mode with hysteresis;
* :class:`~repro.resilience.shedding.LoadShedder` — token-bucket
  admission control over the source rate while degraded;
* :class:`~repro.resilience.uploads.ResilientUploader` — retry,
  deadline and circuit breaking around checkpoint snapshot uploads
  (and :class:`~repro.resilience.uploads.ResilientKafkaCommitter` for
  offset commits);
* :class:`~repro.resilience.watchdog.Watchdog` — restarts stuck pools
  and hung workers through the checkpoint restore path.

Entry points: pass ``resilience=ResilienceConfig(...)`` to
:class:`~repro.stream.engine.StreamJob` (or a
:class:`~repro.experiments.parallel.RunSpec`), or call
:func:`install_resilience` on a built job.  The chaos-soak harness
lives in :mod:`repro.resilience.soak`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from .config import DEFAULT_RESILIENCE, ResilienceConfig
from .guard import OverloadController, SLOGuard
from .policies import CircuitBreaker, Deadline, RetryPolicy
from .shedding import LoadShedder
from .uploads import ResilientKafkaCommitter, ResilientUploader
from .watchdog import Watchdog

__all__ = [
    "ResilienceConfig",
    "DEFAULT_RESILIENCE",
    "SLOGuard",
    "OverloadController",
    "LoadShedder",
    "RetryPolicy",
    "Deadline",
    "CircuitBreaker",
    "ResilientUploader",
    "ResilientKafkaCommitter",
    "Watchdog",
    "ResilienceController",
    "install_resilience",
    "load_resilience_config",
]


def load_resilience_config(
    value: Union[ResilienceConfig, dict, bool, None],
) -> Optional[ResilienceConfig]:
    """Coerce *value* into a :class:`ResilienceConfig` (or ``None``).

    Accepts an existing config, its ``to_dict`` form, ``True`` (the
    defaults) or ``None``/``False`` (disabled).
    """
    if value is None or value is False:
        return None
    if value is True:
        return DEFAULT_RESILIENCE
    if isinstance(value, ResilienceConfig):
        return value
    if isinstance(value, dict):
        return ResilienceConfig.from_dict(value)
    raise TypeError(f"cannot interpret {value!r} as a resilience config")


class ResilienceController:
    """Owns every resilience component attached to one job."""

    def __init__(self, job, config: ResilienceConfig) -> None:
        self.job = job
        self.config = config
        limit = config.shed_rate_factor * job.source.steady_rate()
        self.shedder = LoadShedder(job.sim, limit, burst_s=config.shed_burst_s)
        self.shedder.apply_rate = job._apply_source_rate
        job.admission = self.shedder
        self.guard = SLOGuard(job, config, self.shedder)
        self.watchdog = Watchdog(job, config)
        self.uploader = ResilientUploader(
            job.sim,
            job.hdfs,
            config.retry_policy(),
            config.circuit_breaker("hdfs-upload"),
            config.upload_deadline_s,
        )
        job.coordinator.uploader = self.uploader.upload

    def install(self) -> ResilienceController:
        self.guard.install()
        self.watchdog.install()
        return self

    def finalize(self, now: float) -> None:
        self.guard.finalize(now)
        self.shedder.finalize(now)

    @property
    def windows(self) -> List[Tuple[str, float, float]]:
        """``(label, start, end)`` resilience-action windows for spike
        attribution (degraded-mode spans and shedding spans)."""
        windows = [
            ("degraded", start, end)
            for _mode, start, end in self.guard.degraded_windows
        ]
        windows.extend(
            ("load-shed", start, end) for start, end in self.shedder.windows
        )
        return sorted(windows, key=lambda w: w[1])

    def report(self) -> dict:
        """The JSON-serializable digest carried on run summaries."""
        return {
            "config": self.config.to_dict(),
            "mode": self.guard.mode,
            "trips": self.guard.trips,
            "mode_windows": [list(w) for w in self.guard.mode_windows],
            "guard_actions": list(self.guard.actions),
            "max_queue_messages": self.guard.max_queue_messages,
            "shed": {
                "messages": self.shedder.shed_messages,
                "engagements": self.shedder.engagements,
                "windows": [list(w) for w in self.shedder.windows],
            },
            "watchdog": {
                "pool_restarts": list(self.watchdog.pool_restarts),
                "worker_restarts": list(self.watchdog.worker_restarts),
            },
            "uploads": self.uploader.report(),
        }


def install_resilience(job, config=True) -> Optional[ResilienceController]:
    """Attach the resilience layer to a built (un-run) job.

    Returns the controller, or ``None`` when *config* disables the
    layer.  Sets ``job.resilience`` (the controller) and
    ``job.resilience_config``.
    """
    resolved = load_resilience_config(config)
    if resolved is None or not resolved.enabled:
        return None
    controller = ResilienceController(job, resolved).install()
    job.resilience = controller
    job.resilience_config = resolved
    return controller
