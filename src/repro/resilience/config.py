"""Configuration of the closed-loop overload-protection layer.

One frozen :class:`ResilienceConfig` describes everything the layer
does to a run: how the SLO guard samples and trips, what the degraded
mode actuates (admission shedding, compaction throttling, checkpoint
stretching), the retry/deadline/circuit-breaker policies applied to
checkpoint uploads and Kafka commits, and the watchdog deadlines.  It
is plain data — it pickles through the parallel executor, hashes into
the result-cache key, and round-trips through the serialize registry —
so a guarded run is exactly as reproducible as an unguarded one.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..compat import keyword_only
from ..errors import ConfigurationError
from ..serialize import register

__all__ = ["ResilienceConfig", "DEFAULT_RESILIENCE"]


@register
@keyword_only
@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the SLO guard, degradation actuators, policies, watchdog."""

    enabled: bool = True

    # --- SLO guard sampling & hysteresis ------------------------------
    #: Seconds between guard samples (queue depths, CPU, est. latency).
    sample_interval_s: float = 0.25
    #: Width of the sliding window the p99 latency estimate is taken
    #: over.
    latency_window_s: float = 5.0
    #: The latency SLO: windowed-p99 estimated end-to-end latency above
    #: this marks a sample as overloaded.
    latency_slo_s: float = 1.5
    #: Optional hard queue bound (total backlogged messages across all
    #: stages); 0 disables the check.
    queue_slo_messages: float = 0.0
    #: CPU-saturation fraction recorded with every sample (diagnostic;
    #: reported in trip actions).
    cpu_saturation: float = 0.97
    #: Consecutive overloaded samples before tripping into degraded mode.
    trip_samples: int = 3
    #: Consecutive healthy samples (below ``recovery_factor`` × SLO)
    #: before recovering to normal mode.
    recovery_samples: int = 8
    #: Hysteresis: recovery requires the windowed p99 to fall below
    #: ``recovery_factor * latency_slo_s``, not merely below the SLO.
    recovery_factor: float = 0.5

    # --- degraded-mode actuators --------------------------------------
    #: Token-bucket fill rate as a fraction of the source's steady rate.
    shed_rate_factor: float = 0.6
    #: Bucket capacity in seconds of steady rate (burst admitted before
    #: shedding starts).
    shed_burst_s: float = 1.0
    #: Compaction pool size while degraded (LSM maintenance throttling).
    #: A 4x throttle of the default 16-thread pool: enough to free CPU
    #: for draining backlog, but not so starved that L0 crosses the
    #: slowdown trigger and write stalls replace the latency we saved.
    compaction_threads_degraded: int = 4
    #: Checkpoint-interval multiplier while degraded (> 1 stretches).
    checkpoint_stretch: float = 2.0

    # --- retry / deadline / circuit breaker ---------------------------
    retry_attempts: int = 4
    retry_base_delay_s: float = 0.25
    retry_multiplier: float = 2.0
    retry_max_delay_s: float = 4.0
    #: Relative jitter on each backoff delay, in [0, 1).
    retry_jitter: float = 0.2
    #: Per-attempt deadline for a checkpoint snapshot upload.
    upload_deadline_s: float = 12.0
    #: Consecutive failures that trip the upload circuit breaker.
    breaker_failures: int = 3
    #: Seconds an open breaker waits before admitting a half-open probe.
    breaker_reset_s: float = 30.0

    # --- watchdog ------------------------------------------------------
    watchdog_poll_s: float = 1.0
    #: A paused background pool with queued work older than this is
    #: force-restarted.
    watchdog_stuck_s: float = 5.0
    #: An instance blocked in flush longer than this is restarted
    #: through the checkpoint restore path.
    watchdog_worker_stuck_s: float = 15.0
    #: Minimum spacing between restarts of the same target.
    watchdog_cooldown_s: float = 5.0

    def __post_init__(self) -> None:
        positive = (
            ("sample_interval_s", self.sample_interval_s),
            ("latency_window_s", self.latency_window_s),
            ("latency_slo_s", self.latency_slo_s),
            ("checkpoint_stretch", self.checkpoint_stretch),
            ("watchdog_poll_s", self.watchdog_poll_s),
            ("watchdog_stuck_s", self.watchdog_stuck_s),
            ("watchdog_worker_stuck_s", self.watchdog_worker_stuck_s),
        )
        for name, value in positive:
            if value <= 0:
                raise ConfigurationError(f"resilience: {name} must be > 0")
        if not 0.0 < self.shed_rate_factor <= 1.0:
            raise ConfigurationError(
                "resilience: shed_rate_factor must be in (0, 1]"
            )
        if self.shed_burst_s < 0:
            raise ConfigurationError("resilience: shed_burst_s must be >= 0")
        if not 0.0 < self.recovery_factor <= 1.0:
            raise ConfigurationError(
                "resilience: recovery_factor must be in (0, 1]"
            )
        if self.trip_samples < 1 or self.recovery_samples < 1:
            raise ConfigurationError(
                "resilience: trip_samples/recovery_samples must be >= 1"
            )
        if self.compaction_threads_degraded < 1:
            raise ConfigurationError(
                "resilience: compaction_threads_degraded must be >= 1"
            )
        if self.retry_attempts < 1:
            raise ConfigurationError("resilience: retry_attempts must be >= 1")
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ConfigurationError(
                "resilience: retry_jitter must be in [0, 1)"
            )
        if self.breaker_failures < 1:
            raise ConfigurationError(
                "resilience: breaker_failures must be >= 1"
            )

    def to_dict(self) -> dict:
        """Plain-data form (cache keys, logs)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> ResilienceConfig:
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})

    def retry_policy(self):
        """The :class:`~repro.resilience.policies.RetryPolicy` these
        settings describe."""
        from .policies import RetryPolicy

        return RetryPolicy(
            max_attempts=self.retry_attempts,
            base_delay_s=self.retry_base_delay_s,
            multiplier=self.retry_multiplier,
            max_delay_s=self.retry_max_delay_s,
            jitter=self.retry_jitter,
        )

    def circuit_breaker(self, name: str = "breaker"):
        """A fresh :class:`~repro.resilience.policies.CircuitBreaker`."""
        from .policies import CircuitBreaker

        return CircuitBreaker(
            failure_threshold=self.breaker_failures,
            reset_timeout_s=self.breaker_reset_s,
            name=name,
        )


DEFAULT_RESILIENCE = ResilienceConfig()
