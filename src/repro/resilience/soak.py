"""The chaos-soak harness: long faulted runs against the guarded pipeline.

:func:`run_soak` executes one seeded fault schedule per seed — the
``combined`` preset by default, or ``FaultPlan.random`` schedules —
with the resilience layer enabled, through the ordinary
:func:`~repro.experiments.parallel.run_grid` executor (so soak results
cache and parallelize like any sweep).  The pipeline under test comes
from the scenario library: ``kind="library"`` (the default campaign in
CI) draws a scenario per seed with the seeded sampler from
:data:`repro.scenarios.SOAK_POOL`, any library scenario name pins that
scenario for every seed, and the legacy ``"traffic"``/``"wordcount"``
kinds keep their original ad-hoc pipelines.  Each run's summary is then
audited:

* **SLO recovery** — after every fault window the windowed p99.9 must
  return to ``recovery_ratio`` × the pre-fault baseline (the p90 of the
  pre-fault coarse samples) within ``recovery_budget_s`` (measured to
  the next window at most);
* **exactly-once** — zero invariant violations, re-checked *per fault
  window*: any accounting / ownership / migration-state violation after
  a window opens fails that window specifically, so a rebalance that
  loses records is attributed to its fault;
* **no unshed blow-up** — the guard's sampled peak backlog stays under
  ``queue_limit_messages``;
* **clean cluster state** (cluster soaks) — every migration resolved
  (nothing stuck ``transferring``) and every partition owned at end of
  run.

``cluster=True`` runs each sampled scenario under a default
:class:`~repro.cluster.ClusterSpec` (failure detector + failover, no
membership schedule) and lets ``random_faults`` draw from
:data:`~repro.faults.ALL_FAULT_KINDS`, so node-crash, node-flap and
network-partition windows enter the soak mix.

The verdicts come back as a :class:`SoakReport`;
:meth:`SoakReport.require_pass` raises
:class:`~repro.errors.OverloadError` on any failure, which is what the
``repro soak`` CLI exit code and the CI smoke job key off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..errors import OverloadError
from ..faults.plan import FaultPlan, load_fault_plan
from .config import ResilienceConfig

__all__ = ["SoakReport", "run_soak"]

#: Invariants whose violation means records were lost or duplicated —
#: the per-fault-window exactly-once audit checks exactly these.
EXACTLY_ONCE_INVARIANTS = (
    "record-accounting",
    "single-owner-per-partition",
    "migration-no-lost-state",
)


@dataclass
class SoakReport:
    """Audited outcome of one soak campaign (one entry per seed)."""

    kind: str = "traffic"
    plan: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    recovery_budget_s: float = 25.0
    recovery_ratio: float = 1.5
    queue_limit_messages: float = 300_000.0
    #: Scenario names actually exercised, one per seed in ``runs`` order
    #: (empty strings for the legacy ad-hoc kinds).
    scenarios: List[str] = field(default_factory=list)
    #: Per-seed verdict dicts (seed, ok, failures, windows, tails, ...).
    runs: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run["ok"] for run in self.runs)

    @property
    def failures(self) -> List[str]:
        return [
            f"seed {run['seed']}: {failure}"
            for run in self.runs
            for failure in run["failures"]
        ]

    def require_pass(self) -> SoakReport:
        """Raise :class:`OverloadError` unless every run passed."""
        if not self.ok:
            raise OverloadError(
                "soak failed: " + "; ".join(self.failures)
            )
        return self

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


def _merge_windows(events) -> List[dict]:
    """Collapse per-node events of one fault into single windows.

    An ``ALL_NODES`` fault is recorded once per node with the same
    ``(kind, start, end)``; recovery is judged per distinct window, and
    overlapping windows of different kinds are merged too (recovery
    can only be observed once the *last* overlapping fault lifts).
    """
    spans = sorted(
        {
            (e["start"], e["end"], e["kind"])
            for e in events
            if e.get("end") is not None
        }
    )
    merged: List[dict] = []
    for start, end, kind in spans:
        if merged and start < merged[-1]["end"]:
            merged[-1]["end"] = max(merged[-1]["end"], end)
            if kind not in merged[-1]["kinds"]:
                merged[-1]["kinds"].append(kind)
        else:
            merged.append({"start": start, "end": end, "kinds": [kind]})
    return merged


def _audit_summary(
    summary,
    budget_s: float,
    ratio: float,
    queue_limit: float,
) -> dict:
    """One run's verdict: recovery per fault window + invariants + queues."""
    failures: List[str] = []
    times = summary.coarse_times
    values = summary.coarse_p999
    events = _merge_windows(summary.fault_events)
    first_fault = events[0]["start"] if events else None

    # Pre-fault baseline: p90 of the coarse p99.9 samples before the
    # first window.  The healthy timeline oscillates with checkpoint
    # phase (trough ~0.22 s, routine peaks ~0.43 s on the default
    # pipeline); the median would pick the trough and declare routine
    # checkpoint spikes "unrecovered", while the max is one outlier.
    baseline_values = sorted(
        v
        for t, v in zip(times, values)
        if first_fault is None or t < first_fault
    )
    baseline = (
        baseline_values[min(len(baseline_values) - 1,
                            int(0.9 * len(baseline_values)))]
        if baseline_values
        else 0.0
    )

    windows = []
    for position, event in enumerate(events):
        end = event["end"]
        horizon = end + budget_s
        if position + 1 < len(events):
            horizon = min(horizon, events[position + 1]["start"])
        horizon = min(horizon, summary.duration_s)
        recovered_at: Optional[float] = None
        for t, v in zip(times, values):
            if t <= end or t > horizon:
                continue
            if baseline <= 0.0 or v <= ratio * baseline:
                recovered_at = t
                break
        # Post-rebalance exactly-once: any accounting/ownership/migration
        # violation from this window's start until the recovery horizon
        # means the fault (and whatever failover it triggered) lost or
        # duplicated records.
        leaks = [
            v
            for v in summary.invariant_violations
            if v["invariant"] in EXACTLY_ONCE_INVARIANTS
            and event["start"] <= v["time"] <= horizon
        ]
        window = {
            "label": "+".join(event["kinds"]),
            "start": event["start"],
            "end": end,
            "recovered_at": recovered_at,
            "budget_until": horizon,
            "exactly_once": not leaks,
        }
        windows.append(window)
        if recovered_at is None:
            failures.append(
                f"p99.9 did not return to {ratio:.2f}x baseline "
                f"({baseline:.4f}s) within {budget_s:.1f}s after "
                f"{window['label']} ended at {end:.1f}s"
            )
        if leaks:
            failures.append(
                f"exactly-once broken in/after {window['label']} window "
                f"at {event['start']:.1f}s: "
                + "; ".join(sorted({v["invariant"] for v in leaks}))
            )

    if summary.invariant_violations:
        failures.append(
            f"{len(summary.invariant_violations)} invariant violation(s)"
        )

    resilience = summary.resilience or {}
    max_queue = resilience.get("max_queue_messages")
    if max_queue is not None and max_queue > queue_limit:
        failures.append(
            f"queue blow-up: peak backlog {max_queue:.0f} messages "
            f"exceeds limit {queue_limit:.0f}"
        )

    cluster = getattr(summary, "cluster", None) or {}
    if cluster:
        stuck = [
            m["id"]
            for m in cluster.get("migrations", [])
            if m.get("status") == "transferring"
        ]
        if stuck:
            failures.append(
                f"{len(stuck)} migration(s) never resolved "
                f"(still transferring at end of run): {stuck}"
            )
        unowned = cluster.get("unowned_partitions") or []
        if unowned:
            failures.append(
                f"unowned partitions at end of run: {unowned}"
            )

    return {
        "seed": summary.seed,
        "label": summary.label,
        "scenario": summary.scenario,
        "ok": not failures,
        "failures": failures,
        "baseline_p999_s": baseline,
        "windows": windows,
        "tails": dict(summary.tails),
        "trips": resilience.get("trips", 0),
        "shed_messages": (resilience.get("shed") or {}).get("messages", 0.0),
        "watchdog_restarts": sum(
            len(v) for v in (resilience.get("watchdog") or {}).values()
        ),
        "invariant_violations": len(summary.invariant_violations),
        "migrations": len(cluster.get("migrations", [])),
        "ownership_flips": cluster.get("ownership_flips", 0),
    }


def run_soak(
    kind: str = "traffic",
    seeds: Sequence[int] = (1, 2),
    duration_s: float = 130.0,
    warmup_s: float = 20.0,
    faults: Union[str, dict, FaultPlan] = "combined",
    random_faults: bool = False,
    max_faults: int = 6,
    cluster: bool = False,
    resilience: Union[ResilienceConfig, dict, bool, None] = True,
    recovery_budget_s: float = 25.0,
    recovery_ratio: float = 1.5,
    queue_limit_messages: float = 300_000.0,
    interval_s: float = 8.0,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
) -> SoakReport:
    """Run the chaos-soak campaign and audit every run.

    *kind* selects the pipeline under chaos: ``"library"`` draws one
    scenario per seed from :data:`repro.scenarios.SOAK_POOL` with the
    seeded sampler (deterministic per seed, diverse across seeds), a
    library scenario name (``"windowed_join"``, ``"multi_tenant"``, ...)
    soaks that scenario for every seed, and the legacy ``"traffic"`` /
    ``"wordcount"`` kinds keep the original ad-hoc pipelines.  The
    scenario exercised by each run is recorded in the report.

    With ``random_faults=True`` each seed gets its own
    :meth:`FaultPlan.random` schedule (seeded by that seed), otherwise
    every seed runs the same *faults* plan (the ``combined`` preset by
    default).  Runs execute through the parallel executor and result
    cache, so a repeated soak is a cache read.

    ``cluster=True`` installs a default elastic cluster layer
    (:class:`~repro.cluster.ClusterSpec`, no membership schedule) on
    every scenario run and widens the random-fault kind pool to
    :data:`~repro.faults.ALL_FAULT_KINDS`, so node crashes, flaps and
    network partitions exercise detector-driven failover; the audit then
    also requires every migration resolved and every partition owned.

    ``recovery_budget_s`` must cover the worst replay a fault can cause:
    a worker crash rewinds to the last completed checkpoint and replays
    up to one (degraded-stretched) checkpoint interval of input, which
    drains at the *spare* capacity left while shedding — for the default
    pipeline that is roughly 20 s, hence the 25 s default.
    """
    from ..experiments.parallel import RunSpec, run_grid
    from ..experiments.runner import ExperimentSettings
    from ..resilience import load_resilience_config
    from ..scenarios import SCENARIOS, sample_scenario, scenario

    config = load_resilience_config(resilience)
    specs = []
    plans = {}
    names: List[str] = []
    for seed in seeds:
        if random_faults:
            kinds = {}
            if cluster:
                from ..faults.plan import ALL_FAULT_KINDS

                kinds = {"kinds": ALL_FAULT_KINDS}
            plan = FaultPlan.random(
                seed=seed, duration_s=duration_s, max_faults=max_faults,
                **kinds,
            )
        else:
            plan = load_fault_plan(faults)
        plans[seed] = plan
        if kind == "library":
            spec = sample_scenario(seed)
        elif kind in SCENARIOS:
            spec = scenario(kind)
        else:
            spec = None
        if spec is not None and cluster and spec.cluster is None:
            from dataclasses import replace

            from ..cluster.spec import ClusterSpec

            spec = replace(spec, cluster=ClusterSpec())
        if spec is not None:
            names.append(spec.name)
            specs.append(
                RunSpec(
                    kind="scenario",
                    scenario=spec,
                    settings=ExperimentSettings(
                        duration_s=duration_s, warmup_s=warmup_s, seed=seed
                    ),
                    interval_s=spec.interval_s,
                    faults=plan,
                    resilience=config,
                    label=f"soak-{spec.name}-seed{seed}",
                )
            )
        else:
            names.append("")
            specs.append(
                RunSpec(
                    kind=kind,
                    settings=ExperimentSettings(
                        duration_s=duration_s, warmup_s=warmup_s, seed=seed
                    ),
                    interval_s=interval_s,
                    faults=plan,
                    resilience=config,
                    label=f"soak-{kind}-seed{seed}",
                )
            )
    summaries = run_grid(specs, jobs=jobs, cache=cache)
    report = SoakReport(
        kind=kind,
        plan=plans[seeds[0]].to_dict() if seeds else {},
        config={} if config is None else config.to_dict(),
        recovery_budget_s=recovery_budget_s,
        recovery_ratio=recovery_ratio,
        queue_limit_messages=queue_limit_messages,
        scenarios=names,
        runs=[
            _audit_summary(
                summary, recovery_budget_s, recovery_ratio, queue_limit_messages
            )
            for summary in summaries
        ],
    )
    return report
