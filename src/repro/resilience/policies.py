"""Reusable resilience policies: retry with backoff, deadlines,
circuit breaking.

These are deliberately mechanism-only primitives — they know nothing
about flushes or checkpoints.  The wiring (which operations retry,
what trips the breaker) lives in :mod:`repro.resilience.uploads` and
the guard.  All randomness (backoff jitter) comes from a caller-owned
``random.Random`` so retries are exactly reproducible under the
simulator's named RNG streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..compat import keyword_only
from ..errors import ConfigurationError, RetryExhaustedError
from ..serialize import register

__all__ = ["RetryPolicy", "Deadline", "CircuitBreaker"]


@register
@keyword_only
@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded, jittered delays.

    Attempt *n* (1-based) that fails is retried after
    ``min(base_delay_s * multiplier**(n-1), max_delay_s)`` seconds,
    scaled by a uniform jitter in ``[1-jitter, 1+jitter]``.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.25
    multiplier: float = 2.0
    max_delay_s: float = 4.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("retry: max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("retry: delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("retry: multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("retry: jitter must be in [0, 1)")

    def delay_s(self, attempt: int, rng=None) -> float:
        """Backoff before retrying after failed attempt *attempt*."""
        if attempt < 1:
            raise ConfigurationError(f"retry: attempt must be >= 1, got {attempt}")
        delay = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter > 0.0 and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def call(
        self,
        fn: Callable[[], object],
        rng=None,
        sleep: Optional[Callable[[float], None]] = None,
        on_retry: Optional[Callable[[int, float, Exception], None]] = None,
    ):
        """Call *fn* until it returns, retrying on any exception.

        *sleep*, when given, receives each backoff delay (tests pass a
        recorder; synchronous sim callers usually cannot block and use
        the event-driven wiring in :mod:`repro.resilience.uploads`
        instead).  Raises :class:`RetryExhaustedError` from the last
        failure once every attempt is spent.
        """
        last: Optional[Exception] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except Exception as exc:  # noqa: BLE001 - policy boundary
                last = exc
                if attempt == self.max_attempts:
                    break
                delay = self.delay_s(attempt, rng)
                if on_retry is not None:
                    on_retry(attempt, delay, exc)
                if sleep is not None:
                    sleep(delay)
        raise RetryExhaustedError(
            f"operation failed after {self.max_attempts} attempts: {last}"
        ) from last

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> RetryPolicy:
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})


class Deadline:
    """An absolute point in (simulated) time an operation must beat."""

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = at

    @classmethod
    def after(cls, now: float, delay_s: float) -> Deadline:
        return cls(now + delay_s)

    def remaining(self, now: float) -> float:
        return self.at - now

    def expired(self, now: float) -> bool:
        return now >= self.at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Deadline at={self.at:.3f}>"


class CircuitBreaker:
    """Closed → open → half-open failure isolation.

    ``failure_threshold`` consecutive failures trip the breaker open;
    after ``reset_timeout_s`` it admits ``half_open_probes`` probe
    calls — one success closes it, one failure re-opens it.  The clock
    is passed in by the caller (simulated time), so the breaker itself
    is pure state.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        half_open_probes: int = 1,
        name: str = "breaker",
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("breaker: failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ConfigurationError("breaker: reset_timeout_s must be >= 0")
        if half_open_probes < 1:
            raise ConfigurationError("breaker: half_open_probes must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self.state = "closed"
        self.trips = 0
        self.rejected = 0
        #: ``(time, new_state)`` transition log for tests and summaries.
        self.transitions: List[Tuple[float, str]] = []
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probes = 0

    def allow(self, now: float) -> bool:
        """Whether a call may proceed at *now* (may move open→half-open)."""
        if self.state == "open":
            if (
                self._opened_at is not None
                and now - self._opened_at >= self.reset_timeout_s
            ):
                self._transition("half-open", now)
                self._probes = 0
            else:
                self.rejected += 1
                return False
        if self.state == "half-open":
            if self._probes >= self.half_open_probes:
                self.rejected += 1
                return False
            self._probes += 1
        return True

    def record_success(self, now: float) -> None:
        if self.state == "half-open":
            self._transition("closed", now)
        self._failures = 0

    def record_failure(self, now: float) -> None:
        if self.state == "half-open":
            self._trip(now)
            return
        self._failures += 1
        if self.state == "closed" and self._failures >= self.failure_threshold:
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.trips += 1
        self._failures = 0
        self._opened_at = now
        self._transition("open", now)

    def _transition(self, state: str, now: float) -> None:
        self.state = state
        self.transitions.append((now, state))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CircuitBreaker {self.name!r} state={self.state} trips={self.trips}>"
