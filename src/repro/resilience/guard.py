"""The SLO guard: closed-loop overload detection and graceful degradation.

:class:`SLOGuard` (alias ``OverloadController``) samples the running
job every ``sample_interval_s``: total queue depth across all stage
flows, per-node CPU saturation, and an *estimated* end-to-end latency
(per-stage backlog over effective drain rate).  The windowed p99 of
that estimate, compared against ``latency_slo_s`` with consecutive-
sample hysteresis, drives a two-mode state machine:

``normal`` → ``degraded`` (trip)
    engage the token-bucket load shedder, shrink every compaction pool
    to ``compaction_threads_degraded`` threads, and stretch the
    checkpoint interval by ``checkpoint_stretch``;
``degraded`` → ``normal`` (recover)
    undo all three, automatically, once the tail has stayed below
    ``recovery_factor × SLO`` for ``recovery_samples`` samples.

Every sample is a pure read (``FluidFlow.queue`` is computed live
without mutation), so a guard that never trips leaves the simulated
trajectory byte-identical to an unguarded run.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from ..sim.process import spawn
from .config import ResilienceConfig
from .shedding import LoadShedder

__all__ = ["SLOGuard", "OverloadController"]


class SLOGuard:
    """Samples the job and drives degraded-mode actuators."""

    def __init__(
        self, job, config: ResilienceConfig, shedder: Optional[LoadShedder] = None
    ) -> None:
        self.job = job
        self.sim = job.sim
        self.config = config
        self.shedder = shedder
        self.mode = "normal"
        self.trips = 0
        #: ``(mode, start, end)`` spans; the open span has ``end=None``
        #: until :meth:`finalize`.
        self.mode_windows: List[list] = []
        #: Every actuation, as plain dicts (summaries, tests).
        self.actions: List[dict] = []
        self.samples_taken = 0
        self.last_sample: Optional[dict] = None
        #: Largest total backlog (messages) ever sampled — the soak
        #: harness's queue-blow-up check.
        self.max_queue_messages = 0.0
        self._window = deque()  # (time, estimated latency)
        self._overloaded_streak = 0
        self._healthy_streak = 0
        self._pool_sizes: dict = {}
        self._mode_started: Optional[float] = None

    def install(self) -> SLOGuard:
        spawn(self.sim, self._loop(), name="slo-guard")
        return self

    def _loop(self):
        while True:
            yield self.config.sample_interval_s
            self._sample()

    # ------------------------------------------------------------------
    # sampling (pure reads)
    # ------------------------------------------------------------------

    def _estimate_latency(self) -> float:
        """Sum over stages of worst-node backlog drain time.

        The backlog is divided by the flow's *best-case* drain rate
        (``max_parallelism / work_per_message``), not the instantaneous
        serve rate: a sub-second flush block drops the serve rate to
        ~zero while accumulating only a tiny queue, and dividing by the
        depressed rate would report routine flushes as overload.  Under
        real overload the backlog grows without bound, so the optimistic
        divisor still crosses any SLO.
        """
        total = 0.0
        for stage in self.job.stages:
            worst = 0.0
            for flow in stage.flows.values():
                q = flow.queue
                if q <= 1e-9:
                    continue
                nominal = flow.max_parallelism / flow.work_per_message
                worst = max(worst, q / max(nominal, 1e-9))
            total += worst
        return total + self.job.cost.base_latency_seconds

    def _queue_total(self) -> float:
        return sum(
            flow.queue for stage in self.job.stages for flow in stage.flows.values()
        )

    def _cpu_fraction(self) -> float:
        """Highest current per-node CPU usage fraction."""
        worst = 0.0
        for node in self.job.nodes:
            cpu = node.cpu
            if cpu.util_segments and cpu.capacity > 0:
                worst = max(worst, cpu.util_segments[-1][1] / cpu.capacity)
        return worst

    def _windowed_p99(self, now: float) -> float:
        horizon = now - self.config.latency_window_s
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()
        if not self._window:
            return 0.0
        values = sorted(v for _t, v in self._window)
        index = min(len(values) - 1, int(0.99 * len(values)))
        return values[index]

    def _sample(self) -> None:
        now = self.sim.now
        est = self._estimate_latency()
        self._window.append((now, est))
        p99 = self._windowed_p99(now)
        queue_total = self._queue_total()
        cpu = self._cpu_fraction()
        self.samples_taken += 1
        self.max_queue_messages = max(self.max_queue_messages, queue_total)
        self.last_sample = {
            "time": now,
            "estimated_latency_s": est,
            "p99_latency_s": p99,
            "queue_messages": queue_total,
            "cpu_fraction": cpu,
        }
        config = self.config
        overloaded = p99 > config.latency_slo_s
        if config.queue_slo_messages > 0:
            overloaded = overloaded or queue_total > config.queue_slo_messages
        if self.mode == "normal":
            self._overloaded_streak = self._overloaded_streak + 1 if overloaded else 0
            if self._overloaded_streak >= config.trip_samples:
                self._trip(now)
        else:
            healthy = p99 < config.recovery_factor * config.latency_slo_s
            self._healthy_streak = self._healthy_streak + 1 if healthy else 0
            if self._healthy_streak >= config.recovery_samples:
                self._recover(now)

    # ------------------------------------------------------------------
    # actuators
    # ------------------------------------------------------------------

    def _trip(self, now: float) -> None:
        self.mode = "degraded"
        self.trips += 1
        self._overloaded_streak = 0
        self._healthy_streak = 0
        self._mode_started = now
        self.mode_windows.append(["degraded", now, None])
        if self.shedder is not None:
            self.shedder.engage()
        for node in self.job.nodes:
            pool = node.compaction_pool
            if pool.size > self.config.compaction_threads_degraded:
                self._pool_sizes[pool.name] = pool.size
                pool.resize(self.config.compaction_threads_degraded)
        self.job.coordinator.interval_scale = self.config.checkpoint_stretch
        action = dict(self.last_sample or {}, time=now, action="slo-trip")
        self.actions.append(action)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "slo-trip", "resilience", now, tid="slo-guard",
                p99_latency_s=action.get("p99_latency_s"),
                queue_messages=action.get("queue_messages"),
                cpu_fraction=action.get("cpu_fraction"),
            )

    def _recover(self, now: float) -> None:
        self.mode = "normal"
        self._overloaded_streak = 0
        self._healthy_streak = 0
        if self.mode_windows and self.mode_windows[-1][2] is None:
            self.mode_windows[-1][2] = now
        self._mode_started = None
        if self.shedder is not None:
            self.shedder.disengage()
        for node in self.job.nodes:
            pool = node.compaction_pool
            original = self._pool_sizes.pop(pool.name, None)
            if original is not None:
                pool.resize(original)
        self.job.coordinator.interval_scale = 1.0
        action = dict(self.last_sample or {}, time=now, action="slo-recover")
        self.actions.append(action)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "slo-recover", "resilience", now, tid="slo-guard",
                p99_latency_s=action.get("p99_latency_s"),
            )

    def finalize(self, now: float) -> None:
        if self.mode_windows and self.mode_windows[-1][2] is None:
            self.mode_windows[-1][2] = now

    @property
    def degraded_windows(self) -> List[tuple]:
        """Closed ``("degraded", start, end)`` spans for attribution."""
        return [
            (mode, start, end)
            for mode, start, end in self.mode_windows
            if end is not None
        ]


#: The ISSUE names this both ways; they are the same object.
OverloadController = SLOGuard
