"""The watchdog supervisor: liveness for pools and workers.

Two hang pathologies exist in the simulated pipeline and the watchdog
covers both:

*stuck pool*
    a background pool left paused (a hung flush/compaction thread,
    e.g. a ``flush_stall`` fault) while work queues behind it.  After
    ``watchdog_stuck_s`` of continuous stall the pool is
    force-restarted (:meth:`~repro.sim.threadpool.SimThreadPool.restart`),
    which clears the pause — forgiving the fault's own later resume —
    and starts the queued jobs.

*hung worker*
    a stage instance blocked in a flush that makes no progress (e.g. a
    near-zero ``slow_disk`` dip) past ``watchdog_worker_stuck_s``.
    The instance is restarted through the existing checkpoint recovery
    path: in-flight checkpoints abort, the store rewinds to its newest
    completed snapshot via ``restore_instance``, and the instance's
    restart epoch is bumped so the zombie flush's eventual completion
    is ignored by the state backend.

Crashed nodes are a *declared* fault with their own recovery; the
watchdog leaves them alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import WatchdogError
from ..sim.process import spawn
from .config import ResilienceConfig

__all__ = ["Watchdog"]


class Watchdog:
    """Polls the job for stuck pools and hung workers; restarts them."""

    def __init__(self, job, config: ResilienceConfig) -> None:
        self.job = job
        self.sim = job.sim
        self.config = config
        #: Action dicts for summaries and tests.
        self.pool_restarts: List[dict] = []
        self.worker_restarts: List[dict] = []
        self._pool_stuck_since: Dict[str, float] = {}
        self._blocked_since: Dict[str, float] = {}
        self._last_restart: Dict[str, float] = {}
        self._installed = False

    def install(self) -> Watchdog:
        if self._installed:
            raise WatchdogError("watchdog already installed")
        self._installed = True
        spawn(self.sim, self._loop(), name="watchdog")
        return self

    def _loop(self):
        while True:
            yield self.config.watchdog_poll_s
            self._poll()

    # ------------------------------------------------------------------

    def _poll(self) -> None:
        now = self.sim.now
        for node in self.job.nodes:
            if node.crashed:
                # a declared crash fault owns this node's recovery
                for pool in (node.flush_pool, node.compaction_pool):
                    self._pool_stuck_since.pop(pool.name, None)
                for instance in node.instances:
                    self._blocked_since.pop(instance.name, None)
                continue
            for pool in (node.flush_pool, node.compaction_pool):
                self._check_pool(pool, now)
            for instance in node.instances:
                self._check_instance(instance, now)

    def _cooldown_ok(self, target: str, now: float) -> bool:
        last = self._last_restart.get(target)
        return last is None or now - last >= self.config.watchdog_cooldown_s

    # ------------------------------------------------------------------
    # stuck pools
    # ------------------------------------------------------------------

    def _check_pool(self, pool, now: float) -> None:
        stuck = pool.paused and pool.backlog > 0
        if not stuck:
            self._pool_stuck_since.pop(pool.name, None)
            return
        since = self._pool_stuck_since.setdefault(pool.name, now)
        if now - since < self.config.watchdog_stuck_s:
            return
        if not self._cooldown_ok(pool.name, now):
            return
        backlog = pool.backlog
        cleared = pool.restart()
        self._last_restart[pool.name] = now
        self._pool_stuck_since.pop(pool.name, None)
        action = {
            "time": now,
            "action": "pool-restart",
            "target": pool.name,
            "stuck_s": now - since,
            "cleared_pauses": cleared,
            "backlog": backlog,
        }
        self.pool_restarts.append(action)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "watchdog-pool-restart", "resilience", now, tid=pool.name,
                stuck_s=now - since, cleared_pauses=cleared, backlog=backlog,
            )

    # ------------------------------------------------------------------
    # hung workers
    # ------------------------------------------------------------------

    def _check_instance(self, instance, now: float) -> None:
        if not instance.blocked:
            self._blocked_since.pop(instance.name, None)
            return
        since = self._blocked_since.setdefault(instance.name, now)
        if now - since < self.config.watchdog_worker_stuck_s:
            return
        if not self._cooldown_ok(instance.name, now):
            return
        self._restart_instance(instance, now, since)

    def _restart_instance(self, instance, now: float, since: float) -> None:
        coordinator = self.job.coordinator
        aborted = coordinator.abort_in_flight(reason=f"watchdog:{instance.name}")
        info = coordinator.restore_instance(instance)
        # the zombie flush still occupies its pool slot; bumping the
        # epoch makes the state backend discard its completion instead
        # of corrupting the freshly-reset bookkeeping below
        instance.restart_epoch += 1
        instance.blocked = False
        instance.flush_in_flight = 0
        store = instance.store
        if store is not None:
            # recompute the L0-driven stall level, as crash recovery does
            options = store.options
            l0 = store.l0_file_count
            if l0 >= options.l0_stop_trigger:
                instance.stall_level = 1.0
            elif l0 >= options.l0_slowdown_trigger:
                instance.stall_level = 0.5
            else:
                instance.stall_level = 0.0
        stage = self.job.stage(instance.spec.name)
        stage.update_blocked(instance.node.name)
        self._last_restart[instance.name] = now
        self._blocked_since.pop(instance.name, None)
        action = {
            "time": now,
            "action": "worker-restart",
            "target": instance.name,
            "stuck_s": now - since,
            "restored_checkpoint": info["checkpoint_id"],
            "aborted_checkpoints": [r.checkpoint_id for r in aborted],
        }
        self.worker_restarts.append(action)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "watchdog-worker-restart", "resilience", now,
                tid=instance.name, stuck_s=now - since,
                restored_checkpoint=info["checkpoint_id"],
            )

    # ------------------------------------------------------------------

    @property
    def restarts(self) -> List[dict]:
        """All restart actions in time order."""
        return sorted(
            self.pool_restarts + self.worker_restarts, key=lambda a: a["time"]
        )

    def report(self) -> Optional[dict]:
        if not self.pool_restarts and not self.worker_restarts:
            return None
        return {
            "pool_restarts": list(self.pool_restarts),
            "worker_restarts": list(self.worker_restarts),
        }
