"""Workload generators: Tokyo traffic and random-sentence WordCount."""

from .traffic import Car, TrafficModel, street_key
from .wordcount import SentenceGenerator, count_words

__all__ = ["Car", "TrafficModel", "street_key", "SentenceGenerator", "count_words"]
