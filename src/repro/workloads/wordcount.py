"""Synthetic sentence workload for the WordCount case study (§5.2).

"Each partition of Kafka producer reads a line from a synthetic
workload generator (generating a set of random words about 25K per
second)".  The generator draws words from a Zipf-distributed vocabulary
(natural text is Zipfian, and the skew determines how quickly the
counters' keyed state saturates).
"""

from __future__ import annotations

import random
from typing import Iterator, List

from ..errors import ConfigurationError
from ..stream.messages import Record

__all__ = ["SentenceGenerator", "count_words"]


class SentenceGenerator:
    """Random sentences over a Zipf vocabulary."""

    def __init__(
        self,
        vocabulary_size: int = 100000,
        words_per_sentence: int = 8,
        zipf_s: float = 1.1,
        seed: int = 0,
    ) -> None:
        if vocabulary_size < 1:
            raise ConfigurationError("vocabulary_size must be >= 1")
        if words_per_sentence < 1:
            raise ConfigurationError("words_per_sentence must be >= 1")
        if zipf_s <= 0:
            raise ConfigurationError("zipf_s must be positive")
        self.vocabulary_size = vocabulary_size
        self.words_per_sentence = words_per_sentence
        self._rng = random.Random(seed)
        # Zipf CDF over ranks 1..V (precomputed for inverse sampling).
        weights = [1.0 / (rank ** zipf_s) for rank in range(1, vocabulary_size + 1)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)

    def word(self) -> str:
        """Draw one word (rank-encoded, e.g. ``w000042``)."""
        u = self._rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return f"w{lo:07d}"

    def sentence(self) -> str:
        return " ".join(self.word() for _ in range(self.words_per_sentence))

    def sentences(self, count: int) -> Iterator[Record]:
        """*count* sentence records with synthetic keys."""
        for i in range(count):
            text = self.sentence()
            yield Record(key=f"line:{i}".encode(), value=text.encode())


def count_words(records) -> dict:
    """Reference word-count reduction used by tests and examples."""
    counts: dict = {}
    for record in records:
        for word in record.value.decode().split():
            counts[word] = counts.get(word, 0) + 1
    return counts
