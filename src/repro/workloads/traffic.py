"""Synthetic Tokyo connected-car traffic (the paper's workload).

The paper's generator replays "synthetic data inspired by real car
sensor data" — one ~6 kB event per car per second with car-ID, speed
and position.  This module provides an equivalent generator: cars move
on a grid of streets at street-dependent speeds, with Zipf-skewed
street popularity (downtown streets carry more cars, producing the
uneven per-street state the benchmark aggregates).

The fluid engine only needs the aggregate rate; this generator exists
for the discrete data plane — examples that push real records through
the Kafka layer and keyed state, and tests of the routing logic.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import ConfigurationError
from ..stream.messages import Record

__all__ = ["Car", "TrafficModel", "street_key"]


@dataclass
class Car:
    """One simulated vehicle."""

    car_id: int
    x: float
    y: float
    speed_kmh: float
    heading: Tuple[float, float]


def street_key(x: float, y: float, grid_size: float) -> bytes:
    """Map a position to its street (grid cell) key."""
    return f"street:{int(x // grid_size)}:{int(y // grid_size)}".encode()


class TrafficModel:
    """Cars moving over a street grid, emitting one event each per tick.

    Parameters
    ----------
    num_cars:
        Fleet size (the paper controls workload intensity with this).
    grid_size:
        Street cell edge length in meters.
    city_extent:
        City edge length in meters (Tokyo metro ≈ 40 000).
    hotspot_skew:
        Zipf-like exponent concentrating cars downtown; 0 = uniform.
    """

    def __init__(
        self,
        num_cars: int = 10000,
        grid_size: float = 250.0,
        city_extent: float = 40000.0,
        hotspot_skew: float = 1.2,
        payload_bytes: int = 6000,
        seed: int = 0,
    ) -> None:
        if num_cars < 1:
            raise ConfigurationError("num_cars must be >= 1")
        if grid_size <= 0 or city_extent <= 0:
            raise ConfigurationError("grid_size and city_extent must be positive")
        self.grid_size = grid_size
        self.city_extent = city_extent
        self.payload_bytes = payload_bytes
        self._rng = random.Random(seed)
        self.cars: List[Car] = [
            self._spawn_car(i, hotspot_skew) for i in range(num_cars)
        ]

    def _spawn_car(self, car_id: int, skew: float) -> Car:
        rng = self._rng
        # Radially skewed placement: u^skew concentrates mass downtown.
        radius = (rng.random() ** (1.0 + skew)) * self.city_extent / 2.0
        angle = rng.random() * 6.283185307
        cx = self.city_extent / 2.0
        import math

        x = min(max(cx + radius * math.cos(angle), 0.0), self.city_extent)
        y = min(max(cx + radius * math.sin(angle), 0.0), self.city_extent)
        heading_angle = rng.random() * 6.283185307
        return Car(
            car_id=car_id,
            x=x,
            y=y,
            speed_kmh=rng.uniform(5.0, 60.0),
            heading=(math.cos(heading_angle), math.sin(heading_angle)),
        )

    @property
    def num_streets(self) -> int:
        cells = int(self.city_extent // self.grid_size)
        return cells * cells

    def tick(self, dt: float = 1.0) -> None:
        """Advance every car by *dt* seconds (bouncing at city edges)."""
        for car in self.cars:
            meters = car.speed_kmh / 3.6 * dt
            car.x += car.heading[0] * meters
            car.y += car.heading[1] * meters
            for axis in ("x", "y"):
                value = getattr(car, axis)
                if value < 0 or value > self.city_extent:
                    setattr(car, axis, min(max(value, 0.0), self.city_extent))
                    hx, hy = car.heading
                    car.heading = (-hx, hy) if axis == "x" else (hx, -hy)

    def events(self, timestamp: float = 0.0) -> Iterator[Record]:
        """One event per car for the current positions (~6 kB each)."""
        for car in self.cars:
            body = {
                "car_id": car.car_id,
                "speed_kmh": round(car.speed_kmh, 2),
                "x": round(car.x, 1),
                "y": round(car.y, 1),
                "street": street_key(car.x, car.y, self.grid_size).decode(),
            }
            encoded = json.dumps(body).encode()
            padding = max(0, self.payload_bytes - len(encoded))
            yield Record(
                key=f"car:{car.car_id}".encode(),
                value=encoded + b" " * padding,
                event_time=timestamp,
            )

    def street_of(self, car: Car) -> bytes:
        return street_key(car.x, car.y, self.grid_size)

    def street_densities(self) -> dict:
        """Cars per street — the quantity stage s1 ranks."""
        densities: dict = {}
        for car in self.cars:
            key = self.street_of(car)
            densities[key] = densities.get(key, 0) + 1
        return densities
