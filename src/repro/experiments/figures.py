"""One function per table/figure of the paper's evaluation.

Each function runs the relevant experiment(s) with the standard
settings and returns a plain dict of the series/rows the paper plots,
plus the derived quantities the reproduction is judged on (spike
period, knee position, reduction ratios).  The benchmark suite under
``benchmarks/`` calls these and asserts the *shape* criteria from
DESIGN.md §4.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..analysis.longtail import find_spikes, reduction_ratio, spike_period
from ..analysis.overlap import burst_alignment
from ..core.allocation import (
    concurrency_latency_curve,
    recommend_compaction_threads,
)
from ..core.mitigation import MitigationPlan
from .parallel import RunSpec, run_grid, sweep
from .runner import DEFAULT_SETTINGS, ExperimentSettings, legacy_scenario

__all__ = [
    "fig1_fig3_baseline_timeline",
    "table1_checkpoint_stats",
    "fig6_point_in_time",
    "fig7_zoom_spans",
    "fig8_statistical",
    "fig12_delay_sweep",
    "fig13_flush_thread_sweep",
    "fig14_compaction_thread_sweep",
    "fig15_kneedle",
    "fig16_traffic_mitigation",
    "fig17_wordcount_tails",
    "fig18_wordcount_timeline",
    "fig19_traffic_nvme",
    "fig20_wordcount_nvme",
    "headline_reduction",
]


def _timeline(result, settings: ExperimentSettings, window: Optional[float] = None):
    start, end = settings.measure_span
    times, p999 = result.latency_timeline(
        0.999, window=window or settings.coarse_window_s, start=start, end=end
    )
    return times, p999


def _run_traffic(
    settings: ExperimentSettings,
    checkpoint_interval_s: float = 8.0,
    initial_l0: str = "aligned",
):
    """One live traffic run through the scenario path (warning-free)."""
    from ..scenarios.run import execute_scenario

    return execute_scenario(
        legacy_scenario(
            "traffic",
            interval_s=checkpoint_interval_s,
            initial_l0=initial_l0,
        ),
        settings=settings,
    )


# ----------------------------------------------------------------------
# §2 + §3.2 — the scheduled ShadowSync exemplar (16 s checkpoints)
# ----------------------------------------------------------------------

def fig1_fig3_baseline_timeline(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> Dict:
    """Figures 1 and 3: periodic latency spikes on the baseline.

    16 s checkpoints with stage counters out of phase (§3.2's observed
    condition): each stage's compaction burst recurs every 64 s, the
    two stages alternate, so spikes arrive every ~32 s — the LCM
    cadence of Figure 1.
    """
    result = _run_traffic(
        settings, checkpoint_interval_s=16.0, initial_l0="staggered"
    )
    times, p999 = _timeline(result, settings)
    floor = float(np.median(p999))
    spikes = find_spikes(times, p999, threshold=max(2.5 * floor, 0.8))
    return {
        "times": times.tolist(),
        "p999": p999.tolist(),
        "floor_s": floor,
        "spikes": [(s.peak_time, s.peak) for s in spikes],
        "spike_period_s": spike_period(spikes),
        "tails": result.tail_summary(start=settings.warmup_s),
    }


def table1_checkpoint_stats(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> Dict:
    """Table 1: per-checkpoint flush/compaction statistics.

    Five consecutive checkpoints after warmup; compaction bursts of 64
    hit alternating stages (s1 at the 1st and 5th, s0 in between),
    matching the staggered scheduled pattern.
    """
    result = _run_traffic(
        settings, checkpoint_interval_s=16.0, initial_l0="staggered"
    )
    stats = result.checkpoint_stats()
    after_warmup = [s for s in stats if s.time >= settings.warmup_s]
    # Align the 5-checkpoint window on a burst checkpoint, as the paper
    # does (its window starts at a synchronization point, 152 s).
    start = 0
    for i, row in enumerate(after_warmup):
        if sum(row.compaction_count.values()) >= 32:
            start = i
            break
    selected = after_warmup[start : start + 5]
    return {
        "rows": [s.to_dict() for s in selected],
        "stages": ["s0", "s1"],
    }


def fig6_point_in_time(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Figure 6: CPU, queues and activity concurrency around the spikes."""
    result = _run_traffic(
        settings, checkpoint_interval_s=16.0, initial_l0="staggered"
    )
    start, end = settings.measure_span
    cpu = result.cpu_series("node0")
    cpu_t, cpu_v = cpu.on_grid(start, end, 0.05)
    q_t, q0 = result.queue_series("s0", start, end)
    _, q1 = result.queue_series("s1", start, end)
    f_t, flush_c = result.concurrency("flush", start, end)
    _, comp_c = result.concurrency("compaction", start, end)
    times, p999 = _timeline(result, settings)
    floor = float(np.median(p999))
    spikes = find_spikes(times, p999, threshold=max(2.5 * floor, 0.8))
    saturated = [
        float(cpu.fraction_above(15.2, s.start - 1.0, s.end + 1.0)) for s in spikes
    ]
    return {
        "cpu": (cpu_t.tolist(), cpu_v.tolist()),
        "queues": (q_t.tolist(), q0.tolist(), q1.tolist()),
        "flush_concurrency": (f_t.tolist(), flush_c.tolist()),
        "compaction_concurrency": (f_t.tolist(), comp_c.tolist()),
        "spikes": [(s.peak_time, s.peak) for s in spikes],
        "cpu_saturated_fraction_at_spikes": saturated,
        "capacity": 16.0,
    }


def fig7_zoom_spans(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Figure 7: individual flush/compaction spans in one burst window.

    Flushes are short and numerous; the compaction burst's spans last
    much longer because 64 jobs share 16 compaction threads per node
    while contending with message processing.
    """
    result = _run_traffic(
        settings, checkpoint_interval_s=16.0, initial_l0="staggered"
    )
    # find a checkpoint with a compaction burst after warmup
    stats = result.checkpoint_stats()
    burst_cp = None
    for row in stats:
        if row.time >= settings.warmup_s and sum(row.compaction_count.values()) >= 32:
            burst_cp = row
            break
    if burst_cp is None:  # pragma: no cover - defensive
        raise RuntimeError("no compaction burst found")
    window = (burst_cp.time - 0.5, burst_cp.time + 8.0)
    flushes = result.flush_spans(window=window)
    compactions = result.compaction_spans(window=window)
    return {
        "window": window,
        "flush_spans": [(s.stage, s.start, s.end) for s in flushes],
        "compaction_spans": [(s.stage, s.start, s.end) for s in compactions],
        "mean_flush_s": float(np.mean([s.duration for s in flushes])),
        "mean_compaction_s": float(np.mean([s.duration for s in compactions]))
        if compactions
        else 0.0,
    }


# ----------------------------------------------------------------------
# §3.3 — statistical ShadowSync (8 s checkpoints, aligned counters)
# ----------------------------------------------------------------------

def fig8_statistical(settings: ExperimentSettings = DEFAULT_SETTINGS) -> Dict:
    """Figure 8: aligned counters put both stages' bursts in the same
    checkpoint → even higher spikes (> 2 s) in a 32 s cycle."""
    result = _run_traffic(
        settings, checkpoint_interval_s=8.0, initial_l0="aligned"
    )
    times, p999 = _timeline(result, settings)
    spikes = find_spikes(times, p999, threshold=1.0)
    cps = [
        t
        for t in result.coordinator.checkpoint_times()
        if t >= settings.warmup_s
    ]
    alignment = burst_alignment(result.spans, ["s0", "s1"], cps)
    return {
        "times": times.tolist(),
        "p999": p999.tolist(),
        "spikes": [(s.peak_time, s.peak) for s in spikes],
        "spike_period_s": spike_period(spikes),
        "per_checkpoint_compactions": {
            k: v for k, v in sorted(alignment.items())
        },
        "tails": result.tail_summary(start=settings.warmup_s),
    }


# ----------------------------------------------------------------------
# §4 — mitigation parameter studies
# ----------------------------------------------------------------------

#: Figure 12's standard 6-point compaction-delay grid (seconds).
DELAY_SWEEP_S = (0.1, 0.5, 1.0, 3.0, 6.0, 8.0)


def fig12_delay_sweep(
    delays=DELAY_SWEEP_S,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    jobs: Optional[int] = None,
) -> Dict:
    """Figure 12: compaction delay sweep (on top of the randomized
    trigger, §4.1's combined setting).  Best around the ~1 s drain
    time; a delay near the checkpoint interval wraps into the next
    flush and regresses."""
    summaries = sweep(
        delays,
        lambda delay: RunSpec(
            settings=settings,
            mitigation=MitigationPlan(
                randomize_compaction_trigger=True, compaction_delay_s=delay
            ),
            label=f"delay={delay:g}s",
        ),
        jobs=jobs,
    )
    rows = [
        {"delay_s": delay, **summary.tails}
        for delay, summary in zip(delays, summaries)
    ]
    best = min(rows, key=lambda r: r["p999"])
    return {"rows": rows, "best_delay_s": best["delay_s"]}


def fig13_flush_thread_sweep(
    threads=(1, 2, 4, 8, 16, 32, 64),
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    jobs: Optional[int] = None,
) -> Dict:
    """Figure 13: flush-pool sweep with §4.1 mitigations active so the
    flush effect is not drowned by compaction spikes.  Severe
    under-allocation is catastrophic; ≈ cores is best; 4× cores pays
    lock-contention overhead."""
    summaries = sweep(
        threads,
        lambda n: RunSpec(
            settings=settings,
            mitigation=MitigationPlan(
                randomize_compaction_trigger=True,
                compaction_delay_s=1.0,
                flush_threads=n,
            ),
            label=f"flush_threads={n}",
        ),
        jobs=jobs,
    )
    rows = [
        {"flush_threads": n, **summary.tails}
        for n, summary in zip(threads, summaries)
    ]
    best = min(rows, key=lambda r: r["p999"])
    return {"rows": rows, "best_flush_threads": best["flush_threads"]}


def fig14_compaction_thread_sweep(
    threads=(1, 2, 4, 8, 16),
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    jobs: Optional[int] = None,
) -> Dict:
    """Figure 14: compaction-pool sweep on the baseline.  One thread
    cannot keep up (L0 write stalls; tails grow with run length — the
    paper reports minutes), a handful is best, and the default 16
    recreates the full ShadowSync contention."""
    summaries = sweep(
        threads,
        lambda n: RunSpec(
            settings=settings,
            mitigation=MitigationPlan(compaction_threads=n),
            label=f"compaction_threads={n}",
        ),
        jobs=jobs,
    )
    rows = [
        {"compaction_threads": n, **summary.tails}
        for n, summary in zip(threads, summaries)
    ]
    good = [r for r in rows if r["compaction_threads"] > 1]
    best = min(good, key=lambda r: r["p999"])
    return {"rows": rows, "best_compaction_threads": best["compaction_threads"]}


def fig15_kneedle(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    jobs: Optional[int] = None,
) -> Dict:
    """Figure 15: infer the compaction allocation from one run.

    50 ms windows of a randomized-trigger run (whose burst sizes vary
    naturally) are binned by observed per-node compaction concurrency;
    Kneedle finds the knee of the latency-vs-concurrency curve.  The
    knee falls at the CPU headroom (16 cores − 12 steady ≈ 4), matching
    Figure 14's brute-force best allocation."""
    long_settings = ExperimentSettings(
        duration_s=max(settings.duration_s, 280.0),
        warmup_s=settings.warmup_s,
        seed=settings.seed,
    )
    (summary,) = run_grid(
        [
            RunSpec(
                settings=long_settings,
                mitigation=MitigationPlan(randomize_compaction_trigger=True),
                label="fig15-long-run",
            )
        ],
        jobs=jobs,
    )
    wt = np.array(summary.fine_times)
    wl = np.array(summary.fine_p999)
    ct = np.array(summary.concurrency_times)
    cc = np.array(summary.compaction_concurrency)
    per_node = np.floor(cc / 4.0)
    levels, means = concurrency_latency_curve(wt, wl, ct, per_node, min_windows=5)
    knee = recommend_compaction_threads(levels, means)
    return {
        "levels": levels.tolist(),
        "mean_p999": means.tolist(),
        "recommended_threads": knee,
    }


# ----------------------------------------------------------------------
# §5 — evaluation of the mitigation methods
# ----------------------------------------------------------------------

def _baseline_vs_solution(
    kind: str,
    settings: ExperimentSettings,
    storage: str = "tmpfs",
    jobs: Optional[int] = None,
) -> Dict:
    specs = [
        RunSpec(
            kind=kind,
            settings=settings,
            mitigation=plan,
            storage=storage,
            label=name,
        )
        for name, plan in (
            ("baseline", None),
            ("solution", MitigationPlan.paper_solution()),
        )
    ]
    summaries = run_grid(specs, jobs=jobs)
    out: Dict = {}
    for spec, summary in zip(specs, summaries):
        out[spec.label] = {
            "tails": summary.tails,
            "timeline": (summary.coarse_times, summary.coarse_p999),
            "peak_p999": summary.peak_p999,
            "compaction_concurrency_peak": summary.compaction_concurrency_peak,
            "per_checkpoint_compactions": {
                k: v
                for k, v in sorted(summary.per_checkpoint_compactions.items())
            },
            "overlap": summary.overlap,
        }
    out["reduction_p999"] = reduction_ratio(
        out["baseline"]["tails"]["p999"], out["solution"]["tails"]["p999"]
    )
    out["reduction_p95"] = reduction_ratio(
        out["baseline"]["tails"]["p95"], out["solution"]["tails"]["p95"]
    )
    return out


def fig16_traffic_mitigation(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    jobs: Optional[int] = None,
) -> Dict:
    """Figure 16: traffic job, baseline vs §4 solution (randomized
    trigger + 1 s delay).  Spikes above 2 s become sub-second; the
    compaction activity spreads across the 4-checkpoint cycle."""
    return _baseline_vs_solution("traffic", settings, jobs=jobs)


def fig17_wordcount_tails(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    jobs: Optional[int] = None,
) -> Dict:
    """Figure 17: WordCount p99.9 — baseline ≈ 1.3 s vs solution ≈ 0.7 s."""
    return _baseline_vs_solution("wordcount", settings, jobs=jobs)


def fig18_wordcount_timeline(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    jobs: Optional[int] = None,
) -> Dict:
    """Figure 18: WordCount fine-grained timelines and concurrency."""
    return _baseline_vs_solution("wordcount", settings, jobs=jobs)


def fig19_traffic_nvme(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    jobs: Optional[int] = None,
) -> Dict:
    """Figure 19: traffic on NVMe — mitigations remain effective when
    flush/compaction pay real I/O costs."""
    return _baseline_vs_solution("traffic", settings, storage="nvme", jobs=jobs)


def fig20_wordcount_nvme(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    jobs: Optional[int] = None,
) -> Dict:
    """Figure 20: WordCount on NVMe — baseline degrades vs tmpfs and
    the mitigations still remove the ShadowSync spikes."""
    return _baseline_vs_solution("wordcount", settings, storage="nvme", jobs=jobs)


def headline_reduction(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    jobs: Optional[int] = None,
) -> Dict:
    """§5 headline: mitigated p99.9 ≲ 20–25 % and p95 < 50 % of the
    baseline (with all three §4 techniques enabled)."""
    baseline, full = run_grid(
        [
            RunSpec(settings=settings, label="baseline"),
            RunSpec(
                settings=settings,
                mitigation=MitigationPlan.full(),
                label="mitigated",
            ),
        ],
        jobs=jobs,
    )
    b, f = baseline.tails, full.tails
    return {
        "baseline": b,
        "mitigated": f,
        "reduction_p999": reduction_ratio(b["p999"], f["p999"]),
        "reduction_p95": reduction_ratio(b["p95"], f["p95"]),
    }
