"""Hot-spot profiling for simulation runs (``repro profile``).

Two complementary views of where a run's wall-clock goes:

* the **dispatch histogram** — per-callback event counts and self time
  measured by the kernel itself
  (:meth:`repro.sim.kernel.Simulator.enable_dispatch_stats`): two
  ``perf_counter`` reads per event, cheap enough to trust the relative
  numbers;
* an optional **cProfile pass** over the same run for function-level
  attribution.  Interpreter tracing inflates small-function overhead
  severalfold (roughly 3× on the benchmark topology), so cProfile rows
  rank suspects; the dispatch histogram and differential wall-clock
  timing decide.

Used by the ``repro profile <experiment>`` CLI and
:func:`repro.api.profile`, so future hot-spot hunts don't start from
scratch.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass, field
from time import perf_counter  # repro: allow[DS101] profiler wall-clock, never model time
from typing import List, Optional

from ..errors import ConfigurationError

__all__ = ["ProfileReport", "profile_run"]


@dataclass
class ProfileReport:
    """Profile of one simulation run."""

    kind: str = "traffic"
    label: str = ""
    duration_s: float = 0.0
    seed: int = 0
    #: Wall-clock of the profiled run (inflated when cProfile is on).
    wall_s: float = 0.0
    events: int = 0
    #: Dispatch histogram rows, sorted by self time descending:
    #: ``{"callback": str, "count": int, "self_s": float}``.
    dispatch: List[dict] = field(default_factory=list)
    #: cProfile rows sorted by tottime descending (empty when the
    #: cProfile pass was skipped): ``{"function": str, "calls": int,
    #: "tottime": float, "cumtime": float}``.
    hotspots: List[dict] = field(default_factory=list)

    @property
    def events_per_second(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "label": self.label,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "wall_s": self.wall_s,
            "events": self.events,
            "events_per_second": self.events_per_second,
            "dispatch": list(self.dispatch),
            "hotspots": list(self.hotspots),
        }

    def render(self, top: int = 20) -> str:
        lines = [
            f"== profile: {self.label or self.kind} — "
            f"{self.duration_s:g} simulated s in {self.wall_s:.3f} wall s, "
            f"{self.events} events ({self.events_per_second:,.0f}/s) =="
        ]
        lines.append("")
        lines.append("dispatch histogram (kernel self time per callback):")
        lines.append(f"{'count':>8}  {'self [ms]':>10}  {'per-event [us]':>14}  callback")
        for row in self.dispatch[:top]:
            per_event = row["self_s"] / row["count"] * 1e6 if row["count"] else 0.0
            lines.append(
                f"{row['count']:>8}  {row['self_s'] * 1e3:>10.1f}  "
                f"{per_event:>14.1f}  {row['callback']}"
            )
        if self.hotspots:
            lines.append("")
            lines.append(
                "cProfile hotspots (tracing inflates small functions ~3x; "
                "rank with the histogram above):"
            )
            lines.append(
                f"{'calls':>10}  {'tottime [ms]':>12}  {'cumtime [ms]':>12}  function"
            )
            for row in self.hotspots[:top]:
                lines.append(
                    f"{row['calls']:>10}  {row['tottime'] * 1e3:>12.1f}  "
                    f"{row['cumtime'] * 1e3:>12.1f}  {row['function']}"
                )
        return "\n".join(lines)


def _build_job(
    kind: str,
    interval_s: float,
    storage: str,
    initial_l0,
    mitigation,
    seed: int,
    scale: int,
):
    from ..apps.traffic_job import build_traffic_job
    from ..apps.wordcount_job import build_wordcount_job
    from ..storage.backend import profile_by_name

    profile = profile_by_name(storage)
    if kind == "wordcount":
        return build_wordcount_job(
            commit_interval_s=interval_s,
            mitigation=mitigation,
            storage=profile,
            seed=seed,
            scale=scale,
        )
    if kind == "traffic":
        return build_traffic_job(
            checkpoint_interval_s=interval_s,
            mitigation=mitigation,
            storage=profile,
            initial_l0=initial_l0,
            seed=seed,
            scale=scale,
        )
    raise ConfigurationError(f"unknown profile kind {kind!r}")


def profile_run(
    kind: str = "traffic",
    duration_s: float = 104.0,
    seed: int = 1,
    interval_s: float = 8.0,
    storage: str = "tmpfs",
    initial_l0="aligned",
    mitigation=None,
    label: str = "",
    with_cprofile: bool = True,
    shards: int = 1,
    top: int = 50,
) -> ProfileReport:
    """Profile one benchmark run; returns a :class:`ProfileReport`.

    The run always records the kernel dispatch histogram; *with_cprofile*
    additionally wraps it in a cProfile pass (slower, function-level).
    ``shards = G`` profiles the 1/G slice a sharded worker executes.
    """
    job = _build_job(kind, interval_s, storage, initial_l0, mitigation,
                     seed, shards)
    job.sim.enable_dispatch_stats()
    profiler: Optional[cProfile.Profile] = None
    started = perf_counter()  # repro: allow[DS101] profiler wall-clock
    if with_cprofile:
        profiler = cProfile.Profile()
        profiler.enable()
    job.run(duration_s)
    if profiler is not None:
        profiler.disable()
    wall = perf_counter() - started  # repro: allow[DS101] profiler wall-clock

    dispatch = [
        {"callback": name, "count": count, "self_s": self_s}
        for name, (count, self_s) in job.sim.dispatch_stats().items()
    ]
    dispatch.sort(key=lambda row: row["self_s"], reverse=True)

    hotspots: List[dict] = []
    if profiler is not None:
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        rows = sorted(
            stats.stats.items(),  # type: ignore[attr-defined]
            key=lambda item: item[1][2],  # tottime
            reverse=True,
        )
        for (filename, lineno, func), (cc, nc, tottime, cumtime, _) in rows[:top]:
            where = (
                func if filename.startswith("~") or filename == "<built-in>"
                else f"{filename}:{lineno}({func})"
            )
            hotspots.append({
                "function": where,
                "calls": int(nc),
                "tottime": float(tottime),
                "cumtime": float(cumtime),
            })

    return ProfileReport(
        kind=kind,
        label=label or kind,
        duration_s=duration_s,
        seed=seed,
        wall_s=wall,
        events=job.sim.events_fired,
        dispatch=dispatch[:top],
        hotspots=hotspots,
    )
