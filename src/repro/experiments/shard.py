"""Sharded simulation: one run split into independent cluster slices.

The deployments the paper simulates are symmetric: stage instances are
assigned round-robin over nodes, the source rate is split evenly over
hosting nodes, and downstream rates are aggregated and re-split evenly.
A 1/G slice of the cluster — nodes (or, for the single-node WordCount
job, cores), stage parallelism, key spaces and source rate all scaled by
1/G — is therefore itself a well-formed deployment whose per-node and
per-instance load match the full run's.  Sharded mode runs G such
slices as G *independent* simulations, optionally fanned over worker
processes, and merges their summaries.

Conservative time synchronization
---------------------------------
Each shard advances its virtual clock in lock-step epochs of one
checkpoint interval (``job.run(duration, barrier_s=interval)``), the
classic conservative-PDES window with the checkpoint interval as
lookahead: no shard's clock moves more than one barrier ahead of the
epoch boundary.  Because the slices genuinely share no events, the
window never forces a rollback — which is exactly why the partitioning
is by *node group* and not by stage (stages on one node share its CPU
and its flush/compaction pools).

Determinism
-----------
A sharded run is deterministic: the same ``(spec, shards)`` produces an
identical merged summary whether shards execute serially in-process or
across worker processes (each shard is seeded as
``seed + 100003 * shard_index``).  It is *not* bit-identical to the
unsharded run — a slice is a smaller cluster with its own RNG draw
order — so golden state digests always use ``shards=1``.

Merging
-------
Counters and concurrency timelines are summed across shards (they
partition the cluster), per-window tail timelines take the worst shard
per window, and the run-level tail summary is conservative: p95/p99/
p99.9/max report the worst shard, p50 the shard mean.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from typing import List, Optional

from ..errors import ConfigurationError
from .runner import ExperimentSettings  # noqa: F401  (re-exported for callers)
from .summary import RunSummary

__all__ = [
    "ShardPlan",
    "ShardedResult",
    "plan_shards",
    "execute_spec_sharded",
    "merge_summaries",
    "shard_seed",
]

#: Seed stride between shards: each slice draws from its own stream.
_SEED_STRIDE = 100003

#: Node (traffic) and per-node core (wordcount) counts of the standard
#: deployments — what a shard count must divide.
_TRAFFIC_NODES = 4
_WORDCOUNT_CORES = 16


def shard_seed(seed: int, shard_index: int) -> int:
    """The RNG seed shard *shard_index* of a run seeded *seed* uses."""
    return seed + _SEED_STRIDE * shard_index


@dataclass(frozen=True)
class ShardPlan:
    """A validated sharding of one run.

    Parameters
    ----------
    shards:
        Number of independent cluster slices.
    barrier_s:
        Conservative-sync epoch length; ``None`` uses the run's
        checkpoint/commit interval (the natural lookahead — all
        cross-instance coupling inside a shard happens at checkpoint
        boundaries).
    """

    shards: int
    barrier_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.barrier_s is not None and self.barrier_s <= 0:
            raise ConfigurationError(
                f"barrier_s must be > 0, got {self.barrier_s}"
            )

    def resolve_barrier(self, interval_s: float) -> float:
        return self.barrier_s if self.barrier_s is not None else interval_s


def plan_shards(spec, shards: int, barrier_s: Optional[float] = None) -> ShardPlan:
    """Validate *shards* against *spec*'s deployment shape.

    Raises :class:`~repro.errors.ConfigurationError` when the cluster
    cannot be sliced evenly: the traffic job's 4 node groups admit
    shards ∈ {1, 2, 4}; the single-node WordCount job slices its 16
    cores, so shards must divide 16.  Stage parallelism divisibility is
    checked by :meth:`repro.stream.stage.StageSpec.scaled` at build
    time; the checks here fail fast with the same rules.
    """
    plan = ShardPlan(shards=shards, barrier_s=barrier_s)
    if shards == 1:
        return plan
    if spec.kind == "scenario":
        from ..scenarios.run import scenario_shard_unit

        whole, what, stages = scenario_shard_unit(spec.scenario)
    else:
        if spec.kind == "traffic":
            whole, what = _TRAFFIC_NODES, "node groups"
        else:
            whole, what = _WORDCOUNT_CORES, "cores"
        from ..apps.traffic_job import TRAFFIC_STAGES
        from ..apps.wordcount_job import WORDCOUNT_STAGES

        stages = TRAFFIC_STAGES if spec.kind == "traffic" else WORDCOUNT_STAGES
    if whole % shards != 0:
        raise ConfigurationError(
            f"{spec.kind} job: {whole} {what} cannot be split into "
            f"{shards} shards"
        )
    # Fail fast on stage divisibility (scaled() re-checks at build time).
    for stage in stages:
        stage.scaled(shards)
    return plan


@dataclass
class ShardedResult:
    """The merged summary of a sharded run plus its per-shard parts."""

    merged: RunSummary
    parts: List[RunSummary]
    shards: int
    barrier_s: float
    #: Lock-step epochs each shard advanced through.
    barriers: int


# ----------------------------------------------------------------------
# per-shard execution
# ----------------------------------------------------------------------

def _execute_one_shard(spec, shards: int, index: int, barrier_s: float) -> RunSummary:
    """Run shard *index* of *spec* to completion (worker-side step)."""
    from ..scenarios.run import execute_scenario
    from .parallel import spec_scenario
    from .summary import summarize_run

    settings = replace(spec.settings, seed=shard_seed(spec.settings.seed, index))
    label = f"{spec.label or spec.kind}[shard {index}/{shards}]"
    scenario = spec_scenario(spec)
    result = execute_scenario(
        scenario,
        settings=settings,
        faults=spec.faults,
        resilience=spec.resilience,
        scale=shards,
        barrier_s=barrier_s,
    )
    return summarize_run(
        result,
        settings,
        kind=spec.kind,
        label=label,
        scenario=scenario.name if spec.kind == "scenario" else "",
    )


def _shard_worker(payload):
    """Process-pool entry point: ``(index, summary_dict)``."""
    spec, shards, index, barrier_s = payload
    return index, _execute_one_shard(spec, shards, index, barrier_s).to_dict()


def execute_spec_sharded(
    spec,
    shards: int,
    jobs: Optional[int] = None,
    barrier_s: Optional[float] = None,
) -> ShardedResult:
    """Run *spec* as *shards* independent slices and merge the results.

    Parameters
    ----------
    spec:
        A :class:`~repro.experiments.parallel.RunSpec`.
    shards:
        Cluster slices (must divide the deployment, see
        :func:`plan_shards`).
    jobs:
        Worker processes for the shard fan-out: ``None``/``1`` runs the
        shards serially in-process, ``0`` uses one process per shard.
        Serial and process execution produce identical merged summaries.
    barrier_s:
        Conservative-sync epoch; default is the spec's checkpoint
        interval.

    Returns a :class:`ShardedResult`; ``.merged`` is the
    :class:`RunSummary` a caller would use in place of the unsharded
    one, ``.parts`` keeps the per-shard summaries for inspection.
    """
    plan = plan_shards(spec, shards, barrier_s=barrier_s)
    interval = (
        spec.scenario.interval_s if spec.kind == "scenario" else spec.interval_s
    )
    barrier = plan.resolve_barrier(interval)
    duration = spec.settings.duration_s
    barriers = max(1, int(-(-duration // barrier)))  # ceil
    if shards == 1:
        from .parallel import execute_spec

        summary = execute_spec(spec)
        return ShardedResult(
            merged=summary, parts=[summary], shards=1,
            barrier_s=barrier, barriers=barriers,
        )

    workers = shards if jobs is not None and jobs <= 0 else (jobs or 1)
    workers = min(workers, shards)
    parts: List[Optional[RunSummary]] = [None] * shards
    if workers <= 1:
        for index in range(shards):
            # Round-trip through the dict form so in-process results are
            # bit-identical to what a worker process would ship back.
            parts[index] = RunSummary.from_dict(
                _execute_one_shard(spec, shards, index, barrier).to_dict()
            )
    else:
        context = multiprocessing.get_context("spawn")
        payloads = [(spec, shards, index, barrier) for index in range(shards)]
        with context.Pool(workers) as pool:
            for index, data in pool.imap_unordered(_shard_worker, payloads):
                parts[index] = RunSummary.from_dict(data)
    merged = merge_summaries(parts, label=spec.label or spec.kind, shards=shards)
    return ShardedResult(
        merged=merged, parts=parts, shards=shards,
        barrier_s=barrier, barriers=barriers,
    )


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------

def _merge_timeline(times_parts, values_parts, combine):
    """Merge per-shard ``(times, values)`` series on the union grid."""
    merged: dict = {}
    for times, values in zip(times_parts, values_parts):
        for t, v in zip(times, values):
            if t in merged:
                merged[t] = combine(merged[t], v)
            else:
                merged[t] = v
    keys = sorted(merged)
    return keys, [merged[t] for t in keys]


def merge_summaries(
    parts: List[RunSummary], label: str = "", shards: Optional[int] = None
) -> RunSummary:
    """Combine per-shard summaries into one cluster-level summary.

    Extensive quantities (activity counters, concurrency timelines,
    per-checkpoint compaction counts) are summed — the shards partition
    the cluster.  Tail timelines take the worst shard per window, and
    the run-level tail summary is conservative: p95/p99/p99.9/max are
    the worst shard's (an upper bound on the cluster tail), p50 is the
    shard mean.  Checkpoint trigger times come from shard 0 (all shards
    share the interval); per-shard checkpoint-stat rows are concatenated
    in shard order.
    """
    if not parts:
        raise ConfigurationError("merge_summaries needs at least one part")
    if any(p is None for p in parts):
        raise ConfigurationError("cannot merge: a shard produced no summary")
    first = parts[0]
    if len(parts) == 1:
        return first
    count = len(parts)

    tails = {}
    for key in ("p50", "p95", "p99", "p999", "max"):
        values = [p.tails[key] for p in parts if key in p.tails]
        if not values:
            continue
        tails[key] = (sum(values) / len(values)) if key == "p50" else max(values)

    coarse_t, coarse_v = _merge_timeline(
        [p.coarse_times for p in parts], [p.coarse_p999 for p in parts], max
    )
    fine_t, fine_v = _merge_timeline(
        [p.fine_times for p in parts], [p.fine_p999 for p in parts], max
    )
    conc_t, flush_c = _merge_timeline(
        [p.concurrency_times for p in parts],
        [p.flush_concurrency for p in parts],
        lambda a, b: a + b,
    )
    _, comp_c = _merge_timeline(
        [p.concurrency_times for p in parts],
        [p.compaction_concurrency for p in parts],
        lambda a, b: a + b,
    )

    activities: dict = {}
    for part in parts:
        for key, value in part.activities.items():
            activities[key] = activities.get(key, 0) + value

    alignment: dict = {}
    for part in parts:
        for index, by_stage in part.per_checkpoint_compactions.items():
            row = alignment.setdefault(index, {})
            for stage, n in by_stage.items():
                row[stage] = row.get(stage, 0) + n

    suffix = f"[shards={shards or count}]"
    return RunSummary(
        kind=first.kind,
        label=(label or first.kind) + suffix,
        scenario=first.scenario,
        seed=first.seed,
        duration_s=first.duration_s,
        warmup_s=first.warmup_s,
        fine_window_s=first.fine_window_s,
        coarse_window_s=first.coarse_window_s,
        tails=tails,
        coarse_times=coarse_t,
        coarse_p999=coarse_v,
        fine_times=fine_t,
        fine_p999=fine_v,
        concurrency_times=conc_t,
        flush_concurrency=flush_c,
        compaction_concurrency=comp_c,
        checkpoint_times=list(first.checkpoint_times),
        checkpoint_stats=[row for p in parts for row in p.checkpoint_stats],
        per_checkpoint_compactions=alignment,
        overlap=dict(first.overlap),
        activities=activities,
        fault_plan=dict(first.fault_plan),
        fault_events=[e for p in parts for e in p.fault_events],
        invariant_violations=[v for p in parts for v in p.invariant_violations],
        resilience=dict(first.resilience),
    )
