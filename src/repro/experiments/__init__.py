"""Experiment definitions: one function per paper table/figure, plus
the parallel executor and serializable run summaries they share."""

from .figures import (
    fig1_fig3_baseline_timeline,
    fig6_point_in_time,
    fig7_zoom_spans,
    fig8_statistical,
    fig12_delay_sweep,
    fig13_flush_thread_sweep,
    fig14_compaction_thread_sweep,
    fig15_kneedle,
    fig16_traffic_mitigation,
    fig17_wordcount_tails,
    fig18_wordcount_timeline,
    fig19_traffic_nvme,
    fig20_wordcount_nvme,
    headline_reduction,
    table1_checkpoint_stats,
)
from .parallel import (
    RunSpec,
    cache_dir,
    cache_enabled,
    clear_cache,
    execute_spec,
    run_grid,
    spec_cache_key,
    sweep,
)
from .report import render_series, render_sweep, render_table, render_tails
from .runner import DEFAULT_SETTINGS, ExperimentSettings, run_traffic, run_wordcount
from .summary import RunSummary, summarize_run

__all__ = [
    "RunSpec",
    "RunSummary",
    "cache_dir",
    "cache_enabled",
    "clear_cache",
    "execute_spec",
    "run_grid",
    "spec_cache_key",
    "summarize_run",
    "sweep",
    "DEFAULT_SETTINGS",
    "fig1_fig3_baseline_timeline",
    "fig6_point_in_time",
    "fig7_zoom_spans",
    "fig8_statistical",
    "fig12_delay_sweep",
    "fig13_flush_thread_sweep",
    "fig14_compaction_thread_sweep",
    "fig15_kneedle",
    "fig16_traffic_mitigation",
    "fig17_wordcount_tails",
    "fig18_wordcount_timeline",
    "fig19_traffic_nvme",
    "fig20_wordcount_nvme",
    "headline_reduction",
    "table1_checkpoint_stats",
    "render_series",
    "render_sweep",
    "render_table",
    "render_tails",
    "ExperimentSettings",
    "run_traffic",
    "run_wordcount",
]
