"""Experiment definitions: one function per paper table/figure."""

from .figures import (
    fig1_fig3_baseline_timeline,
    fig6_point_in_time,
    fig7_zoom_spans,
    fig8_statistical,
    fig12_delay_sweep,
    fig13_flush_thread_sweep,
    fig14_compaction_thread_sweep,
    fig15_kneedle,
    fig16_traffic_mitigation,
    fig17_wordcount_tails,
    fig18_wordcount_timeline,
    fig19_traffic_nvme,
    fig20_wordcount_nvme,
    headline_reduction,
    table1_checkpoint_stats,
)
from .report import render_series, render_sweep, render_table, render_tails
from .runner import ExperimentSettings, run_traffic, run_wordcount

__all__ = [
    "fig1_fig3_baseline_timeline",
    "fig6_point_in_time",
    "fig7_zoom_spans",
    "fig8_statistical",
    "fig12_delay_sweep",
    "fig13_flush_thread_sweep",
    "fig14_compaction_thread_sweep",
    "fig15_kneedle",
    "fig16_traffic_mitigation",
    "fig17_wordcount_tails",
    "fig18_wordcount_timeline",
    "fig19_traffic_nvme",
    "fig20_wordcount_nvme",
    "headline_reduction",
    "table1_checkpoint_stats",
    "render_series",
    "render_sweep",
    "render_table",
    "render_tails",
    "ExperimentSettings",
    "run_traffic",
    "run_wordcount",
]
