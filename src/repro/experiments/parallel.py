"""Parallel experiment execution with a content-addressed result cache.

The paper's methodology is embarrassingly parallel — every figure is a
sweep of independent ``(config, seed)`` runs — but the seed executed
them strictly serially.  This module is the execution layer the sweeps
go through instead:

* :class:`RunSpec` — a frozen, picklable description of one run
  (benchmark kind, mitigation plan, checkpoint/commit interval, initial
  L0 phase, storage profile, :class:`ExperimentSettings`);
* :func:`run_grid` — fan a list of specs across worker processes
  (``multiprocessing`` *spawn* context, deterministic, results returned
  in submission order) with each worker reducing its run to a
  :class:`~repro.experiments.summary.RunSummary` before crossing the
  process boundary;
* :func:`sweep` — the one-parameter-sweep convenience wrapper;
* a content-addressed on-disk cache (``.repro-cache/`` by default)
  keyed on a SHA-256 of the canonical spec JSON plus the package
  version, so regenerating a figure twice costs one disk read per run.

Environment toggles::

    REPRO_CACHE=off        # disable the cache entirely
    REPRO_CACHE_DIR=path   # relocate it (default ./.repro-cache)
    REPRO_SHARDS=G         # run every spec as G cluster slices
                           # (see repro.experiments.shard)
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import multiprocessing
import os
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from .. import __version__
from ..compat import keyword_only
from ..serialize import canonical_json
from ..core.mitigation import MitigationPlan
from ..errors import ConfigurationError
from ..faults.plan import FaultPlan
from ..resilience.config import ResilienceConfig
from ..scenarios.spec import ScenarioSpec
from ..storage.backend import profile_by_name
from .runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    legacy_scenario,
)
from .summary import RunSummary, summarize_run

__all__ = [
    "RunSpec",
    "run_grid",
    "sweep",
    "execute_spec",
    "spec_scenario",
    "cache_enabled",
    "cache_dir",
    "spec_cache_key",
    "cache_key_from_dict",
    "cache_load",
    "cache_store",
    "clear_cache",
]

CACHE_ENV = "REPRO_CACHE"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
SHARDS_ENV = "REPRO_SHARDS"
DEFAULT_CACHE_DIR = ".repro-cache"

#: Version stamped into every cache key: a new release invalidates all
#: cached summaries (simulation or analysis code may have changed).
_PACKAGE_VERSION = __version__

_KINDS = ("traffic", "wordcount", "scenario")


@keyword_only
@dataclass(frozen=True)
class RunSpec:
    """One (config, seed) run, fully described by plain data.

    Everything here pickles cleanly under the *spawn* start method and
    hashes canonically for the result cache.  ``label`` is presentation
    only and excluded from the cache key.
    """

    kind: str = "traffic"
    settings: ExperimentSettings = DEFAULT_SETTINGS
    mitigation: Optional[MitigationPlan] = None
    #: Checkpoint interval (traffic) or commit interval (wordcount).
    interval_s: float = 8.0
    #: Initial L0 counter phase ("aligned" / "staggered"); traffic only.
    initial_l0: Union[str, Dict[str, int]] = "aligned"
    #: Storage profile name ("tmpfs" / "nvme" / "hdd").
    storage: str = "tmpfs"
    label: str = ""
    #: Fault plan injected into the run (``None`` = fault-free).
    faults: Optional[FaultPlan] = None
    #: Resilience (overload-protection) config (``None`` = disabled).
    resilience: Optional[ResilienceConfig] = None
    #: Declarative scenario to run (kind ``"scenario"``).  When set,
    #: ``interval_s``/``initial_l0``/``mitigation``/``storage`` are
    #: carried by the scenario itself; spec-level ``faults``/
    #: ``resilience`` override the scenario's own when given.
    scenario: Optional[ScenarioSpec] = None

    def __post_init__(self) -> None:
        if isinstance(self.scenario, dict):
            object.__setattr__(
                self, "scenario", ScenarioSpec.from_dict(self.scenario)
            )
        elif isinstance(self.scenario, str):
            from ..scenarios.library import scenario as _by_name

            object.__setattr__(self, "scenario", _by_name(self.scenario))
        if self.scenario is not None:
            object.__setattr__(self, "kind", "scenario")
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown run kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.kind == "scenario" and self.scenario is None:
            raise ConfigurationError(
                "kind 'scenario' needs a scenario= ScenarioSpec"
            )
        profile_by_name(self.storage)  # raises on unknown profiles
        if isinstance(self.faults, dict):
            object.__setattr__(self, "faults", FaultPlan.from_dict(self.faults))
        if isinstance(self.resilience, dict):
            object.__setattr__(
                self, "resilience", ResilienceConfig.from_dict(self.resilience)
            )
        elif self.resilience is True:
            from ..resilience.config import DEFAULT_RESILIENCE

            object.__setattr__(self, "resilience", DEFAULT_RESILIENCE)

    def with_seed(self, seed: int) -> RunSpec:
        """A copy of this spec running under a different seed."""
        return replace(self, settings=replace(self.settings, seed=seed))

    def key_dict(self) -> dict:
        """Canonical content for hashing (label excluded).

        The ``scenario`` entry appears only on scenario runs, so every
        legacy spec's key payload — and therefore its cache address —
        is byte-identical to previous releases.
        """
        payload = {
            "kind": self.kind,
            "settings": asdict(self.settings),
            "mitigation": None if self.mitigation is None else asdict(self.mitigation),
            "interval_s": self.interval_s,
            "initial_l0": self.initial_l0,
            "storage": self.storage,
            "faults": None if self.faults is None else self.faults.to_dict(),
            "resilience": (
                None if self.resilience is None else self.resilience.to_dict()
            ),
        }
        if self.scenario is not None:
            payload["scenario"] = self.scenario.key_dict()
        return payload


# ----------------------------------------------------------------------
# the worker-side step
# ----------------------------------------------------------------------

def spec_scenario(spec: RunSpec) -> ScenarioSpec:
    """The scenario a spec runs: its own, or the legacy-kind equivalent."""
    if spec.scenario is not None:
        return spec.scenario
    return legacy_scenario(
        spec.kind,
        mitigation=spec.mitigation,
        interval_s=spec.interval_s,
        initial_l0=spec.initial_l0,
        storage=spec.storage,
    )


def execute_spec(spec: RunSpec) -> RunSummary:
    """Run one spec to completion and reduce it to a summary.

    Every kind — legacy ``traffic``/``wordcount`` and declarative
    ``scenario`` — funnels through
    :func:`repro.scenarios.run.execute_scenario`; spec-level
    ``faults``/``resilience`` override whatever the scenario declares.
    """
    from ..scenarios.run import execute_scenario

    scenario = spec_scenario(spec)
    result = execute_scenario(
        scenario,
        settings=spec.settings,
        faults=spec.faults,
        resilience=spec.resilience,
    )
    return summarize_run(
        result,
        spec.settings,
        kind=spec.kind,
        label=spec.label or (scenario.name if spec.kind == "scenario" else ""),
        scenario=scenario.name if spec.kind == "scenario" else "",
    )


def _worker(payload):
    """Pool entry point: returns ``(index, summary_dict)``.

    Only the plain dict crosses the process boundary — the live job
    (generators, callbacks) dies with the worker.
    """
    index, spec = payload
    return index, execute_spec(spec).to_dict()


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------

def cache_enabled() -> bool:
    """Whether the on-disk cache is active (``REPRO_CACHE=off`` kills it)."""
    return os.environ.get(CACHE_ENV, "").lower() not in ("off", "0", "false", "no")


def cache_dir(directory: Optional[Union[str, Path]] = None) -> Path:
    """Resolve the cache directory (argument > env > default)."""
    if directory is not None:
        return Path(directory)
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


def cache_key_from_dict(
    key_dict: dict, version: Optional[str] = None, shards: int = 1
) -> str:
    """Content address of a spec's :meth:`RunSpec.key_dict` payload.

    The hash goes through :func:`repro.serialize.canonical_json`, so it
    is independent of dict insertion order — the order-sanitizer
    (:mod:`repro.sanitize.ordering`) checks exactly this property.
    Sharded runs (``shards > 1``) hash to a different address: their
    summaries are merged approximations and must never substitute for
    the unsharded run (or vice versa).
    """
    payload = {
        "spec": key_dict,
        "version": _PACKAGE_VERSION if version is None else version,
    }
    if shards > 1:
        payload["shards"] = shards
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def spec_cache_key(
    spec: RunSpec, version: Optional[str] = None, shards: int = 1
) -> str:
    """Content address of a spec: SHA-256 over canonical JSON + version."""
    return cache_key_from_dict(spec.key_dict(), version=version, shards=shards)


def cache_load(
    spec: RunSpec,
    directory: Optional[Union[str, Path]] = None,
    shards: int = 1,
) -> Optional[RunSummary]:
    """Fetch a cached summary for *spec*, or ``None`` on a miss."""
    path = cache_dir(directory) / f"{spec_cache_key(spec, shards=shards)}.json"
    try:
        with open(path, encoding="utf-8") as handle:
            stored = json.load(handle)
        return RunSummary.from_dict(stored["summary"])
    except (OSError, KeyError, TypeError, ValueError):
        # Missing, concurrently-written or corrupt entries are misses.
        return None


def cache_store(
    spec: RunSpec,
    summary: RunSummary,
    directory: Optional[Union[str, Path]] = None,
    shards: int = 1,
) -> Path:
    """Persist *summary* under *spec*'s content address (atomically)."""
    root = cache_dir(directory)
    root.mkdir(parents=True, exist_ok=True)
    key = spec_cache_key(spec, shards=shards)
    path = root / f"{key}.json"
    payload = {
        "key": key,
        "version": _PACKAGE_VERSION,
        "spec": spec.key_dict(),
        "summary": summary.to_dict(),
    }
    if shards > 1:
        payload["shards"] = shards
    tmp = root / f".{key}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)  # atomic: concurrent writers race benignly
    return path


def clear_cache(directory: Optional[Union[str, Path]] = None) -> int:
    """Delete all cached summaries; returns the number removed."""
    root = cache_dir(directory)
    removed = 0
    if root.is_dir():
        for entry in sorted(root.glob("*.json")):
            with contextlib.suppress(OSError):
                entry.unlink()
                removed += 1
    return removed


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------

def _resolve_jobs(jobs: Optional[int]) -> int:
    """``None`` → serial; ``<= 0`` → one worker per core; else *jobs*."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _resolve_shards(shards: Optional[int]) -> int:
    """``None`` defers to ``REPRO_SHARDS`` (default 1 = unsharded)."""
    if shards is not None:
        return max(1, int(shards))
    raw = os.environ.get(SHARDS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ConfigurationError(
            f"{SHARDS_ENV}={raw!r} is not an integer shard count"
        ) from None


def run_grid(
    specs: Iterable[RunSpec],
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_directory: Optional[Union[str, Path]] = None,
    shards: Optional[int] = None,
) -> List[RunSummary]:
    """Execute every spec and return summaries in submission order.

    Parameters
    ----------
    specs:
        The runs to execute.
    jobs:
        ``None`` runs serially in-process; ``N > 1`` fans uncached runs
        over ``N`` spawn workers; ``0`` means one worker per core.
    cache:
        Force the cache on/off; ``None`` defers to ``REPRO_CACHE``.
    cache_directory:
        Override the cache location (default: ``REPRO_CACHE_DIR`` or
        ``./.repro-cache``).
    shards:
        Run every spec as this many independent cluster slices and
        merge their summaries (see :mod:`repro.experiments.shard`);
        ``None`` defers to ``REPRO_SHARDS``, default unsharded.
        Sharded summaries cache under their own content address and are
        never substituted for unsharded ones.

    Serial and parallel execution produce bit-identical summaries: the
    simulator is fully seeded, workers are independent, and both paths
    round-trip through ``RunSummary.to_dict``/``from_dict``.
    """
    spec_list = list(specs)
    use_cache = cache_enabled() if cache is None else bool(cache)
    shard_count = _resolve_shards(shards)
    results: List[Optional[RunSummary]] = [None] * len(spec_list)

    missing: List[int] = []
    for index, spec in enumerate(spec_list):
        hit = (
            cache_load(spec, cache_directory, shards=shard_count)
            if use_cache
            else None
        )
        if hit is not None:
            # The label is excluded from the cache key (presentation
            # only), so a hit may carry the label of whichever figure
            # cached it first — restamp with the requesting spec's.
            label = spec.label
            if shard_count > 1:
                label = (label or spec.kind) + f"[shards={shard_count}]"
            results[index] = dataclasses.replace(hit, label=label)
        else:
            missing.append(index)

    if shard_count > 1:
        # Sharded mode: the process fan-out happens *inside* each spec
        # (one worker per shard), so specs execute one after another.
        from .shard import execute_spec_sharded

        for index in missing:
            results[index] = execute_spec_sharded(
                spec_list[index], shard_count, jobs=jobs
            ).merged
    else:
        workers = min(_resolve_jobs(jobs), max(len(missing), 1))
        if workers <= 1 or len(missing) <= 1:
            for index in missing:
                # Round-trip through the dict form so serial results are
                # bit-identical to what a worker would have shipped back.
                results[index] = RunSummary.from_dict(
                    execute_spec(spec_list[index]).to_dict()
                )
        else:
            context = multiprocessing.get_context("spawn")
            payloads = [(index, spec_list[index]) for index in missing]
            with context.Pool(workers) as pool:
                for index, data in pool.imap_unordered(_worker, payloads):
                    results[index] = RunSummary.from_dict(data)

    if use_cache:
        for index in missing:
            cache_store(
                spec_list[index], results[index], cache_directory,
                shards=shard_count,
            )
    return results  # type: ignore[return-value]


def sweep(
    values: Sequence,
    make_spec: Callable[[object], RunSpec],
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    cache_directory: Optional[Union[str, Path]] = None,
    shards: Optional[int] = None,
) -> List[RunSummary]:
    """Map *values* through *make_spec* and execute the resulting grid.

    The classic one-parameter sweep::

        summaries = sweep(
            (0.1, 0.5, 1.0),
            lambda delay: RunSpec(
                mitigation=MitigationPlan(
                    randomize_compaction_trigger=True,
                    compaction_delay_s=delay,
                ),
            ),
            jobs=8,
        )

    Summaries come back aligned with *values*.
    """
    specs = [make_spec(value) for value in values]
    return run_grid(
        specs, jobs=jobs, cache=cache, cache_directory=cache_directory,
        shards=shards,
    )
