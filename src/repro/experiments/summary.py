"""Serializable run summaries.

A :class:`~repro.stream.engine.StreamJobResult` holds the live
:class:`~repro.stream.engine.StreamJob` — generators, event callbacks,
open flows — and therefore cannot cross a process boundary or be stored
on disk.  :class:`RunSummary` is the picklable/JSON-able reduction of a
run: everything the sweep-shaped figures (12–16, 19–20, the §5 headline)
and the CLI reports consume, extracted once on the worker side.

The reduction is *content-complete* for those consumers: tail summary,
windowed p99.9 timelines at the fine (50 ms) and coarse (500 ms)
windows, flush/compaction concurrency timelines, checkpoint bookkeeping,
per-checkpoint burst alignment and the ShadowSync overlap report.
``to_dict``/``from_dict`` round-trip exactly (JSON float repr is
shortest-roundtrip), which is what lets the result cache substitute a
stored summary for a live run bit-for-bit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List

from ..serialize import register

__all__ = ["RunSummary", "summarize_run"]

#: dt of the concurrency timelines, matching the paper's 50 ms analysis
#: grids (Figures 6, 15, 16, 18).
CONCURRENCY_DT = 0.05


@register
@dataclass
class RunSummary:
    """The serializable digest of one finished stream-job run."""

    kind: str = "traffic"
    label: str = ""
    #: Library/spec scenario name for scenario runs ("" = legacy kind).
    scenario: str = ""
    seed: int = 0
    duration_s: float = 0.0
    warmup_s: float = 0.0
    fine_window_s: float = 0.05
    coarse_window_s: float = 0.5
    #: p50/p95/p99/p999/max over the measured span, seconds.
    tails: Dict[str, float] = field(default_factory=dict)
    #: Windowed p99.9 timeline at the coarse window (plot-friendly).
    coarse_times: List[float] = field(default_factory=list)
    coarse_p999: List[float] = field(default_factory=list)
    #: Windowed p99.9 timeline at the fine window (Kneedle input).
    fine_times: List[float] = field(default_factory=list)
    fine_p999: List[float] = field(default_factory=list)
    #: Shared grid of the concurrency timelines (dt = 50 ms).
    concurrency_times: List[float] = field(default_factory=list)
    flush_concurrency: List[float] = field(default_factory=list)
    compaction_concurrency: List[float] = field(default_factory=list)
    #: Checkpoint trigger times within the measured span.
    checkpoint_times: List[float] = field(default_factory=list)
    #: Table 1 rows (:meth:`CheckpointStats.to_dict`), whole run.
    checkpoint_stats: List[dict] = field(default_factory=list)
    #: ``{checkpoint_index: {stage: compaction_count}}`` (§3.3 alignment).
    per_checkpoint_compactions: Dict[int, Dict[str, int]] = field(
        default_factory=dict
    )
    #: :meth:`OverlapReport.to_dict` over the measured span.
    overlap: Dict = field(default_factory=dict)
    #: Run-level activity counters (flushes, compactions, stalls, ...).
    activities: Dict[str, float] = field(default_factory=dict)
    #: Trace schema version of :attr:`trace_events` (0 = untraced run).
    trace_schema: int = 0
    #: :meth:`TraceEvent.to_dict` records when the run was traced; they
    #: ride the summary through the executor cache so ``repro trace``
    #: works on cached runs too.
    trace_events: List[dict] = field(default_factory=list)
    #: :meth:`FaultPlan.to_dict` of the injected plan (``None`` = clean).
    fault_plan: dict = field(default_factory=dict)
    #: One record per executed fault (kind, node, start/end, recovery).
    fault_events: List[dict] = field(default_factory=list)
    #: :meth:`InvariantViolation.to_dict` records caught during the run.
    invariant_violations: List[dict] = field(default_factory=list)
    #: :meth:`ResilienceController.report` digest (``{}`` = layer off):
    #: guard mode windows, trips, shed counts, watchdog restarts,
    #: upload retries/sheds.
    resilience: Dict = field(default_factory=dict)
    #: :meth:`ClusterManager.report` digest (``{}`` = static topology):
    #: membership log, suspicions, migrations, ownership flips,
    #: rebalance windows.
    cluster: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------

    @property
    def p999(self) -> float:
        return self.tails["p999"]

    @property
    def peak_p999(self) -> float:
        """Highest coarse-window p99.9 — the figure captions' 'spike'."""
        return float(max(self.coarse_p999)) if self.coarse_p999 else 0.0

    @property
    def compaction_concurrency_peak(self) -> float:
        return (
            float(max(self.compaction_concurrency))
            if self.compaction_concurrency
            else 0.0
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> RunSummary:
        data = dict(data)
        # JSON object keys are strings; restore the checkpoint indices.
        alignment = data.get("per_checkpoint_compactions") or {}
        data["per_checkpoint_compactions"] = {
            int(k): dict(v) for k, v in alignment.items()
        }
        return cls(**data)


def summarize_run(result, settings, kind: str = "traffic",
                  label: str = "", scenario: str = "") -> RunSummary:
    """Reduce a live :class:`StreamJobResult` to a :class:`RunSummary`.

    This is the worker-side step of the parallel executor: it runs in
    the subprocess, touches every lazily-computed view once, and only
    the plain-data summary crosses the process boundary.
    """
    from ..analysis.overlap import burst_alignment, overlap_report
    from ..metrics.percentiles import tail_summary, windowed_quantile
    from ..trace import TRACE_SCHEMA_VERSION

    start, end = settings.warmup_s, settings.duration_s
    times, latency, weights = result.end_to_end_latency(start, end)
    coarse_t, coarse_v = windowed_quantile(
        times, latency, settings.coarse_window_s, 0.999, weights
    )
    fine_t, fine_v = windowed_quantile(
        times, latency, settings.fine_window_s, 0.999, weights
    )
    conc_t, flush_c = result.concurrency("flush", start, end, dt=CONCURRENCY_DT)
    _, comp_c = result.concurrency("compaction", start, end, dt=CONCURRENCY_DT)
    cps = [t for t in result.coordinator.checkpoint_times() if t >= start]
    stage_names = [stage.name for stage in result.job.stages]
    alignment = (
        burst_alignment(result.spans, stage_names, cps) if cps else {}
    )
    report = overlap_report(result.spans, start, end).to_dict()
    completed = result.coordinator.completed
    tracer = result.tracer
    trace_events = (
        [event.to_dict() for event in tracer] if tracer.enabled else []
    )
    plan = getattr(result.job, "fault_plan", None)
    injector = getattr(result.job, "fault_injector", None)
    checker = getattr(result.job, "invariant_checker", None)
    controller = getattr(result.job, "resilience", None)
    cluster_report = result.cluster_report
    return RunSummary(
        kind=kind,
        label=label,
        scenario=scenario,
        seed=settings.seed,
        duration_s=settings.duration_s,
        warmup_s=settings.warmup_s,
        fine_window_s=settings.fine_window_s,
        coarse_window_s=settings.coarse_window_s,
        tails=tail_summary(latency, weights),
        coarse_times=coarse_t.tolist(),
        coarse_p999=coarse_v.tolist(),
        fine_times=fine_t.tolist(),
        fine_p999=fine_v.tolist(),
        concurrency_times=conc_t.tolist(),
        flush_concurrency=flush_c.tolist(),
        compaction_concurrency=comp_c.tolist(),
        checkpoint_times=cps,
        checkpoint_stats=[s.to_dict() for s in result.checkpoint_stats()],
        per_checkpoint_compactions=alignment,
        overlap=report,
        activities={
            "flushes": result.spans.count(kind="flush"),
            "compactions": result.spans.count(kind="compaction"),
            "compaction_input_bytes": result.spans.total_input_bytes(
                kind="compaction"
            ),
            "write_stall_events": result.job.backend.write_stall_events,
            "checkpoints_triggered": len(result.coordinator.records),
            "checkpoints_completed": len(completed),
        },
        trace_schema=TRACE_SCHEMA_VERSION if trace_events else 0,
        trace_events=trace_events,
        fault_plan={} if plan is None else plan.to_dict(),
        fault_events=[] if injector is None else [dict(e) for e in injector.events],
        invariant_violations=[] if checker is None else checker.to_dicts(),
        resilience={} if controller is None else controller.report(),
        cluster={} if cluster_report is None else cluster_report,
    )
