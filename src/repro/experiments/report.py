"""Plain-text rendering of experiment outputs.

The paper's tables and figure captions are regenerated as ASCII so the
benchmark harness (and EXPERIMENTS.md) can show paper-vs-measured rows
without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_table", "render_series", "render_tails", "render_sweep"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """A fixed-width ASCII table."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                cell = f"{cell:.3f}"
            columns[i].append(str(cell))
    widths = [max(len(v) for v in col) for col in columns]
    lines = []
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row_idx in range(1, len(columns[0])):
        lines.append(
            " | ".join(col[row_idx].ljust(w) for col, w in zip(columns, widths))
        )
    return "\n".join(lines)


def render_series(
    times: Sequence[float],
    values: Sequence[float],
    width: int = 72,
    height: int = 12,
    label: str = "",
) -> str:
    """A crude ASCII timeline plot (good enough to see the spikes)."""
    if not times:
        return "(empty series)"
    t0, t1 = times[0], times[-1]
    vmax = max(values) or 1.0
    buckets = [0.0] * width
    for t, v in zip(times, values):
        i = min(int((t - t0) / max(t1 - t0, 1e-9) * (width - 1)), width - 1)
        buckets[i] = max(buckets[i], v)
    rows = []
    for level in range(height, 0, -1):
        threshold = vmax * level / height
        rows.append(
            "".join("#" if v >= threshold else " " for v in buckets)
        )
    axis = f"{t0:.0f}s" + " " * (width - 12) + f"{t1:.0f}s"
    head = f"{label} (max={vmax:.2f})" if label else f"max={vmax:.2f}"
    return "\n".join([head] + rows + [axis])


def render_tails(tails_by_name: Dict[str, Dict[str, float]]) -> str:
    """Side-by-side latency summaries."""
    headers = ["run", "p50", "p95", "p99", "p99.9", "max"]
    rows = [
        [name, t["p50"], t["p95"], t["p99"], t["p999"], t["max"]]
        for name, t in tails_by_name.items()
    ]
    return render_table(headers, rows)


def render_sweep(rows: List[Dict], x_key: str) -> str:
    """A parameter sweep as a table, best row marked."""
    best = min(rows, key=lambda r: r["p999"])
    headers = [x_key, "p95", "p99.9", ""]
    table_rows = [
        [r[x_key], r["p95"], r["p999"], "<- best" if r is best else ""]
        for r in rows
    ]
    return render_table(headers, table_rows)
