"""Command-line interface: regenerate any paper experiment.

Usage::

    python -m repro list
    python -m repro run fig8 [--duration 200] [--seed 1]
    python -m repro run fig12 --jobs 8     # fan the sweep across cores
    python -m repro run table1
    python -m repro compare                # baseline vs solution summary
    python -m repro cache info             # inspect the result cache
    python -m repro cache clear

The output is plain text (tables and ASCII timelines); experiment
functions are resolved from :mod:`repro.experiments.figures`.  Sweep
experiments accept ``--jobs N`` to run their independent simulations on
``N`` worker processes, and all of them reuse the content-addressed
result cache under ``.repro-cache/`` (disable with ``--no-cache`` or
``REPRO_CACHE=off``).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from . import figures
from .parallel import CACHE_ENV, RunSpec, cache_dir, clear_cache, run_grid
from .report import render_series, render_sweep, render_table, render_tails
from .runner import ExperimentSettings

__all__ = ["EXPERIMENTS", "main", "build_parser"]

#: CLI name -> experiment function.
EXPERIMENTS: Dict[str, Callable] = {
    "fig1": figures.fig1_fig3_baseline_timeline,
    "fig3": figures.fig1_fig3_baseline_timeline,
    "table1": figures.table1_checkpoint_stats,
    "fig6": figures.fig6_point_in_time,
    "fig7": figures.fig7_zoom_spans,
    "fig8": figures.fig8_statistical,
    "fig12": figures.fig12_delay_sweep,
    "fig13": figures.fig13_flush_thread_sweep,
    "fig14": figures.fig14_compaction_thread_sweep,
    "fig15": figures.fig15_kneedle,
    "fig16": figures.fig16_traffic_mitigation,
    "fig17": figures.fig17_wordcount_tails,
    "fig18": figures.fig18_wordcount_timeline,
    "fig19": figures.fig19_traffic_nvme,
    "fig20": figures.fig20_wordcount_nvme,
    "headline": figures.headline_reduction,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ShadowSync reproduction: regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment and print its report")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--duration", type=float, default=200.0,
                     help="simulated seconds (default 200)")
    run.add_argument("--warmup", type=float, default=40.0,
                     help="seconds excluded from measurement (default 40)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--jobs", type=int, default=None,
                     help="worker processes for sweep experiments "
                          "(default serial; 0 = one per core)")
    run.add_argument("--no-cache", action="store_true",
                     help="bypass the on-disk result cache")
    run.add_argument("--json", action="store_true",
                     help="dump the raw experiment dict as JSON")

    compare = sub.add_parser(
        "compare", help="run traffic baseline vs solution and print tails"
    )
    compare.add_argument("--duration", type=float, default=200.0)
    compare.add_argument("--warmup", type=float, default=40.0)
    compare.add_argument("--seed", type=int, default=1)
    compare.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default serial)")
    compare.add_argument("--no-cache", action="store_true",
                         help="bypass the on-disk result cache")

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("info", "clear"))
    return parser


def _summarize(name: str, out: dict) -> str:
    """Render the parts of an experiment dict a terminal reader wants."""
    lines: List[str] = [f"== {name} =="]
    if "rows" in out and out["rows"] and "delay_s" in out["rows"][0]:
        lines.append(render_sweep(out["rows"], "delay_s"))
    elif "rows" in out and out["rows"] and "flush_threads" in out["rows"][0]:
        lines.append(render_sweep(out["rows"], "flush_threads"))
    elif "rows" in out and out["rows"] and "compaction_threads" in out["rows"][0]:
        lines.append(render_sweep(out["rows"], "compaction_threads"))
    elif "rows" in out:  # table1
        headers = ["CP", "t [s]", "flush s0/s1", "compaction s0/s1", "input MB"]
        table_rows = []
        for row in out["rows"]:
            table_rows.append([
                row["checkpoint"],
                f"{row['time']:.0f}",
                f"{row['flush_count'].get('s0', 0)}/{row['flush_count'].get('s1', 0)}",
                f"{row['compaction_count'].get('s0', 0)}/"
                f"{row['compaction_count'].get('s1', 0)}",
                f"{row['compaction_input_mb']:.0f}",
            ])
        lines.append(render_table(headers, table_rows))
    if "times" in out and "p999" in out:
        lines.append(render_series(out["times"], out["p999"],
                                   label="p99.9 latency [s]"))
    if "baseline" in out and "solution" in out:
        lines.append(render_tails({
            "baseline": out["baseline"]["tails"],
            "solution": out["solution"]["tails"],
        }))
        lines.append(
            f"reduction: p99.9 -> {out['reduction_p999']:.0%}, "
            f"p95 -> {out['reduction_p95']:.0%}"
        )
    if "tails" in out:
        lines.append(render_tails({"run": out["tails"]}))
    for key in ("spike_period_s", "best_delay_s", "best_flush_threads",
                "best_compaction_threads", "recommended_threads",
                "floor_s"):
        if out.get(key) is not None:
            lines.append(f"{key}: {out[key]}")
    return "\n".join(lines)


class _cache_override:
    """Temporarily force ``REPRO_CACHE=off`` for ``--no-cache`` runs."""

    def __init__(self, disable: bool) -> None:
        self.disable = disable
        self._saved: Optional[str] = None

    def __enter__(self) -> "_cache_override":
        if self.disable:
            self._saved = os.environ.get(CACHE_ENV)
            os.environ[CACHE_ENV] = "off"
        return self

    def __exit__(self, *exc) -> None:
        if self.disable:
            if self._saved is None:
                os.environ.pop(CACHE_ENV, None)
            else:
                os.environ[CACHE_ENV] = self._saved


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {doc}")
        return 0

    if args.command == "cache":
        root = cache_dir()
        if args.action == "clear":
            removed = clear_cache()
            print(f"removed {removed} cached run(s) from {root}")
        else:
            entries = sorted(root.glob("*.json")) if root.is_dir() else []
            total = sum(entry.stat().st_size for entry in entries)
            print(f"cache directory: {root}")
            print(f"entries: {len(entries)}  ({total / 1e6:.1f} MB)")
        return 0

    if args.command == "compare":
        from ..core.mitigation import MitigationPlan

        settings = ExperimentSettings(
            duration_s=args.duration, warmup_s=args.warmup, seed=args.seed
        )
        specs = [
            RunSpec(settings=settings, mitigation=plan, label=name)
            for name, plan in (("baseline", None),
                               ("solution", MitigationPlan.paper_solution()))
        ]
        with _cache_override(args.no_cache):
            summaries = run_grid(specs, jobs=args.jobs)
        tails = {s.label: s.tails for s in summaries}
        print(render_tails(tails))
        ratio = tails["solution"]["p999"] / tails["baseline"]["p999"]
        print(f"p99.9 reduced to {ratio:.0%} of baseline")
        return 0

    settings = ExperimentSettings(
        duration_s=args.duration, warmup_s=args.warmup, seed=args.seed
    )
    experiment = EXPERIMENTS[args.experiment]
    kwargs = {"settings": settings}
    if "jobs" in inspect.signature(experiment).parameters:
        kwargs["jobs"] = args.jobs
    with _cache_override(args.no_cache):
        out = experiment(**kwargs)
    if args.json:
        json.dump(out, sys.stdout, indent=2, default=str)
        print()
    else:
        print(_summarize(args.experiment, out))
    return 0
