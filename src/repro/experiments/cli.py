"""Command-line interface: regenerate any paper experiment.

Usage::

    python -m repro list
    python -m repro run fig8 [--duration 200] [--seed 1]
    python -m repro run fig12 --jobs 8     # fan the sweep across cores
    python -m repro run table1
    python -m repro run headline --trace   # record traces alongside
    python -m repro scenarios list         # the named scenario library
    python -m repro scenarios show windowed_join
    python -m repro run --scenario diurnal_flash [--faults crash]
    python -m repro trace fig8             # trace + millibottleneck report
    python -m repro trace fig8 --chrome    # Perfetto-loadable trace file
    python -m repro soak                   # chaos-soak over the library
    python -m repro soak --kind windowed_join --seeds 1 2 3 --random
    python -m repro soak --random --cluster  # node crash/flap/partition mix
    python -m repro cluster show           # elastic_scale's ClusterSpec
    python -m repro cluster run            # elastic run + ownership audit
    python -m repro compare                # baseline vs solution summary
    python -m repro cache info             # inspect the result cache
    python -m repro cache clear
    python -m repro profile fig8           # dispatch histogram + cProfile
    python -m repro lint src/repro         # determinism lint (exit 1 on findings)
    python -m repro sanitize --duration 24 # race + ordering sanitizers

The output is plain text (tables and ASCII timelines); experiment
functions are resolved from :mod:`repro.experiments.figures`.  Sweep
experiments accept ``--jobs N`` to run their independent simulations on
``N`` worker processes, and all of them reuse the content-addressed
result cache under ``.repro-cache/`` (disable with ``--no-cache`` or
``REPRO_CACHE=off``).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from ..errors import ReproError
from . import figures
from .parallel import (
    CACHE_ENV,
    SHARDS_ENV,
    RunSpec,
    cache_dir,
    clear_cache,
    run_grid,
)
from .report import render_series, render_sweep, render_table, render_tails
from .runner import ExperimentSettings

__all__ = ["EXPERIMENTS", "main", "build_parser"]

#: ``repro trace`` exemplar run per experiment: the single traced run
#: that best illustrates what the experiment measures (sweeps trace
#: their baseline point).  Values are :class:`RunSpec` keyword overrides.
EXEMPLARS: Dict[str, Dict] = {
    "fig1": {"interval_s": 16.0, "initial_l0": "staggered"},
    "fig3": {"interval_s": 16.0, "initial_l0": "staggered"},
    "table1": {"interval_s": 16.0, "initial_l0": "staggered"},
    "fig6": {"interval_s": 16.0, "initial_l0": "staggered"},
    "fig7": {"interval_s": 16.0, "initial_l0": "staggered"},
    "fig8": {"interval_s": 8.0, "initial_l0": "aligned"},
    "fig17": {"kind": "wordcount"},
    "fig18": {"kind": "wordcount"},
    "fig19": {"storage": "nvme"},
    "fig20": {"kind": "wordcount", "storage": "nvme"},
}

#: CLI name -> experiment function.
EXPERIMENTS: Dict[str, Callable] = {
    "fig1": figures.fig1_fig3_baseline_timeline,
    "fig3": figures.fig1_fig3_baseline_timeline,
    "table1": figures.table1_checkpoint_stats,
    "fig6": figures.fig6_point_in_time,
    "fig7": figures.fig7_zoom_spans,
    "fig8": figures.fig8_statistical,
    "fig12": figures.fig12_delay_sweep,
    "fig13": figures.fig13_flush_thread_sweep,
    "fig14": figures.fig14_compaction_thread_sweep,
    "fig15": figures.fig15_kneedle,
    "fig16": figures.fig16_traffic_mitigation,
    "fig17": figures.fig17_wordcount_tails,
    "fig18": figures.fig18_wordcount_timeline,
    "fig19": figures.fig19_traffic_nvme,
    "fig20": figures.fig20_wordcount_nvme,
    "headline": figures.headline_reduction,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ShadowSync reproduction: regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser(
        "run",
        help="run one experiment (or one library scenario) and print its "
             "report",
    )
    run.add_argument("experiment", nargs="?", choices=sorted(EXPERIMENTS),
                     help="paper experiment to regenerate (omit when using "
                          "--scenario)")
    run.add_argument("--scenario", default=None, metavar="NAME",
                     help="run one library scenario through the unified "
                          "run_scenario path instead of a paper "
                          "experiment ('repro scenarios list' for names)")
    run.add_argument("--duration", type=float, default=200.0,
                     help="simulated seconds (default 200)")
    run.add_argument("--warmup", type=float, default=40.0,
                     help="seconds excluded from measurement (default 40)")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--jobs", type=int, default=None,
                     help="worker processes for sweep experiments "
                          "(default serial; 0 = one per core)")
    run.add_argument("--shards", type=int, default=None, metavar="G",
                     help="run each simulation as G independent cluster "
                          "slices advancing in lock-step checkpoint "
                          "epochs and merge their summaries (must divide "
                          "the deployment: traffic 4 nodes, wordcount 16 "
                          "cores); --jobs fans the slices over processes")
    run.add_argument("--no-cache", action="store_true",
                     help="bypass the on-disk result cache")
    run.add_argument("--json", action="store_true",
                     help="dump the raw experiment dict as JSON")
    run.add_argument("--trace", action="store_true",
                     help="record structured traces; they ride the cached "
                          "summaries (export with 'repro trace')")
    run.add_argument("--faults", default=None, metavar="PLAN",
                     help="inject a fault plan into the experiment's exemplar "
                          "run: a preset name (crash, flush-stall, "
                          "compaction-stall, slow-disk, checkpoint-timeout, "
                          "backpressure, chaos), a JSON file path, or inline "
                          "JSON")

    scenarios = sub.add_parser(
        "scenarios",
        help="list the named scenario library or show one spec "
             "(serialized form + cache-key payload)",
    )
    scenarios.add_argument("action", choices=("list", "show"))
    scenarios.add_argument("name", nargs="?", default=None,
                           help="scenario name (required for 'show')")
    scenarios.add_argument("--json", action="store_true",
                           help="emit machine-readable JSON")

    trace = sub.add_parser(
        "trace",
        help="record one traced exemplar run of an experiment, write the "
             "trace and print its millibottleneck attribution",
    )
    trace.add_argument("experiment", nargs="?", default="fig8",
                       choices=sorted(EXPERIMENTS))
    trace.add_argument("--duration", type=float, default=104.0,
                       help="simulated seconds (default 104)")
    trace.add_argument("--warmup", type=float, default=32.0,
                       help="seconds excluded from analysis (default 32)")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--out", default=None,
                       help="trace file path "
                            "(default <experiment>.trace.jsonl/.json)")
    trace.add_argument("--chrome", action="store_true",
                       help="write Chrome trace-event JSON (load in Perfetto "
                            "or chrome://tracing) instead of JSONL")
    trace.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")

    compare = sub.add_parser(
        "compare", help="run traffic baseline vs solution and print tails"
    )
    compare.add_argument("--duration", type=float, default=200.0)
    compare.add_argument("--warmup", type=float, default=40.0)
    compare.add_argument("--seed", type=int, default=1)
    compare.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default serial)")
    compare.add_argument("--no-cache", action="store_true",
                         help="bypass the on-disk result cache")

    soak = sub.add_parser(
        "soak",
        help="chaos-soak: run seeded fault schedules against the guarded "
             "pipeline and audit SLO recovery, exactly-once invariants and "
             "queue bounds (exit 1 on any failure)",
    )
    soak.add_argument("--kind", default="library",
                      help="pipeline under chaos: 'library' (default) "
                           "samples one scenario per seed from the soak "
                           "pool, a library scenario name pins that "
                           "scenario, 'traffic'/'wordcount' keep the "
                           "legacy ad-hoc pipelines")
    soak.add_argument("--seeds", type=int, nargs="+", default=[1, 2],
                      help="one soak run per seed (default: 1 2)")
    soak.add_argument("--duration", type=float, default=130.0,
                      help="simulated seconds per run (default 130)")
    soak.add_argument("--warmup", type=float, default=20.0,
                      help="seconds before the baseline window (default 20)")
    soak.add_argument("--faults", default="combined", metavar="PLAN",
                      help="fault plan: preset name, JSON file or inline "
                           "JSON (default: the 'combined' preset)")
    soak.add_argument("--random", action="store_true",
                      help="ignore --faults; generate a random FaultPlan "
                           "per seed (FaultPlan.random)")
    soak.add_argument("--cluster", action="store_true",
                      help="install the elastic cluster layer on every "
                           "scenario run and let --random draw node-crash/"
                           "flap/partition faults; the audit additionally "
                           "requires resolved migrations and full "
                           "partition ownership")
    soak.add_argument("--budget", type=float, default=25.0,
                      help="recovery budget after each fault window, "
                           "seconds (default 25)")
    soak.add_argument("--ratio", type=float, default=1.5,
                      help="recovered = p99.9 <= ratio x pre-fault "
                           "baseline (default 1.5)")
    soak.add_argument("--queue-limit", type=float, default=300_000.0,
                      help="max sampled backlog before the run counts as "
                           "a queue blow-up (default 300000 messages)")
    soak.add_argument("--jobs", type=int, default=None,
                      help="worker processes (default serial; 0 = one "
                           "per core)")
    soak.add_argument("--no-cache", action="store_true",
                      help="bypass the on-disk result cache")
    soak.add_argument("--json", action="store_true",
                      help="dump the full SoakReport as JSON")

    cluster = sub.add_parser(
        "cluster",
        help="elastic cluster layer: show a scenario's ClusterSpec or run "
             "an elastic scenario and audit membership, migrations and "
             "ownership (exit 1 on violations or unowned partitions)",
    )
    cluster.add_argument("action", choices=("show", "run"))
    cluster.add_argument("scenario", nargs="?", default="elastic_scale",
                         help="library scenario with a cluster layer "
                              "(default elastic_scale)")
    cluster.add_argument("--duration", type=float, default=200.0,
                         help="simulated seconds (default 200)")
    cluster.add_argument("--warmup", type=float, default=40.0,
                         help="seconds excluded from measurement "
                              "(default 40)")
    cluster.add_argument("--seed", type=int, default=1)
    cluster.add_argument("--no-cache", action="store_true",
                         help="bypass the on-disk result cache")
    cluster.add_argument("--json", action="store_true",
                         help="dump the cluster report (show: the spec) "
                              "as JSON")

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("info", "clear"))

    lint = sub.add_parser(
        "lint",
        help="static determinism lint: flag wall-clock reads, unseeded "
             "RNG, unordered iteration, mutable defaults and module "
             "singletons (exit 1 on findings)",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--json", action="store_true",
                      help="emit findings as a JSON report (same as "
                           "--format json)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default=None,
                      help="output format: terminal text (default), the "
                           "findings_json report, or SARIF 2.1.0 for code "
                           "scanning")
    lint.add_argument("--rules", metavar="RULE", nargs="+", default=None,
                      help="restrict to these rules: IDs (DS201), slugs "
                           "(hidden-blocking-call) or families (DS2xx)")

    sync = sub.add_parser(
        "sync",
        help="hidden-synchronization audit: DS2xx static catalog check "
             "plus a trace-grounded wait-for graph diffed against the "
             "declared sync catalog (exit 1 on shadow edges or findings)",
    )
    sync.add_argument("--scenario", default="baseline_traffic",
                      help="traced scenario for the dynamic half "
                           "(default baseline_traffic)")
    sync.add_argument("--duration", type=float, default=120.0,
                      help="simulated seconds (default 120)")
    sync.add_argument("--warmup", type=float, default=10.0)
    sync.add_argument("--seed", type=int, default=1)
    sync.add_argument("--trace-file", metavar="PATH", default=None,
                      help="audit a pre-recorded JSONL trace instead of "
                           "running the scenario")
    sync.add_argument("--static-only", action="store_true",
                      help="skip the traced run; DS2xx catalog check only")
    sync.add_argument("--dynamic-only", action="store_true",
                      help="skip the static half; wait-for graph only")
    sync.add_argument("paths", nargs="*", metavar="PATH",
                      help="source tree for the static half (default: the "
                           "installed repro package)")
    sync.add_argument("--no-cache", action="store_true",
                      help="bypass the on-disk result cache")
    sync.add_argument("--json", action="store_true",
                      help="dump the audit report as JSON")

    profile = sub.add_parser(
        "profile",
        help="profile one exemplar run: kernel dispatch histogram "
             "(per-callback event counts and self time) plus an optional "
             "cProfile pass — the starting point for hot-spot hunts",
    )
    profile.add_argument("experiment", nargs="?", default="fig8",
                         choices=sorted(EXPERIMENTS))
    profile.add_argument("--duration", type=float, default=104.0,
                         help="simulated seconds (default 104)")
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument("--top", type=int, default=20,
                         help="rows per section (default 20)")
    profile.add_argument("--shards", type=int, default=1, metavar="G",
                         help="profile the 1/G cluster slice a sharded "
                              "worker executes")
    profile.add_argument("--no-cprofile", action="store_true",
                         help="skip the cProfile pass; dispatch histogram "
                              "only (faster, uninflated wall time)")
    profile.add_argument("--json", action="store_true",
                         help="dump the ProfileReport as JSON")

    sanitize = sub.add_parser(
        "sanitize",
        help="runtime determinism sanitizers: run a benchmark twice with "
             "perturbed same-timestamp tie-breaking and diff state "
             "digests, then check cache-key/summary order independence "
             "(exit 1 on divergence)",
    )
    sanitize.add_argument("--kind", choices=("traffic", "wordcount"),
                          default="wordcount")
    sanitize.add_argument("--duration", type=float, default=24.0,
                          help="simulated seconds per probe run (default 24)")
    sanitize.add_argument("--window", type=float, default=2.0,
                          help="digest window, seconds (default 2)")
    sanitize.add_argument("--seed", type=int, default=1)
    sanitize.add_argument("--interval", type=float, default=8.0,
                          help="checkpoint interval, seconds (default 8)")
    sanitize.add_argument("--storage", choices=("tmpfs", "nvme"),
                          default="tmpfs")
    sanitize.add_argument("--shards", type=int, default=1, metavar="G",
                          help="sanitize the sharded mode: probe the 1/G "
                               "cluster slice a sharded worker executes")
    sanitize.add_argument("--perturbations", type=int, default=8,
                          help="dict-order shuffles for the ordering "
                               "checks (default 8)")
    sanitize.add_argument("--json", action="store_true",
                          help="dump the SanitizeReport as JSON")

    tune = sub.add_parser(
        "tune",
        help="search the joint mitigation space (policy zoo × threshold "
             "spread × delay × pool sizes) on a library scenario and "
             "emit the tuned-config artifact + headline table",
    )
    tune.add_argument("--scenario", default="baseline_traffic",
                      help="library scenario to tune (default "
                           "baseline_traffic)")
    tune.add_argument("--smoke", action="store_true",
                      help="tiny grid + short runs (CI smoke)")
    tune.add_argument("--duration", type=float, default=None,
                      help="simulated seconds per run (default 200, "
                           "smoke 60)")
    tune.add_argument("--warmup", type=float, default=None,
                      help="measurement warmup, seconds (default 40, "
                           "smoke 20)")
    tune.add_argument("--seed", type=int, default=1)
    tune.add_argument("--policies", default=None,
                      help="comma-separated policy subset (default: the "
                           "whole registry)")
    tune.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes (default serial; 0 = one "
                           "per core)")
    tune.add_argument("--shards", type=int, default=None, metavar="G",
                      help="run every config as G cluster slices")
    tune.add_argument("--no-cache", action="store_true",
                      help="bypass the result cache")
    tune.add_argument("--out", default=None, metavar="PATH",
                      help="write the TunedConfig artifact JSON here")
    tune.add_argument("--json", action="store_true",
                      help="dump the full TuneReport as JSON")
    return parser


def _summarize(name: str, out: dict) -> str:
    """Render the parts of an experiment dict a terminal reader wants."""
    lines: List[str] = [f"== {name} =="]
    if "rows" in out and out["rows"] and "delay_s" in out["rows"][0]:
        lines.append(render_sweep(out["rows"], "delay_s"))
    elif "rows" in out and out["rows"] and "flush_threads" in out["rows"][0]:
        lines.append(render_sweep(out["rows"], "flush_threads"))
    elif "rows" in out and out["rows"] and "compaction_threads" in out["rows"][0]:
        lines.append(render_sweep(out["rows"], "compaction_threads"))
    elif "rows" in out:  # table1
        headers = ["CP", "t [s]", "flush s0/s1", "compaction s0/s1", "input MB"]
        table_rows = []
        for row in out["rows"]:
            table_rows.append([
                row["checkpoint"],
                f"{row['time']:.0f}",
                f"{row['flush_count'].get('s0', 0)}/{row['flush_count'].get('s1', 0)}",
                f"{row['compaction_count'].get('s0', 0)}/"
                f"{row['compaction_count'].get('s1', 0)}",
                f"{row['compaction_input_mb']:.0f}",
            ])
        lines.append(render_table(headers, table_rows))
    if "times" in out and "p999" in out:
        lines.append(render_series(out["times"], out["p999"],
                                   label="p99.9 latency [s]"))
    mitigated_key = next(
        (k for k in ("solution", "mitigated") if k in out), None
    )
    if "baseline" in out and mitigated_key is not None:
        baseline = out["baseline"]
        mitigated = out[mitigated_key]
        lines.append(render_tails({
            "baseline": baseline.get("tails", baseline),
            mitigated_key: mitigated.get("tails", mitigated),
        }))
        lines.append(
            f"reduction: p99.9 -> {out['reduction_p999']:.0%}, "
            f"p95 -> {out['reduction_p95']:.0%}"
        )
    if "tails" in out:
        lines.append(render_tails({"run": out["tails"]}))
    for key in ("spike_period_s", "best_delay_s", "best_flush_threads",
                "best_compaction_threads", "recommended_threads",
                "floor_s"):
        if out.get(key) is not None:
            lines.append(f"{key}: {out[key]}")
    return "\n".join(lines)


def _render_millibottleneck(report) -> str:
    """Terminal rendering of a millibottleneck attribution report."""
    lines = [
        f"millibottleneck report (window {report.window_s * 1000:.0f} ms, "
        f"spike threshold {report.threshold_s:.2f} s)",
        f"spikes: {report.spike_count}  attributed: {report.attributed_count} "
        f"({report.attributed_fraction:.0%})  "
        f"classification: {report.classification}"
        + (f"  alignment: {report.alignment:.2f}"
           if report.alignment is not None else ""),
    ]
    if report.saturation_windows:
        lines.append(f"cpu saturation windows: {len(report.saturation_windows)}")
    if report.spikes:
        headers = ["peak t [s]", "p99.9 [s]", "flush", "compaction",
                   "overlap [s]", "CP", "class"]
        rows = [
            [f"{s.peak_time:.1f}", f"{s.peak_s:.2f}", s.flush_spans,
             s.compaction_spans, f"{s.overlap_s:.2f}", s.checkpoint_index,
             s.classification]
            for s in report.spikes
        ]
        lines.append(render_table(headers, rows))
    return "\n".join(lines)


def _trace_command(args) -> int:
    """Run one traced exemplar run; write the trace, print attribution."""
    from ..analysis.millibottleneck import analyze_summary
    from ..trace import TraceEvent, Tracer

    overrides = dict(EXEMPLARS.get(args.experiment, {}))
    kind = overrides.pop("kind", "traffic")
    settings = ExperimentSettings(
        duration_s=args.duration, warmup_s=args.warmup, seed=args.seed,
        trace=True,
    )
    spec = RunSpec(kind=kind, settings=settings,
                   label=f"trace:{args.experiment}", **overrides)
    with _cache_override(args.no_cache):
        summary = run_grid([spec])[0]
    if not summary.trace_events:
        print("run produced no trace events", file=sys.stderr)
        return 1

    tracer = Tracer()
    tracer.extend(TraceEvent.from_dict(e) for e in summary.trace_events)
    # Give the exported file a latency track so the spike context is
    # visible next to the spans in Perfetto.
    for t, v in zip(summary.fine_times, summary.fine_p999):
        tracer.counter("latency_p999", "latency", t, v, tid="latency")

    out = args.out
    if out is None:
        out = f"{args.experiment}.trace." + ("json" if args.chrome else "jsonl")
    if args.chrome:
        tracer.write_chrome(out)
    else:
        tracer.write_jsonl(out)
    print(f"{len(tracer)} events ({summary.kind} run, schema "
          f"{summary.trace_schema}) -> {out}")

    report = analyze_summary(summary)
    print(_render_millibottleneck(report))
    return 0


def _faults_command(args) -> int:
    """Run the experiment's exemplar under a fault plan; report recovery."""
    from ..errors import ConfigurationError
    from ..faults import load_fault_plan

    try:
        plan = load_fault_plan(args.faults)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    overrides = dict(EXEMPLARS.get(args.experiment, {}))
    kind = overrides.pop("kind", "traffic")
    settings = ExperimentSettings(
        duration_s=args.duration, warmup_s=args.warmup, seed=args.seed,
        trace=args.trace,
    )
    spec = RunSpec(kind=kind, settings=settings, faults=plan,
                   label=f"faults:{args.experiment}", **overrides)
    with _cache_override(args.no_cache):
        summary = run_grid([spec], jobs=args.jobs)[0]

    if args.json:
        json.dump(summary.to_dict(), sys.stdout, indent=2, default=str)
        print()
        return 0

    print(f"== {args.experiment} under fault plan {plan.name!r} ==")
    print(render_tails({summary.label: summary.tails}))
    if summary.fault_events:
        headers = ["fault", "node", "start [s]", "end [s]", "factor"]
        rows = [
            [e["kind"], e["node"], f"{e['start']:.1f}",
             "-" if e.get("end") is None else f"{e['end']:.1f}",
             f"{e['factor']:.2f}"]
            for e in summary.fault_events
        ]
        print(render_table(headers, rows))
    restored = sum(
        len(e.get("restores", ())) for e in summary.fault_events
    )
    if restored:
        print(f"instances restored from checkpoint: {restored}")
    violations = summary.invariant_violations
    if violations:
        print(f"INVARIANT VIOLATIONS: {len(violations)}")
        for v in violations[:10]:
            print(f"  [{v['time']:.1f}s] {v['invariant']}: {v['message']}")
        return 1
    print("invariant violations: 0")
    return 0


def _scenarios_command(args) -> int:
    """List the scenario library, or show one spec in full."""
    from ..errors import ConfigurationError
    from ..scenarios import SOAK_POOL, scenario, scenario_names
    from .parallel import cache_key_from_dict

    if args.action == "list":
        if args.json:
            from ..scenarios import SCENARIOS

            json.dump(
                {name: SCENARIOS[name].to_dict() for name in scenario_names()},
                sys.stdout, indent=2,
            )
            print()
            return 0
        headers = ["scenario", "app", "arrival", "tenants", "soak pool"]
        rows = []
        for name in scenario_names():
            spec = scenario(name)
            rows.append([
                name, spec.app, spec.workload.arrival, spec.tenants,
                "yes" if name in SOAK_POOL else "-",
            ])
        print(render_table(headers, rows))
        print("\nrun one with: repro run --scenario NAME  "
              "(details: repro scenarios show NAME)")
        return 0

    if not args.name:
        print("error: 'repro scenarios show' needs a scenario name",
              file=sys.stderr)
        return 2
    try:
        spec = scenario(args.name)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = {
        "spec": spec.to_dict(),
        "cache_key": cache_key_from_dict(
            {"scenario": spec.key_dict()}, version="scenario"
        ),
    }
    if args.json:
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    print(f"== {spec.name} ==")
    print(spec.description)
    print(f"\ncache key (spec content hash): {payload['cache_key']}")
    print(json.dumps(payload["spec"], indent=2))
    return 0


def _run_scenario_command(args) -> int:
    """Run one library scenario through the unified scenario path."""
    from ..errors import ConfigurationError
    from ..faults import load_fault_plan
    from ..scenarios import scenario

    try:
        spec = scenario(args.scenario)
        plan = load_fault_plan(args.faults) if args.faults else None
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    settings = ExperimentSettings(
        duration_s=args.duration, warmup_s=args.warmup, seed=args.seed,
        trace=args.trace,
    )
    run_spec = RunSpec(
        kind="scenario", scenario=spec, settings=settings, faults=plan,
        label=f"scenario:{spec.name}",
    )
    with _cache_override(args.no_cache), _shard_override(args.shards):
        summary = run_grid([run_spec], jobs=args.jobs)[0]
    if args.json:
        json.dump(summary.to_dict(), sys.stdout, indent=2, default=str)
        print()
        return 0
    print(f"== scenario {spec.name} ==")
    print(spec.description)
    print(render_tails({spec.name: summary.tails}))
    if summary.coarse_times:
        print(render_series(summary.coarse_times, summary.coarse_p999,
                            label="p99.9 latency [s]"))
    if summary.invariant_violations:
        print(f"INVARIANT VIOLATIONS: {len(summary.invariant_violations)}")
        return 1
    return 0


def _cluster_command(args) -> int:
    """Show a scenario's ClusterSpec, or run it and audit the cluster."""
    from ..errors import ConfigurationError
    from ..scenarios import scenario

    try:
        spec = scenario(args.scenario)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if spec.cluster is None:
        print(f"error: scenario {spec.name!r} has no cluster layer "
              "(pick one with a 'cluster' section, e.g. elastic_scale)",
              file=sys.stderr)
        return 2

    if args.action == "show":
        payload = spec.cluster.to_dict()
        if args.json:
            json.dump(payload, sys.stdout, indent=2)
            print()
            return 0
        print(f"== cluster spec of {spec.name} ==")
        print(f"heartbeat {payload['heartbeat_interval_s']}s, "
              f"phi threshold {payload['phi_threshold']}, "
              f"min std {payload['min_std_s']}s, "
              f"window {payload['history_window']} samples")
        print(f"migration: {payload['migration_bandwidth_mb_s']} MB/s, "
              f"deadline {payload['transfer_deadline_s']}s, "
              f"handover pause {payload['handover_pause_s']}s, "
              f"max parallel {payload['max_parallel_migrations']}")
        if payload.get("events"):
            headers = ["action", "at [s]", "count"]
            rows = [[e["action"], f"{e['at_s']:.1f}", e["count"]]
                    for e in payload["events"]]
            print(render_table(headers, rows))
        else:
            print("membership schedule: none (static unless faulted)")
        return 0

    settings = ExperimentSettings(
        duration_s=args.duration, warmup_s=args.warmup, seed=args.seed
    )
    run_spec = RunSpec(
        kind="scenario", scenario=spec, settings=settings,
        label=f"cluster:{spec.name}",
    )
    with _cache_override(args.no_cache):
        summary = run_grid([run_spec])[0]
    report = summary.cluster or {}
    if args.json:
        json.dump(
            {"scenario": spec.name, "tails": summary.tails,
             "cluster": report,
             "invariant_violations": summary.invariant_violations},
            sys.stdout, indent=2, default=str,
        )
        print()
    else:
        print(f"== cluster run: {spec.name} ==")
        nodes = report.get("nodes", {})
        print(f"live {nodes.get('live', [])}  "
              f"retired {nodes.get('retired', [])}  "
              f"down {nodes.get('down', [])}")
        migrations = report.get("migrations", [])
        by_status: Dict[str, int] = {}
        for record in migrations:
            by_status[record["status"]] = by_status.get(record["status"], 0) + 1
        print(f"migrations: {len(migrations)} {by_status}  "
              f"ownership flips: {report.get('ownership_flips', 0)}")
        if report.get("windows"):
            headers = ["window", "start [s]", "end [s]"]
            rows = [[label, f"{start:.1f}", f"{end:.1f}"]
                    for label, start, end in report["windows"]]
            print(render_table(headers, rows))
        print(render_tails({spec.name: summary.tails}))

    failed = False
    unowned = report.get("unowned_partitions") or []
    if unowned:
        print(f"UNOWNED PARTITIONS: {unowned}", file=sys.stderr)
        failed = True
    in_flight = report.get("in_flight_migrations", 0)
    if in_flight:
        print(f"UNRESOLVED MIGRATIONS: {in_flight}", file=sys.stderr)
        failed = True
    if summary.invariant_violations:
        print(f"INVARIANT VIOLATIONS: {len(summary.invariant_violations)}",
              file=sys.stderr)
        for v in summary.invariant_violations[:10]:
            print(f"  [{v['time']:.1f}s] {v['invariant']}: {v['message']}",
                  file=sys.stderr)
        failed = True
    if failed:
        return 1
    if not args.json:
        print("cluster audit: PASS (single owner per partition, no lost "
              "state, all migrations resolved)")
    return 0


def _soak_command(args) -> int:
    """Run the chaos-soak campaign; print verdicts; exit 1 on failure."""
    from ..errors import ConfigurationError
    from ..resilience.soak import run_soak

    try:
        with _cache_override(args.no_cache):
            report = run_soak(
                kind=args.kind,
                seeds=tuple(args.seeds),
                duration_s=args.duration,
                warmup_s=args.warmup,
                faults=args.faults,
                random_faults=args.random,
                cluster=args.cluster,
                recovery_budget_s=args.budget,
                recovery_ratio=args.ratio,
                queue_limit_messages=args.queue_limit,
                jobs=args.jobs,
            )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2, default=str)
        print()
        return 0 if report.ok else 1

    plan_name = "random per seed" if args.random else args.faults
    print(f"== chaos soak: {args.kind}, plan {plan_name!r}, "
          f"{len(args.seeds)} seed(s), {args.duration:.0f}s each ==")
    for run in report.runs:
        verdict = "PASS" if run["ok"] else "FAIL"
        scenario_note = (
            f" scenario {run['scenario']}" if run.get("scenario") else ""
        )
        print(f"\nseed {run['seed']}{scenario_note} [{verdict}]  "
              f"baseline p99.9 {run['baseline_p999_s']:.3f}s  "
              f"trips {run['trips']}  shed {run['shed_messages']:.0f} msg  "
              f"watchdog restarts {run['watchdog_restarts']}  "
              f"violations {run['invariant_violations']}")
        if run["windows"]:
            headers = ["fault window", "start [s]", "end [s]",
                       "recovered [s]", "deadline [s]"]
            rows = [
                [w["label"], f"{w['start']:.1f}", f"{w['end']:.1f}",
                 "-" if w["recovered_at"] is None
                 else f"{w['recovered_at']:.1f}",
                 f"{w['budget_until']:.1f}"]
                for w in run["windows"]
            ]
            print(render_table(headers, rows))
        for failure in run["failures"]:
            print(f"  FAIL: {failure}")
    print()
    if report.ok:
        print("soak: PASS (all windows recovered, zero invariant "
              "violations, queues bounded)")
        return 0
    print(f"soak: FAIL ({len(report.failures)} failure(s))")
    return 1


def _lint_command(args) -> int:
    """Lint the given paths (default: this installed package)."""
    from pathlib import Path

    from ..errors import ConfigurationError
    from ..sanitize import (
        findings_json,
        findings_sarif,
        lint_paths,
        render_findings,
    )

    fmt = args.format or ("json" if args.json else "text")
    paths = [Path(p) for p in args.paths]
    if not paths:
        paths = [Path(__file__).resolve().parents[1]]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(paths, rules=args.rules)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if fmt == "json":
        json.dump(findings_json(findings), sys.stdout, indent=2)
        print()
    elif fmt == "sarif":
        json.dump(findings_sarif(findings), sys.stdout, indent=2)
        print()
    else:
        print(render_findings(findings))
    return 1 if findings else 0


def _sync_command(args) -> int:
    """Run the hidden-synchronization audit; print the report."""
    from pathlib import Path

    from ..errors import AnalysisError, ConfigurationError
    from ..sanitize import analyze_sync

    if args.static_only and args.dynamic_only:
        print("error: --static-only and --dynamic-only are mutually "
              "exclusive", file=sys.stderr)
        return 2
    events = None
    scenario = None if args.static_only else args.scenario
    if args.trace_file is not None:
        from ..trace import read_jsonl

        try:
            events = read_jsonl(args.trace_file)
        except OSError as exc:
            print(f"error: cannot read trace: {exc}", file=sys.stderr)
            return 2
    paths = [Path(p) for p in args.paths] or None
    try:
        with _cache_override(args.no_cache):
            report = analyze_sync(
                scenario=scenario,
                duration_s=args.duration,
                warmup_s=args.warmup,
                seed=args.seed,
                paths=paths,
                events=events,
                static=not args.dynamic_only,
            )
    except (AnalysisError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2)
        print()
    else:
        print(report.render())
    return 0 if report.ok else 1


def _profile_command(args) -> int:
    """Profile the experiment's exemplar run; print the report."""
    from ..errors import ConfigurationError
    from .profile import profile_run

    overrides = dict(EXEMPLARS.get(args.experiment, {}))
    kind = overrides.pop("kind", "traffic")
    try:
        report = profile_run(
            kind=kind,
            duration_s=args.duration,
            seed=args.seed,
            interval_s=overrides.get("interval_s", 8.0),
            storage=overrides.get("storage", "tmpfs"),
            initial_l0=overrides.get("initial_l0", "aligned"),
            mitigation=overrides.get("mitigation"),
            label=f"profile:{args.experiment}",
            with_cprofile=not args.no_cprofile,
            shards=args.shards,
            top=max(args.top, 50),
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2)
        print()
    else:
        print(report.render(top=args.top))
    return 0


def _tune_command(args) -> int:
    """Joint mitigation-space search; writes the artifact on request."""
    from ..core.autotuner import tune

    policies = (
        [p.strip() for p in args.policies.split(",") if p.strip()]
        if args.policies
        else None
    )
    try:
        with _cache_override(args.no_cache):
            report = tune(
                scenario=args.scenario,
                duration_s=args.duration,
                warmup_s=args.warmup,
                seed=args.seed,
                policies=policies,
                smoke=args.smoke,
                jobs=args.jobs,
                shards=args.shards,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.best.to_dict(), handle, indent=2)
            handle.write("\n")
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2, default=str)
        print()
    else:
        print(report.render())
        if args.out:
            print(f"tuned-config artifact written to {args.out}")
    if os.environ.get("REPRO_PERF_GATE") == "1":
        # CI regression gate: the tuned winner must beat the paper plan.
        if report.best.p999 >= report.best.paper_p999:
            print(
                f"perf gate: tuned p99.9 {report.best.p999 * 1e3:.2f} ms did "
                f"not beat paper {report.best.paper_p999 * 1e3:.2f} ms",
                file=sys.stderr,
            )
            return 1
    return 0


def _sanitize_command(args) -> int:
    """Run the runtime sanitizers on one benchmark; exit 1 on FAIL."""
    from ..sanitize import sanitize_experiment

    report = sanitize_experiment(
        kind=args.kind,
        duration_s=args.duration,
        window_s=args.window,
        seed=args.seed,
        interval_s=args.interval,
        storage=args.storage,
        perturbations=args.perturbations,
        shards=args.shards,
    )
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2, default=str)
        print()
    else:
        print(report.render())
    return 0 if report.ok else 1


class _cache_override:
    """Temporarily force ``REPRO_CACHE=off`` for ``--no-cache`` runs."""

    def __init__(self, disable: bool) -> None:
        self.disable = disable
        self._saved: Optional[str] = None

    def __enter__(self) -> _cache_override:
        if self.disable:
            self._saved = os.environ.get(CACHE_ENV)
            os.environ[CACHE_ENV] = "off"
        return self

    def __exit__(self, *exc) -> None:
        if self.disable:
            if self._saved is None:
                os.environ.pop(CACHE_ENV, None)
            else:
                os.environ[CACHE_ENV] = self._saved


class _shard_override:
    """Temporarily set ``REPRO_SHARDS`` for ``--shards G`` runs.

    Every experiment executes its runs through
    :func:`~repro.experiments.parallel.run_grid`, which reads the env
    var — so sharding applies uniformly without threading a parameter
    through each figure function.
    """

    def __init__(self, shards: Optional[int]) -> None:
        self.shards = shards
        self._saved: Optional[str] = None

    def __enter__(self) -> "_shard_override":
        if self.shards is not None:
            self._saved = os.environ.get(SHARDS_ENV)
            os.environ[SHARDS_ENV] = str(self.shards)
        return self

    def __exit__(self, *exc) -> None:
        if self.shards is not None:
            if self._saved is None:
                os.environ.pop(SHARDS_ENV, None)
            else:
                os.environ[SHARDS_ENV] = self._saved


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {doc}")
        return 0

    if args.command == "cache":
        root = cache_dir()
        if args.action == "clear":
            removed = clear_cache()
            print(f"removed {removed} cached run(s) from {root}")
        else:
            entries = sorted(root.glob("*.json")) if root.is_dir() else []
            total = sum(entry.stat().st_size for entry in entries)
            print(f"cache directory: {root}")
            print(f"entries: {len(entries)}  ({total / 1e6:.1f} MB)")
        return 0

    if args.command == "compare":
        from ..core.mitigation import MitigationPlan

        settings = ExperimentSettings(
            duration_s=args.duration, warmup_s=args.warmup, seed=args.seed
        )
        specs = [
            RunSpec(settings=settings, mitigation=plan, label=name)
            for name, plan in (("baseline", None),
                               ("solution", MitigationPlan.paper_solution()))
        ]
        with _cache_override(args.no_cache):
            summaries = run_grid(specs, jobs=args.jobs)
        tails = {s.label: s.tails for s in summaries}
        print(render_tails(tails))
        ratio = tails["solution"]["p999"] / tails["baseline"]["p999"]
        print(f"p99.9 reduced to {ratio:.0%} of baseline")
        return 0

    if args.command == "scenarios":
        return _scenarios_command(args)

    if args.command == "trace":
        return _trace_command(args)

    if args.command == "soak":
        return _soak_command(args)

    if args.command == "cluster":
        return _cluster_command(args)

    if args.command == "lint":
        return _lint_command(args)
    if args.command == "sync":
        return _sync_command(args)

    if args.command == "profile":
        return _profile_command(args)

    if args.command == "sanitize":
        return _sanitize_command(args)

    if args.command == "tune":
        return _tune_command(args)

    if args.command == "run":
        if args.scenario is not None and args.experiment is not None:
            print("error: give either an experiment or --scenario, not both",
                  file=sys.stderr)
            return 2
        if args.scenario is not None:
            return _run_scenario_command(args)
        if args.experiment is None:
            print("error: 'repro run' needs an experiment name or "
                  "--scenario NAME", file=sys.stderr)
            return 2
        if getattr(args, "faults", None):
            return _faults_command(args)

    settings = ExperimentSettings(
        duration_s=args.duration, warmup_s=args.warmup, seed=args.seed,
        trace=args.trace,
    )
    experiment = EXPERIMENTS[args.experiment]
    kwargs = {"settings": settings}
    if "jobs" in inspect.signature(experiment).parameters:
        kwargs["jobs"] = args.jobs
    with _cache_override(args.no_cache), _shard_override(
        getattr(args, "shards", None)
    ):
        out = experiment(**kwargs)
    if args.json:
        json.dump(out, sys.stdout, indent=2, default=str)
        print()
    else:
        print(_summarize(args.experiment, out))
    return 0
