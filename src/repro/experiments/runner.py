"""Standard experiment runs.

Every figure/table benchmark goes through these helpers so that the
durations, warmup and seeds are uniform and the EXPERIMENTS.md numbers
are regenerable with one call each.

:func:`run_traffic` and :func:`run_wordcount` are **deprecated** thin
wrappers now: each builds the equivalent
:class:`~repro.scenarios.spec.ScenarioSpec` and delegates to
:func:`repro.scenarios.run.run_scenario`, the one canonical entry
point.  They emit :class:`DeprecationWarning` and will be removed a
release after every caller migrates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Union

from ..compat import deprecated, keyword_only
from ..core.mitigation import MitigationPlan
from ..serialize import register
from ..storage.backend import StorageProfile, TMPFS
from ..stream.engine import StreamJobResult
from ..trace import Tracer

__all__ = ["ExperimentSettings", "run_traffic", "run_wordcount"]


@register
@keyword_only
@dataclass(frozen=True)
class ExperimentSettings:
    """Run length and measurement conventions shared by experiments."""

    duration_s: float = 200.0
    warmup_s: float = 40.0
    seed: int = 1
    #: Window for pXX timelines (the paper uses 50 ms for fine-grained
    #: analysis; 500 ms for the long timelines to keep plots readable).
    fine_window_s: float = 0.05
    coarse_window_s: float = 0.5
    #: Record a structured trace of the run (spans/instants/counters);
    #: the events travel on the RunSummary through the executor cache.
    trace: bool = False

    @property
    def measure_span(self):
        return self.warmup_s, self.duration_s

    def with_seed(self, seed: int) -> ExperimentSettings:
        """A copy running under a different seed (multi-seed sweeps)."""
        return replace(self, seed=seed)

    def seed_series(self, count: int, first: Optional[int] = None) -> List[ExperimentSettings]:
        """*count* consecutive-seed copies, for statistical sweeps."""
        base = self.seed if first is None else first
        return [self.with_seed(base + i) for i in range(count)]

    def to_dict(self) -> dict:
        """Plain-data form (cache keys, logs)."""
        return asdict(self)

    #: Deprecated alias of :meth:`to_dict`.
    as_dict = to_dict

    @classmethod
    def from_dict(cls, data: dict) -> ExperimentSettings:
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})

    def make_tracer(self) -> Optional[Tracer]:
        """A fresh :class:`Tracer` when tracing is on, else ``None``."""
        return Tracer() if self.trace else None


DEFAULT_SETTINGS = ExperimentSettings()


def legacy_scenario(
    kind: str,
    mitigation: Optional[MitigationPlan] = None,
    interval_s: float = 8.0,
    initial_l0: Union[str, Dict[str, int]] = "aligned",
    storage: str = "tmpfs",
    faults=None,
    resilience=None,
):
    """The :class:`ScenarioSpec` equivalent of one legacy keyword call.

    Shared by the deprecated wrappers below and the parallel executor's
    legacy ``traffic``/``wordcount`` run kinds (which stay warning-free:
    their cache keys and behavior are unchanged, only the execution path
    is unified).
    """
    from ..scenarios.spec import ScenarioSpec, WorkloadSpec

    rate = 60000.0 if kind == "traffic" else 25000.0
    return ScenarioSpec(
        name=f"adhoc_{kind}",
        app=kind,
        workload=WorkloadSpec(arrival="constant", rate=rate),
        interval_s=interval_s,
        initial_l0=initial_l0,
        storage=storage,
        mitigation=mitigation,
        faults=faults,
        resilience=resilience,
    )


@deprecated("build a ScenarioSpec and call repro.api.run_scenario")
def run_traffic(
    mitigation: Optional[MitigationPlan] = None,
    checkpoint_interval_s: float = 8.0,
    initial_l0: Union[str, Dict[str, int]] = "aligned",
    storage: StorageProfile = TMPFS,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    tracer: Optional[Tracer] = None,
    faults=None,
    resilience=None,
    tie_break: str = "fifo",
    scale: int = 1,
    barrier_s: Optional[float] = None,
) -> StreamJobResult:
    """Run the traffic-jam benchmark with standard settings.

    .. deprecated::
        Build a :class:`ScenarioSpec` (or pick a library scenario) and
        call :func:`repro.api.run_scenario` instead.

    ``scale``/``barrier_s`` are the sharded-execution knobs (see
    :mod:`repro.experiments.shard`): a 1/scale slice of the deployment,
    advanced in lock-step epochs of ``barrier_s`` simulated seconds.
    """
    from ..scenarios.run import execute_scenario

    return execute_scenario(
        legacy_scenario(
            "traffic",
            mitigation=mitigation,
            interval_s=checkpoint_interval_s,
            initial_l0=initial_l0,
            storage=storage.name,
            faults=faults,
            resilience=resilience,
        ),
        settings=settings,
        tracer=tracer,
        tie_break=tie_break,
        scale=scale,
        barrier_s=barrier_s,
    )


@deprecated("build a ScenarioSpec and call repro.api.run_scenario")
def run_wordcount(
    mitigation: Optional[MitigationPlan] = None,
    commit_interval_s: float = 8.0,
    storage: StorageProfile = TMPFS,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    tracer: Optional[Tracer] = None,
    faults=None,
    resilience=None,
    tie_break: str = "fifo",
    scale: int = 1,
    barrier_s: Optional[float] = None,
) -> StreamJobResult:
    """Run the WordCount benchmark with standard settings.

    .. deprecated::
        Build a :class:`ScenarioSpec` (or pick a library scenario) and
        call :func:`repro.api.run_scenario` instead.

    ``scale``/``barrier_s`` as in :func:`run_traffic`.
    """
    from ..scenarios.run import execute_scenario

    return execute_scenario(
        legacy_scenario(
            "wordcount",
            mitigation=mitigation,
            interval_s=commit_interval_s,
            storage=storage.name,
            faults=faults,
            resilience=resilience,
        ),
        settings=settings,
        tracer=tracer,
        tie_break=tie_break,
        scale=scale,
        barrier_s=barrier_s,
    )
