"""Standard experiment runs.

Every figure/table benchmark goes through these helpers so that the
durations, warmup and seeds are uniform and the EXPERIMENTS.md numbers
are regenerable with one call each.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Union

from ..apps.traffic_job import build_traffic_job
from ..apps.wordcount_job import build_wordcount_job
from ..compat import keyword_only
from ..core.mitigation import MitigationPlan
from ..serialize import register
from ..storage.backend import StorageProfile, TMPFS
from ..stream.engine import StreamJobResult
from ..trace import Tracer

__all__ = ["ExperimentSettings", "run_traffic", "run_wordcount"]


@register
@keyword_only
@dataclass(frozen=True)
class ExperimentSettings:
    """Run length and measurement conventions shared by experiments."""

    duration_s: float = 200.0
    warmup_s: float = 40.0
    seed: int = 1
    #: Window for pXX timelines (the paper uses 50 ms for fine-grained
    #: analysis; 500 ms for the long timelines to keep plots readable).
    fine_window_s: float = 0.05
    coarse_window_s: float = 0.5
    #: Record a structured trace of the run (spans/instants/counters);
    #: the events travel on the RunSummary through the executor cache.
    trace: bool = False

    @property
    def measure_span(self):
        return self.warmup_s, self.duration_s

    def with_seed(self, seed: int) -> ExperimentSettings:
        """A copy running under a different seed (multi-seed sweeps)."""
        return replace(self, seed=seed)

    def seed_series(self, count: int, first: Optional[int] = None) -> List[ExperimentSettings]:
        """*count* consecutive-seed copies, for statistical sweeps."""
        base = self.seed if first is None else first
        return [self.with_seed(base + i) for i in range(count)]

    def to_dict(self) -> dict:
        """Plain-data form (cache keys, logs)."""
        return asdict(self)

    #: Deprecated alias of :meth:`to_dict`.
    as_dict = to_dict

    @classmethod
    def from_dict(cls, data: dict) -> ExperimentSettings:
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})

    def make_tracer(self) -> Optional[Tracer]:
        """A fresh :class:`Tracer` when tracing is on, else ``None``."""
        return Tracer() if self.trace else None


DEFAULT_SETTINGS = ExperimentSettings()


def run_traffic(
    mitigation: Optional[MitigationPlan] = None,
    checkpoint_interval_s: float = 8.0,
    initial_l0: Union[str, Dict[str, int]] = "aligned",
    storage: StorageProfile = TMPFS,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    tracer: Optional[Tracer] = None,
    faults=None,
    resilience=None,
    tie_break: str = "fifo",
    scale: int = 1,
    barrier_s: Optional[float] = None,
) -> StreamJobResult:
    """Run the traffic-jam benchmark with standard settings.

    ``scale``/``barrier_s`` are the sharded-execution knobs (see
    :mod:`repro.experiments.shard`): a 1/scale slice of the deployment,
    advanced in lock-step epochs of ``barrier_s`` simulated seconds.
    """
    job = build_traffic_job(
        checkpoint_interval_s=checkpoint_interval_s,
        mitigation=mitigation,
        storage=storage,
        initial_l0=initial_l0,
        seed=settings.seed,
        tracer=tracer if tracer is not None else settings.make_tracer(),
        tie_break=tie_break,
        scale=scale,
    )
    if faults is not None:
        from ..faults import inject_faults

        inject_faults(job, faults)
    if resilience is not None:
        from ..resilience import install_resilience

        install_resilience(job, resilience)
    return job.run(settings.duration_s, barrier_s=barrier_s)


def run_wordcount(
    mitigation: Optional[MitigationPlan] = None,
    commit_interval_s: float = 8.0,
    storage: StorageProfile = TMPFS,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    tracer: Optional[Tracer] = None,
    faults=None,
    resilience=None,
    tie_break: str = "fifo",
    scale: int = 1,
    barrier_s: Optional[float] = None,
) -> StreamJobResult:
    """Run the WordCount benchmark with standard settings.

    ``scale``/``barrier_s`` as in :func:`run_traffic`.
    """
    job = build_wordcount_job(
        commit_interval_s=commit_interval_s,
        mitigation=mitigation,
        storage=storage,
        seed=settings.seed,
        tracer=tracer if tracer is not None else settings.make_tracer(),
        tie_break=tie_break,
        scale=scale,
    )
    if faults is not None:
        from ..faults import inject_faults

        inject_faults(job, faults)
    if resilience is not None:
        from ..resilience import install_resilience

        install_resilience(job, resilience)
    return job.run(settings.duration_s, barrier_s=barrier_s)
