"""The determinism-lint rule registry.

Every rule targets one way wall-clock time, hash order or hidden global
state can leak into the simulation and silently break the properties the
rest of the tooling depends on: the content-addressed result cache
(byte-identical reruns), soak audits and seed-driven fault shrinking.

A rule is a small AST predicate packaged with an ID, a one-line summary
and a fix hint.  Rules are registered in :data:`RULES` via the
:func:`rule` decorator and run by :mod:`repro.sanitize.lint`, which also
handles ``# repro: allow[RULE]`` inline suppressions.

The built-in rules:

``DS101 wall-clock``
    Wall-clock reads (``time.time``, ``time.monotonic``,
    ``perf_counter``, ``datetime.now`` ...).  Simulation code must use
    ``sim.now``; only the benchmark harness (``benchmarks/``, outside
    the linted tree) may time real execution.
``DS102 unseeded-rng``
    Module-level ``random`` / ``numpy.random`` draws and unseeded RNG
    construction.  All randomness must route through
    :class:`repro.sim.rng.RngRegistry` or an explicitly seeded
    ``random.Random(seed)``.
``DS103 unordered-iter``
    Iteration over sets or filesystem listings, whose order is hash- or
    OS-dependent and can reach sim state or serialized output.
``DS104 mutable-default``
    Mutable default argument values, shared across calls.
``DS105 module-singleton``
    Module-level mutable objects bound to non-constant names — state
    shared across every instance and across tests in one process.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["Rule", "RuleContext", "RULES", "rule", "qualified_name"]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    name: str
    summary: str
    hint: str
    check: Callable[["RuleContext"], Iterator[Tuple[ast.AST, str]]]

    def matches(self, label: str) -> bool:
        """Whether *label* (from an allow-comment) names this rule."""
        return label.lower() in (self.id.lower(), self.name.lower())


#: Registry of every known rule, keyed by rule ID.
RULES: Dict[str, Rule] = {}


def rule(id: str, name: str, summary: str, hint: str):
    """Register the decorated check function as a lint rule."""

    def decorate(check):
        RULES[id] = Rule(id=id, name=name, summary=summary, hint=hint, check=check)
        return check

    return decorate


class RuleContext:
    """Per-file state shared by every rule: the tree plus import aliases.

    *project* is the shared :class:`~repro.sanitize.syncgraph.callgraph.
    ProjectGraph` when linting a whole tree; the project-aware DS2xx
    rules build a single-file graph on demand when it is ``None``.
    """

    def __init__(
        self, path: str, tree: ast.Module, source: str, project=None
    ) -> None:
        self.path = path
        self.tree = tree
        self.source = source
        self.project = project
        #: Local name -> dotted origin ("np" -> "numpy",
        #: "perf_counter" -> "time.perf_counter").
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    target = item.name if item.asname else item.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for item in node.names:
                    if item.name == "*":
                        continue
                    local = item.asname or item.name
                    self.aliases[local] = f"{node.module}.{item.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, or ``None``."""
        return qualified_name(node, self.aliases)


def qualified_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve ``np.random.rand`` -> ``numpy.random.rand`` style names."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# DS101: wall-clock time
# ----------------------------------------------------------------------

#: Real-time sources that leak host timing into results.
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


@rule(
    "DS101",
    "wall-clock",
    "wall-clock time read in simulation code",
    "use the simulator clock (sim.now); real timing belongs to the "
    "benchmark harness only",
)
def check_wall_clock(ctx: RuleContext) -> Iterator[Tuple[ast.AST, str]]:
    seen = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        resolved = ctx.resolve(node)
        if resolved in WALL_CLOCK_CALLS:
            key = (node.lineno, node.col_offset)
            if key in seen:
                continue
            seen.add(key)
            yield node, f"call to {resolved}()"


# ----------------------------------------------------------------------
# DS102: unseeded randomness
# ----------------------------------------------------------------------

#: ``random`` attributes that are *not* draws from the shared module RNG.
_RANDOM_SAFE = frozenset({
    "random.Random",
    # Type-only / introspection names, not draws.
    "random.Random.getstate",
})

#: numpy.random constructors that are fine *when given a seed*.
_NP_SEEDED_CTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
})


@rule(
    "DS102",
    "unseeded-rng",
    "unseeded or module-level RNG use",
    "route randomness through sim.rng (RngRegistry) or an explicitly "
    "seeded random.Random(seed)",
)
def check_unseeded_rng(ctx: RuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(node.func)
        if resolved is None:
            continue
        if resolved == "random.Random":
            if not node.args and not node.keywords:
                yield node, "random.Random() constructed without a seed"
            continue
        if resolved == "random.SystemRandom":
            yield node, "random.SystemRandom is nondeterministic by design"
            continue
        if resolved.startswith("random.") and resolved not in _RANDOM_SAFE:
            yield node, (
                f"{resolved}() draws from the shared module-level RNG"
            )
            continue
        if resolved.startswith("numpy.random."):
            if resolved in _NP_SEEDED_CTORS:
                if not node.args and not node.keywords:
                    yield node, f"{resolved}() constructed without a seed"
            else:
                yield node, (
                    f"{resolved}() uses numpy's global RNG state"
                )


# ----------------------------------------------------------------------
# DS103: unordered iteration
# ----------------------------------------------------------------------

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_FS_ENUMERATORS = frozenset({
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
})
_FS_METHODS = frozenset({"iterdir", "glob", "rglob"})


def _unordered_reason(node: ast.AST, ctx: RuleContext) -> Optional[str]:
    """Why iterating *node* is hash-/OS-order dependent, or ``None``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(node, ast.Call):
        resolved = ctx.resolve(node.func)
        if resolved in _SET_CONSTRUCTORS:
            return f"{resolved}(...)"
        if resolved in _FS_ENUMERATORS:
            return f"{resolved}(...) (filesystem order)"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_METHODS
        ):
            return f".{node.func.attr}(...) (filesystem order)"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        left = _unordered_reason(node.left, ctx)
        right = _unordered_reason(node.right, ctx)
        if left or right:
            return "a set expression"
    return None


@rule(
    "DS103",
    "unordered-iter",
    "iteration over an unordered collection",
    "wrap the iterable in sorted(...) so the visit order is stable",
)
def check_unordered_iter(ctx: RuleContext) -> Iterator[Tuple[ast.AST, str]]:
    iterables: List[ast.AST] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved in ("list", "tuple", "enumerate") and node.args:
                iterables.append(node.args[0])
    for target in iterables:
        reason = _unordered_reason(target, ctx)
        if reason is not None:
            yield target, f"iterating {reason}; order is not deterministic"


# ----------------------------------------------------------------------
# DS104: mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_CONSTRUCTORS = frozenset({
    "list",
    "dict",
    "set",
    "bytearray",
    "collections.defaultdict",
    "collections.deque",
    "collections.OrderedDict",
    "collections.Counter",
})


def _is_mutable_value(node: ast.AST, ctx: RuleContext) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = ctx.resolve(node.func)
        return resolved in _MUTABLE_CONSTRUCTORS
    return False


@rule(
    "DS104",
    "mutable-default",
    "mutable default argument",
    "default to None and build the object inside the function body",
)
def check_mutable_default(ctx: RuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_value(default, ctx):
                name = getattr(node, "name", "<lambda>")
                yield default, (
                    f"default of {name}() is mutable and shared across calls"
                )


# ----------------------------------------------------------------------
# DS105: module-level mutable singletons
# ----------------------------------------------------------------------


def _module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module-body statements, descending into top-level if/try blocks."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, ast.If):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)
        else:
            yield stmt


def _is_constant_name(name: str) -> bool:
    """ALL_CAPS names and dunders are declared constants by convention."""
    if name.startswith("__") and name.endswith("__"):
        return True
    return name.isupper()


@rule(
    "DS105",
    "module-singleton",
    "module-level mutable singleton",
    "move the object into an instance, or rename it ALL_CAPS and treat "
    "it as an append-only registry",
)
def check_module_singleton(ctx: RuleContext) -> Iterator[Tuple[ast.AST, str]]:
    for stmt in _module_level_statements(ctx.tree):
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target] if isinstance(stmt.target, ast.Name) else []
            value = stmt.value
        else:
            continue
        if not _is_mutable_value(value, ctx):
            continue
        for target in targets:
            if not _is_constant_name(target.id):
                yield stmt, (
                    f"module-level mutable {target.id!r} is shared by "
                    "every instance in the process"
                )
