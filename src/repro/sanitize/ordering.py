"""Schedule-order sanitizer for serialization and cache keys.

The content-addressed result cache substitutes a stored
:class:`~repro.experiments.summary.RunSummary` for a live run, which is
only sound if (a) a spec's cache key never depends on the order dict
keys happened to be inserted, and (b) a summary's serialized form
round-trips independent of that order.  Both properties are easy to
break silently — one ``json.dumps`` without ``sort_keys``, one dict
rebuilt in a different order — so this module checks them dynamically
by *perturbing* insertion order with seeded shuffles and re-deriving the
key/serialization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List

from ..serialize import canonical_json, register

__all__ = [
    "OrderingCheck",
    "OrderingReport",
    "reorder",
    "check_cache_key_stability",
    "check_summary_order_independence",
    "check_ordering",
]


@register
@dataclass
class OrderingCheck:
    """One verified property (or its counterexample)."""

    name: str = ""
    ok: bool = True
    perturbations: int = 0
    detail: str = ""

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


@register
@dataclass
class OrderingReport:
    """Outcome of the ordering checks on one spec/summary pair."""

    checks: List[OrderingCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def to_dict(self) -> dict:
        return {"ok": self.ok, "checks": [c.to_dict() for c in self.checks]}

    @classmethod
    def from_dict(cls, data: dict) -> OrderingReport:
        return cls(checks=[OrderingCheck(**c) for c in data.get("checks", ())])

    def render(self) -> str:
        lines = []
        for check in self.checks:
            verdict = "ok" if check.ok else "FAIL"
            line = (
                f"ordering sanitizer: {check.name} [{verdict}] "
                f"({check.perturbations} perturbation(s))"
            )
            if check.detail:
                line += f"\n    {check.detail}"
            lines.append(line)
        return "\n".join(lines)


def reorder(data: Any, rng: random.Random) -> Any:
    """A deep copy of *data* with every dict rebuilt in shuffled
    insertion order (values recursed; lists keep their order — list
    order is semantic)."""
    if isinstance(data, dict):
        keys = list(data)
        rng.shuffle(keys)
        return {key: reorder(data[key], rng) for key in keys}
    if isinstance(data, list):
        return [reorder(item, rng) for item in data]
    if isinstance(data, tuple):
        return tuple(reorder(item, rng) for item in data)
    return data


def check_cache_key_stability(spec, perturbations: int = 8) -> OrderingCheck:
    """Cache keys must survive dict-insertion-order perturbation."""
    from ..experiments.parallel import cache_key_from_dict, spec_cache_key

    base = spec_cache_key(spec)
    for index in range(perturbations):
        shuffled = reorder(spec.key_dict(), random.Random(index))
        key = cache_key_from_dict(shuffled)
        if key != base:
            return OrderingCheck(
                name="cache-key-stability",
                ok=False,
                perturbations=index + 1,
                detail=(
                    f"perturbation {index} changed the cache key: "
                    f"{base[:16]}... -> {key[:16]}...; a non-canonical "
                    "serialization leaked into spec_cache_key"
                ),
            )
    return OrderingCheck(
        name="cache-key-stability", ok=True, perturbations=perturbations
    )


def check_summary_order_independence(summary, perturbations: int = 8) -> OrderingCheck:
    """``RunSummary`` (de)serialization must be insertion-order-free."""
    base = canonical_json(summary.to_dict())
    cls = type(summary)
    for index in range(perturbations):
        shuffled = reorder(summary.to_dict(), random.Random(index))
        revived = cls.from_dict(shuffled)
        serialized = canonical_json(revived.to_dict())
        if serialized != base:
            return OrderingCheck(
                name="summary-order-independence",
                ok=False,
                perturbations=index + 1,
                detail=(
                    f"perturbation {index} did not round-trip: "
                    "RunSummary serialization depends on dict insertion "
                    "order"
                ),
            )
    return OrderingCheck(
        name="summary-order-independence", ok=True, perturbations=perturbations
    )


def check_ordering(spec, summary, perturbations: int = 8) -> OrderingReport:
    """Run both checks for one executed ``(spec, summary)`` pair."""
    report = OrderingReport()
    report.checks.append(check_cache_key_stability(spec, perturbations))
    report.checks.append(
        check_summary_order_independence(summary, perturbations)
    )
    return report
