"""The static determinism lint: run the rule registry over sources.

Entry points:

* :func:`lint_paths` — lint files/directories, return :class:`Finding`
  records sorted by location;
* :func:`render_findings` — ``file:line:col`` terminal diagnostics;
* :func:`findings_json` — the machine-readable report.

Suppression: a finding is dropped when its physical line (or the line
immediately above, for statement-level suppression) carries an inline
comment of the form ::

    x = build_registry()  # repro: allow[DS105] registry is append-only

naming the rule by ID (``DS105``) or slug (``module-singleton``);
``allow[*]`` suppresses every rule on that line.  The comment text after
the bracket should state the constraint that justifies the exception.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from .rules import RULES, Rule, RuleContext

__all__ = [
    "Finding",
    "lint_paths",
    "lint_file",
    "lint_source",
    "render_findings",
    "findings_json",
]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str
    hint: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return (
            f"{self.location}: {self.rule_id}[{self.rule_name}] "
            f"{self.message}\n    hint: {self.hint}"
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "message": self.message,
            "hint": self.hint,
        }


def _allowed_rules(source: str) -> Dict[int, Set[str]]:
    """``line -> {labels}`` map of inline allow-comments (1-based)."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        labels = {
            label.strip().lower()
            for label in match.group(1).split(",")
            if label.strip()
        }
        allowed[lineno] = labels
    return allowed


def _is_suppressed(
    finding_line: int, rule: Rule, allowed: Dict[int, Set[str]]
) -> bool:
    for lineno in (finding_line, finding_line - 1):
        labels = allowed.get(lineno)
        if not labels:
            continue
        if "*" in labels or any(rule.matches(label) for label in labels):
            return True
    return False


def _select_rules(rules: Optional[Iterable[str]]) -> List[Rule]:
    if rules is None:
        return [RULES[rule_id] for rule_id in sorted(RULES)]
    selected = []
    for label in rules:
        matches = [r for r in RULES.values() if r.matches(label)]
        if not matches:
            raise KeyError(f"unknown lint rule {label!r}")
        selected.extend(matches)
    return selected


def lint_source(
    source: str, path: str = "<string>", rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint one source string; *path* labels the diagnostics."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id="DS000",
                rule_name="syntax-error",
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; nothing else was checked",
            )
        ]
    ctx = RuleContext(path, tree, source)
    allowed = _allowed_rules(source)
    findings: List[Finding] = []
    for rule in _select_rules(rules):
        for node, message in rule.check(ctx):
            line = getattr(node, "lineno", 1)
            if _is_suppressed(line, rule, allowed):
                continue
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=getattr(node, "col_offset", 0),
                    rule_id=rule.id,
                    rule_name=rule.name,
                    message=message,
                    hint=rule.hint,
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_file(path: Union[str, Path], rules: Optional[Iterable[str]] = None) -> List[Finding]:
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), rules=rules)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        elif entry.suffix == ".py":
            files.append(entry)
        else:
            raise FileNotFoundError(f"not a python file or directory: {entry}")
    return files


def lint_paths(
    paths: Sequence[Union[str, Path]], rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under *paths* (files or directories)."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules=rules))
    return findings


def render_findings(findings: Sequence[Finding]) -> str:
    """Terminal rendering: one diagnostic block per finding + a tally."""
    if not findings:
        return "determinism lint: clean (0 findings)"
    lines = [finding.render() for finding in findings]
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    tally = ", ".join(f"{rule_id} x{count}" for rule_id, count in sorted(by_rule.items()))
    lines.append(f"determinism lint: {len(findings)} finding(s) ({tally})")
    return "\n".join(lines)


def findings_json(findings: Sequence[Finding]) -> dict:
    """The JSON report shape (stable: consumed by CI annotations)."""
    return {
        "tool": "repro.sanitize.lint",
        "rules": {
            rule.id: {"name": rule.name, "summary": rule.summary}
            for rule in RULES.values()
        },
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
