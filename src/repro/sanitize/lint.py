"""The static determinism lint: run the rule registry over sources.

Entry points:

* :func:`lint_paths` — lint files/directories, return :class:`Finding`
  records sorted by location;
* :func:`render_findings` — ``file:line:col`` terminal diagnostics;
* :func:`findings_json` — the machine-readable report.

Suppression: a finding is dropped when its physical line (or the line
immediately above, for statement-level suppression) carries an inline
comment of the form ::

    x = build_registry()  # repro: allow[DS105] registry is append-only

naming the rule by ID (``DS105``) or slug (``module-singleton``);
``allow[*]`` suppresses every rule on that line.  The comment text after
the bracket should state the constraint that justifies the exception.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from ..errors import ConfigurationError, did_you_mean
from .rules import RULES, Rule, RuleContext

# Importing the subpackage registers the project-aware DS2xx rule
# family into RULES alongside the DS1xx determinism rules.
from . import syncgraph as _syncgraph  # noqa: E402,F401  (registration)

__all__ = [
    "Finding",
    "lint_paths",
    "lint_file",
    "lint_source",
    "render_findings",
    "findings_json",
    "findings_sarif",
]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str
    hint: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return (
            f"{self.location}: {self.rule_id}[{self.rule_name}] "
            f"{self.message}\n    hint: {self.hint}"
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "message": self.message,
            "hint": self.hint,
        }


def _allowed_rules(source: str) -> Dict[int, Set[str]]:
    """``line -> {labels}`` map of inline allow-comments (1-based)."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        labels = {
            label.strip().lower()
            for label in match.group(1).split(",")
            if label.strip()
        }
        allowed[lineno] = labels
    return allowed


def _is_suppressed(
    finding_line: int, rule: Rule, allowed: Dict[int, Set[str]]
) -> bool:
    for lineno in (finding_line, finding_line - 1):
        labels = allowed.get(lineno)
        if not labels:
            continue
        if "*" in labels or any(rule.matches(label) for label in labels):
            return True
    return False


def _select_rules(rules: Optional[Iterable[str]]) -> List[Rule]:
    """Resolve rule labels: IDs, slugs, or ``DS2xx`` family prefixes.

    Unknown labels raise :class:`ConfigurationError` with a
    did-you-mean hint instead of a bare ``KeyError``.
    """
    if rules is None:
        return [RULES[rule_id] for rule_id in sorted(RULES)]
    selected: List[Rule] = []
    chosen: Set[str] = set()
    for label in rules:
        matches = [
            RULES[rule_id] for rule_id in sorted(RULES)
            if RULES[rule_id].matches(label)
        ]
        lowered = label.strip().lower()
        if not matches and lowered.endswith("xx") and len(lowered) > 2:
            prefix = lowered[:-2]
            matches = [
                RULES[rule_id] for rule_id in sorted(RULES)
                if rule_id.lower().startswith(prefix)
            ]
        if not matches:
            options = sorted(RULES) + sorted(r.name for r in RULES.values())
            raise ConfigurationError(
                f"unknown lint rule {label!r}{did_you_mean(label, options)}; "
                f"available: {', '.join(sorted(RULES))}"
            )
        for match in matches:
            if match.id not in chosen:
                chosen.add(match.id)
                selected.append(match)
    return selected


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
    project=None,
) -> List[Finding]:
    """Lint one source string; *path* labels the diagnostics.

    *project* is the shared call graph when linting a whole tree; the
    DS2xx rules build a single-file graph when it is absent.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id="DS000",
                rule_name="syntax-error",
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; nothing else was checked",
            )
        ]
    ctx = RuleContext(path, tree, source, project=project)
    allowed = _allowed_rules(source)
    findings: List[Finding] = []
    for rule in _select_rules(rules):
        for node, message in rule.check(ctx):
            line = getattr(node, "lineno", 1)
            if _is_suppressed(line, rule, allowed):
                continue
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=getattr(node, "col_offset", 0),
                    rule_id=rule.id,
                    rule_name=rule.name,
                    message=message,
                    hint=rule.hint,
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def _unreadable_finding(path: Path, exc: Exception) -> Finding:
    """DS000-style diagnostic for a file the linter could not read."""
    return Finding(
        path=str(path),
        line=1,
        col=0,
        rule_id="DS000",
        rule_name="unreadable-file",
        message=f"file cannot be read: {exc}",
        hint="fix the encoding/permissions or exclude the file; "
             "nothing was checked",
    )


def lint_file(
    path: Union[str, Path],
    rules: Optional[Iterable[str]] = None,
    project=None,
) -> List[Finding]:
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [_unreadable_finding(path, exc)]
    return lint_source(source, path=str(path), rules=rules, project=project)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated list of
    ``.py`` files (a file reachable both directly and via a parent
    directory is linted once)."""
    files: List[Path] = []
    seen: Set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates = sorted(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            candidates = [entry]
        else:
            raise FileNotFoundError(f"not a python file or directory: {entry}")
        for path in candidates:
            key = path.resolve()
            if key in seen:
                continue
            seen.add(key)
            files.append(path)
    return files


def lint_paths(
    paths: Sequence[Union[str, Path]], rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under *paths* (files or directories).

    The whole file set is indexed into one project call graph first, so
    the project-aware DS2xx rules see cross-module call chains.
    Unreadable and non-UTF-8 files produce a ``DS000`` diagnostic
    instead of aborting the run.
    """
    from .syncgraph.callgraph import build_project

    _select_rules(rules)  # validate labels before any file IO
    findings: List[Finding] = []
    sources: List[tuple] = []
    for path in iter_python_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(_unreadable_finding(path, exc))
            continue
        sources.append((path, text))
    parsed = []
    for path, text in sources:
        try:
            parsed.append((str(path), ast.parse(text, filename=str(path))))
        except SyntaxError:
            continue  # lint_source re-parses and reports DS000
    project = build_project(parsed)
    for path, text in sources:
        findings.extend(
            lint_source(text, path=str(path), rules=rules, project=project)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def render_findings(findings: Sequence[Finding]) -> str:
    """Terminal rendering: one diagnostic block per finding + a tally."""
    if not findings:
        return "determinism lint: clean (0 findings)"
    lines = [finding.render() for finding in findings]
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    tally = ", ".join(f"{rule_id} x{count}" for rule_id, count in sorted(by_rule.items()))
    lines.append(f"determinism lint: {len(findings)} finding(s) ({tally})")
    return "\n".join(lines)


def findings_json(findings: Sequence[Finding]) -> dict:
    """The JSON report shape (stable: consumed by CI annotations)."""
    return {
        "tool": "repro.sanitize.lint",
        "rules": {
            rule.id: {"name": rule.name, "summary": rule.summary}
            for rule in RULES.values()
        },
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def findings_sarif(findings: Sequence[Finding]) -> dict:
    """SARIF 2.1.0 export (``repro lint --format sarif``).

    GitHub code scanning ingests this shape directly, so lint findings
    light up as PR annotations.
    """
    rule_ids = sorted(RULES)
    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    driver_rules = [
        {
            "id": rule_id,
            "name": RULES[rule_id].name,
            "shortDescription": {"text": RULES[rule_id].summary},
            "help": {"text": RULES[rule_id].hint},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id in rule_ids
    ]
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {
                "text": f"{finding.message} (hint: {finding.hint})"
            },
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(finding.path).as_posix()
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in index:
            result["ruleIndex"] = index[finding.rule_id]
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }
