"""Determinism sanitizers: static lint, race detection, order checks.

Three cooperating analyses guard the properties the rest of the tooling
silently depends on (byte-identical cached reruns, seed-driven fault
shrinking, soak audits):

* :mod:`repro.sanitize.lint` — an AST pass over the source tree
  forbidding wall-clock reads, unseeded randomness, unordered
  iteration, mutable defaults and module-level mutable singletons
  (``repro lint`` / :func:`repro.api.lint`);
* :mod:`repro.sanitize.racedetect` — a runtime sanitizer that runs a
  model twice with perturbed same-timestamp tie-breaking and diffs
  windowed state digests; divergence means hidden synchronization
  (``repro sanitize`` / :func:`repro.api.sanitize`);
* :mod:`repro.sanitize.ordering` — cache-key and ``RunSummary``
  insertion-order-independence checks;
* :mod:`repro.sanitize.syncgraph` — the hidden-synchronization
  analyzer: a declared sync-point catalog, project-aware DS2xx lint
  rules over the static call graph, and a trace-grounded shadow-sync
  audit (``repro sync`` / :func:`repro.api.analyze_sync`).

:func:`sanitize_experiment` bundles the runtime pair for one benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..serialize import register
from .lint import (
    Finding,
    findings_json,
    findings_sarif,
    lint_file,
    lint_paths,
    lint_source,
    render_findings,
)
from .ordering import (
    OrderingCheck,
    OrderingReport,
    check_cache_key_stability,
    check_ordering,
    check_summary_order_independence,
    reorder,
)
from .racedetect import (
    DIGEST_PRIORITY,
    ProbeTarget,
    RaceDivergence,
    RaceProbe,
    RaceReport,
    detect_races,
    diff_probes,
    digest_hash,
    experiment_factory,
    job_probe_target,
    run_probe,
    state_digest,
)
from .rules import RULES, Rule, RuleContext, rule
from .syncgraph import (
    SYNC_CATALOG,
    SyncAuditReport,
    SyncEdge,
    SyncPrimitive,
    analyze_sync,
    build_project,
    diff_against_catalog,
    extract_wait_graph,
)

__all__ = [
    # lint
    "Finding",
    "lint_paths",
    "lint_file",
    "lint_source",
    "render_findings",
    "findings_json",
    "findings_sarif",
    "RULES",
    "Rule",
    "RuleContext",
    "rule",
    # hidden-synchronization analyzer
    "SYNC_CATALOG",
    "SyncPrimitive",
    "SyncEdge",
    "SyncAuditReport",
    "analyze_sync",
    "build_project",
    "extract_wait_graph",
    "diff_against_catalog",
    # race detection
    "RaceReport",
    "RaceDivergence",
    "RaceProbe",
    "ProbeTarget",
    "DIGEST_PRIORITY",
    "detect_races",
    "run_probe",
    "diff_probes",
    "state_digest",
    "digest_hash",
    "job_probe_target",
    "experiment_factory",
    # ordering
    "OrderingCheck",
    "OrderingReport",
    "check_ordering",
    "check_cache_key_stability",
    "check_summary_order_independence",
    "reorder",
    # orchestration
    "SanitizeReport",
    "sanitize_experiment",
]


@register
@dataclass
class SanitizeReport:
    """Combined runtime-sanitizer verdict for one benchmark run."""

    kind: str = "wordcount"
    duration_s: float = 0.0
    window_s: float = 0.0
    seed: int = 1
    race: Optional[RaceReport] = None
    ordering: Optional[OrderingReport] = None

    @property
    def ok(self) -> bool:
        return (self.race is None or self.race.ok) and (
            self.ordering is None or self.ordering.ok
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "duration_s": self.duration_s,
            "window_s": self.window_s,
            "seed": self.seed,
            "ok": self.ok,
            "race": None if self.race is None else self.race.to_dict(),
            "ordering": (
                None if self.ordering is None else self.ordering.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> SanitizeReport:
        race = data.get("race")
        ordering = data.get("ordering")
        return cls(
            kind=data.get("kind", "wordcount"),
            duration_s=data.get("duration_s", 0.0),
            window_s=data.get("window_s", 0.0),
            seed=data.get("seed", 1),
            race=None if race is None else RaceReport.from_dict(race),
            ordering=(
                None if ordering is None else OrderingReport.from_dict(ordering)
            ),
        )

    def render(self) -> str:
        lines = [
            f"== sanitize: {self.kind}, {self.duration_s:g}s, "
            f"seed {self.seed} =="
        ]
        if self.race is not None:
            lines.append(self.race.render())
        if self.ordering is not None:
            lines.append(self.ordering.render())
        lines.append("sanitize: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def sanitize_experiment(
    kind: str = "wordcount",
    duration_s: float = 24.0,
    window_s: float = 2.0,
    seed: int = 1,
    interval_s: float = 8.0,
    storage: str = "tmpfs",
    mitigation=None,
    perturbations: int = 8,
    shards: int = 1,
) -> SanitizeReport:
    """Run the race detector and ordering checks on one benchmark.

    Executes the benchmark twice (FIFO vs LIFO tie-breaking) with
    windowed state digests, then checks the baseline run's summary and
    spec for insertion-order independence.  Cache-free by construction:
    both runs execute live, so a poisoned cache cannot mask a race.

    ``shards = G`` sanitizes the sharded mode: the probed job is the
    1/G cluster slice a sharded worker executes (see
    :mod:`repro.experiments.shard`), so both the perturbed-schedule
    digests and the ordering checks cover that topology.
    """
    from ..experiments.parallel import RunSpec
    from ..experiments.runner import ExperimentSettings
    from ..experiments.summary import summarize_run
    from .racedetect import experiment_factory

    factory = experiment_factory(
        kind=kind,
        seed=seed,
        interval_s=interval_s,
        storage=storage,
        mitigation=mitigation,
        shards=shards,
    )
    baseline = run_probe(factory, duration_s, window_s, "fifo")
    perturbed = run_probe(factory, duration_s, window_s, "lifo")
    label = kind if shards == 1 else f"{kind}/shards={shards}"
    race = diff_probes(
        baseline, perturbed, label=label, duration_s=duration_s
    )

    settings = ExperimentSettings(
        duration_s=duration_s, warmup_s=min(8.0, duration_s / 2), seed=seed
    )
    spec = RunSpec(kind=kind, settings=settings, interval_s=interval_s,
                   storage=storage, mitigation=mitigation)
    summary = summarize_run(
        baseline.result, settings, kind=kind, label=f"sanitize:{kind}"
    )
    ordering = check_ordering(spec, summary, perturbations=perturbations)
    return SanitizeReport(
        kind=kind,
        duration_s=duration_s,
        window_s=window_s,
        seed=seed,
        race=race,
        ordering=ordering,
    )
