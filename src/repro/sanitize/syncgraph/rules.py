"""The DS2xx hidden-synchronization lint rules.

Registered into the same :data:`repro.sanitize.rules.RULES` registry as
the DS1xx determinism rules, so suppression (``# repro: allow[DS201]``),
selection and reporting all work unchanged.  Unlike DS1xx these rules
are *project-aware*: they consult the static call graph
(:mod:`.callgraph`) and the declared sync catalog (:mod:`.catalog`).

``DS201 hidden-blocking-call``
    A call to a blocking synchronization primitive whose caller is
    reachable from the event-dispatch layer (simulator callbacks) —
    the structural shape behind ShadowSync's long tail.  The finding
    carries the full dispatch chain as evidence.  Every such call must
    either move off the dispatch path or carry an inline allow comment
    stating why the blocking is intended.
``DS202 undeclared-sync-primitive``
    A synchronization primitive (real ``threading``/``queue`` objects,
    or sync vocabulary like ``.acquire()``/``.wait()``) that is not in
    the declared catalog — an undeclared sync point.
``DS203 unowned-shared-state``
    An attribute written on a non-``self`` receiver by two or more
    different classes without a declared ownership transfer.
``DS204 gate-order-hazard``
    Two gates acquired in opposite orders by different functions — the
    classic deadlock/convoy shape, stated statically.
``DS205 unbounded-callback-put``
    An unbounded put into a shared queue from inside an event callback:
    backlog forms invisibly on the dispatch path.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from ..rules import RuleContext, rule
from .callgraph import CallSite, ProjectGraph, build_project
from .catalog import (
    DECLARED_SYNC_MODULES,
    OWNERSHIP_TRANSFERS,
    primitives_by_method,
)

__all__ = ["project_for"]

#: Modules whose objects synchronize for real (host-level, not simulated).
REAL_SYNC_MODULES = frozenset({
    "threading",
    "queue",
    "multiprocessing",
    "concurrent",
    "asyncio",
    "socket",
    "select",
    "selectors",
})

#: Method vocabulary that marks a call as a synchronization operation
#: even when the receiver's type is unknown.
SYNC_VOCAB = frozenset({
    "acquire",
    "release",
    "wait",
    "wait_for",
    "notify",
    "notify_all",
    "join",
    "barrier",
})

#: Fully-qualified calls that merely *look* like sync vocabulary.
BENIGN_SYNC_CALLS = frozenset({
    "os.path.join",
    "posixpath.join",
    "ntpath.join",
    "str.join",
    "bytes.join",
    "shlex.join",
})

#: Queue mutation vocabulary for DS205.
PUT_ATTRS = frozenset({"append", "appendleft", "put", "put_nowait", "extend"})

#: Receiver-name fragments that mark an attribute as a queue/backlog.
QUEUE_NAME_HINTS = ("queue", "pending", "backlog", "buffer", "inbox",
                    "mailbox", "jobs", "tasks")

#: Gate-acquiring vocabulary for DS204 ordering analysis.
GATE_ATTRS = frozenset({"acquire", "lock", "pause", "claim", "trigger",
                        "flush_instance"})


class _Site:
    """Positional anchor for findings derived from callgraph records."""

    __slots__ = ("lineno", "col_offset")

    def __init__(self, lineno: int, col: int) -> None:
        self.lineno = lineno
        self.col_offset = col


def project_for(ctx: RuleContext) -> ProjectGraph:
    """The project graph for *ctx*: shared when ``lint_paths`` built
    one, else a single-file graph built (and cached) on demand."""
    project = getattr(ctx, "project", None)
    if project is None:
        project = build_project([(ctx.path, ctx.tree)])
        ctx.project = project
    return project


def _file_calls(graph: ProjectGraph, path: str) -> Iterator[CallSite]:
    for caller in sorted(graph.calls):
        for site in graph.calls[caller]:
            if site.path == path:
                yield site


def _short(qualname: str) -> str:
    """Trailing ``Class.method`` (or ``module.func``) of a qualname."""
    return ".".join(qualname.split(".")[-2:])


# ----------------------------------------------------------------------
# DS201: blocking call reachable from the dispatch layer
# ----------------------------------------------------------------------


@rule(
    "DS201",
    "hidden-blocking-call",
    "blocking sync primitive reachable from an event-dispatch callback",
    "move the blocking call off the dispatch path (defer it to a pool "
    "job) or declare the edge with an allow comment stating why the "
    "block is intended",
)
def check_hidden_blocking_call(ctx: RuleContext) -> Iterator[Tuple[ast.AST, str]]:
    graph = project_for(ctx)
    blocking = {
        method: prim
        for method, prim in primitives_by_method().items()
        if prim.blocking
    }
    reachable = graph.dispatch_reachable()
    for site in _file_calls(graph, ctx.path):
        if site.literal_base or site.attr not in blocking:
            continue
        if site.caller not in reachable:
            continue
        prim = blocking[site.attr]
        chain = [_short(q) for q in graph.dispatch_chain(site.caller)]
        chain.append(f"{prim.owner}.{site.attr}")
        yield _Site(site.lineno, site.col), (
            f"blocking primitive {prim.name} ({prim.owner}.{site.attr}) "
            f"called on the dispatch path: {' -> '.join(chain)}"
        )


# ----------------------------------------------------------------------
# DS202: sync primitive not in the declared catalog
# ----------------------------------------------------------------------


@rule(
    "DS202",
    "undeclared-sync-primitive",
    "synchronization primitive not in the declared sync catalog",
    "declare it in repro.sanitize.syncgraph.catalog.SYNC_CATALOG (with "
    "owner, kind and rationale) or replace it with a cataloged "
    "primitive; host-level threading/queue objects do not exist on the "
    "simulated clock",
)
def check_undeclared_sync(ctx: RuleContext) -> Iterator[Tuple[ast.AST, str]]:
    graph = project_for(ctx)
    cataloged = set(primitives_by_method())
    for site in _file_calls(graph, ctx.path):
        if site.literal_base:
            continue
        dotted = f"{site.base}.{site.attr}" if site.base else site.attr
        root = (site.base or site.attr).split(".", 1)[0]
        if root in REAL_SYNC_MODULES:
            if root in DECLARED_SYNC_MODULES:
                continue
            yield _Site(site.lineno, site.col), (
                f"real synchronization primitive {dotted}() is not in "
                "the sync catalog"
            )
            continue
        if site.attr in SYNC_VOCAB and site.attr not in cataloged:
            if dotted in BENIGN_SYNC_CALLS:
                continue
            yield _Site(site.lineno, site.col), (
                f"sync operation {dotted}() has no declared primitive "
                "in the catalog"
            )


# ----------------------------------------------------------------------
# DS203: shared mutable state without ownership transfer
# ----------------------------------------------------------------------


@rule(
    "DS203",
    "unowned-shared-state",
    "shared mutable attribute crossed by stages without an ownership "
    "transfer",
    "declare the hand-over protocol in "
    "repro.sanitize.syncgraph.catalog.OWNERSHIP_TRANSFERS, or give the "
    "field a single owning class",
)
def check_unowned_shared_state(ctx: RuleContext) -> Iterator[Tuple[ast.AST, str]]:
    graph = project_for(ctx)
    for attr in sorted(graph.foreign_writes):
        if attr in OWNERSHIP_TRANSFERS or attr.isupper():
            continue
        sites = graph.foreign_writes[attr]
        # Only class-resident writes count: a module-level helper
        # filling a result object it just built is a builder, not a
        # stage crossing shared state.
        writers = sorted(
            {site.writer for site in sites if site.writer_is_class}
        )
        if len(writers) < 2:
            continue
        for site in sites:
            if site.path != ctx.path or not site.writer_is_class:
                continue
            yield _Site(site.lineno, site.col), (
                f"attribute {attr!r} on {site.base} is mutated by "
                f"{len(writers)} different classes ({', '.join(writers)}) "
                "with no declared ownership transfer"
            )


# ----------------------------------------------------------------------
# DS204: gate-ordering hazard
# ----------------------------------------------------------------------


def _gate_id(site: CallSite) -> str:
    if site.attr in ("acquire", "lock", "pause") and site.base:
        return site.base.rsplit(".", 1)[-1]
    return site.attr


def _gate_orders(
    graph: ProjectGraph,
) -> Dict[Tuple[str, str], List[Tuple[str, CallSite]]]:
    """``(gate1, gate2) -> [(function, second-acquisition site)]``."""
    orders: Dict[Tuple[str, str], List[Tuple[str, CallSite]]] = {}
    for caller in sorted(graph.calls):
        gates: List[Tuple[str, CallSite]] = []
        seen: set = set()
        for site in graph.calls[caller]:
            if site.literal_base or site.attr not in GATE_ATTRS:
                continue
            gate = _gate_id(site)
            if gate in seen:
                continue
            seen.add(gate)
            gates.append((gate, site))
        for i, (first, _) in enumerate(gates):
            for second, second_site in gates[i + 1:]:
                orders.setdefault((first, second), []).append(
                    (caller, second_site)
                )
    return orders


@rule(
    "DS204",
    "gate-order-hazard",
    "two gates acquired in opposite orders by different functions",
    "pick one global acquisition order for the two gates and make "
    "every code path follow it",
)
def check_gate_order(ctx: RuleContext) -> Iterator[Tuple[ast.AST, str]]:
    graph = project_for(ctx)
    orders = _gate_orders(graph)
    reported: set = set()
    for (g1, g2) in sorted(orders):
        if (g2, g1) not in orders or g1 >= g2:
            continue
        forward = orders[(g1, g2)]
        backward = orders[(g2, g1)]
        for caller, site in forward + backward:
            if site.path != ctx.path:
                continue
            key = (site.lineno, site.col, g1, g2)
            if key in reported:
                continue
            reported.add(key)
            other = backward if (caller, site) in forward else forward
            other_names = ", ".join(sorted({_short(c) for c, _ in other}))
            yield _Site(site.lineno, site.col), (
                f"{_short(caller)} acquires gates {g1!r} and {g2!r} in "
                f"the opposite order from {other_names}"
            )


# ----------------------------------------------------------------------
# DS205: unbounded queue put inside a callback
# ----------------------------------------------------------------------


def _callback_closure(graph: ProjectGraph) -> Dict[str, str]:
    """Callback functions for DS205: the registered roots plus one
    level of expansion through registered lambdas (``on_complete=lambda
    ...: self._phase_done(...)`` makes ``_phase_done`` the callback)."""
    callbacks: Dict[str, str] = {}
    for root, (_, _, registrar) in graph.callback_roots.items():
        callbacks.setdefault(root, registrar)
        info = graph.functions.get(root)
        if info is not None and info.name.startswith("<lambda"):
            for site in graph.calls.get(root, ()):
                if site.target is not None:
                    callbacks.setdefault(site.target, registrar)
    return callbacks


@rule(
    "DS205",
    "unbounded-callback-put",
    "unbounded put into a shared queue inside an event callback",
    "bound the queue (or shed on a threshold), or move the put onto an "
    "explicit pool job so backpressure is visible",
)
def check_unbounded_callback_put(ctx: RuleContext) -> Iterator[Tuple[ast.AST, str]]:
    graph = project_for(ctx)
    callbacks = _callback_closure(graph)
    for func in sorted(callbacks):
        for site in graph.calls.get(func, ()):
            if site.path != ctx.path or site.literal_base:
                continue
            if site.attr not in PUT_ATTRS or not site.base or "." not in site.base:
                continue
            name = site.base.rsplit(".", 1)[-1].lstrip("_").lower()
            if not any(hint in name for hint in QUEUE_NAME_HINTS):
                continue
            yield _Site(site.lineno, site.col), (
                f"callback {_short(func)} (registered via "
                f"{callbacks[func]}) does an unbounded {site.attr}() "
                f"into shared queue {site.base}"
            )
