"""The shadow-sync audit: static catalog x runtime wait-for graph.

:func:`analyze_sync` is the tentpole entry point (also exposed as
``repro.api.analyze_sync`` and the ``repro sync`` CLI verb):

1. run the DS2xx static rules over the source tree (sync-point catalog
   compliance);
2. run (or load) a traced scenario and extract the runtime wait-for
   graph (:mod:`.waitgraph`);
3. diff the runtime edges against the declared catalog — undeclared
   edges are **shadow sync**;
4. feed the edge windows into the millibottleneck detector so latency
   spikes pick up a ``sync`` attribution, and fold the spike windows
   back onto each edge as critical-path blocked time.

The audit passes when there are no shadow edges and no unsuppressed
DS2xx findings: every synchronization point the run exercised is
declared, and every declared point survived static review.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ...errors import AnalysisError
from .catalog import SYNC_CATALOG
from .waitgraph import (
    SyncEdge,
    attribute_spikes,
    diff_against_catalog,
    extract_wait_graph,
    sync_windows,
)

__all__ = ["SyncAuditReport", "analyze_sync"]

#: Default source tree for the static half.
_PACKAGE_ROOT = Path(__file__).resolve().parents[2]


@dataclass
class SyncAuditReport:
    """Joined static + dynamic view of the system's synchronization."""

    scenario: Optional[str]
    duration_s: float
    seed: int
    #: Unsuppressed DS2xx findings on the audited tree.
    findings: List = field(default_factory=list)
    #: Runtime wait-for edges (catalog-diffed).
    edges: List[SyncEdge] = field(default_factory=list)
    #: Edges with no declared primitive — the shadow sync.
    shadow_edges: List[SyncEdge] = field(default_factory=list)
    #: Millibottleneck spikes in the traced run / sync-attributed count.
    spike_count: int = 0
    sync_attributed_spikes: int = 0
    #: Paths the static half covered.
    paths: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.shadow_edges

    @property
    def blocked_s(self) -> float:
        return sum(edge.blocked_s for edge in self.edges)

    @property
    def critical_blocked_s(self) -> float:
        return sum(edge.spike_overlap_s for edge in self.edges)

    def to_dict(self) -> dict:
        from ..lint import findings_json

        return {
            "tool": "repro.sanitize.syncgraph",
            "scenario": self.scenario,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "lint": findings_json(self.findings),
            "catalog": [prim.to_dict() for prim in SYNC_CATALOG],
            "edges": [edge.to_dict() for edge in self.edges],
            "shadow_edges": [edge.to_dict() for edge in self.shadow_edges],
            "blocked_s": self.blocked_s,
            "critical_blocked_s": self.critical_blocked_s,
            "spikes": {
                "count": self.spike_count,
                "sync_attributed": self.sync_attributed_spikes,
            },
            "paths": self.paths,
            "ok": self.ok,
        }

    def render(self) -> str:
        lines: List[str] = []
        if self.scenario is not None:
            lines.append(
                f"shadow-sync audit: scenario={self.scenario} "
                f"duration={self.duration_s:g}s seed={self.seed}"
            )
        if self.edges:
            lines.append("runtime sync edges (wait-for graph):")
            header = (
                f"  {'kind':<32} {'src':<22} {'dst':<20} "
                f"{'n':>5} {'blocked_s':>10} {'on-spike_s':>10}  declared-by"
            )
            lines.append(header)
            for edge in self.edges:
                declared = edge.declared_by or "** SHADOW **"
                lines.append(
                    f"  {edge.kind:<32} {edge.src:<22} {edge.dst:<20} "
                    f"{edge.count:>5} {edge.blocked_s:>10.3f} "
                    f"{edge.spike_overlap_s:>10.3f}  {declared}"
                )
            lines.append(
                f"  total blocked {self.blocked_s:.3f}s, "
                f"{self.critical_blocked_s:.3f}s on latency-spike windows"
            )
            lines.append(
                f"  spikes: {self.spike_count} detected, "
                f"{self.sync_attributed_spikes} sync-attributed"
            )
        elif self.scenario is not None:
            lines.append("runtime sync edges: none observed")
        if self.shadow_edges:
            lines.append(
                f"SHADOW SYNC: {len(self.shadow_edges)} runtime edge(s) "
                "with no declared primitive:"
            )
            for edge in self.shadow_edges:
                lines.append(
                    f"  {edge.kind}: {edge.src} -> {edge.dst} "
                    f"({edge.blocked_s:.3f}s blocked); declare it in "
                    "repro.sanitize.syncgraph.catalog.SYNC_CATALOG"
                )
        if self.findings:
            from ..lint import render_findings

            lines.append("static sync findings (DS2xx):")
            lines.append(render_findings(self.findings))
        verdict = "clean" if self.ok else "FAILED"
        lines.append(
            f"shadow-sync audit: {verdict} "
            f"({len(self.shadow_edges)} shadow edge(s), "
            f"{len(self.findings)} static finding(s))"
        )
        return "\n".join(lines)


def _traced_events(
    scenario: str, duration_s: float, warmup_s: float, seed: int
) -> list:
    """Run *scenario* with tracing on (through the cached grid runner)
    and return its trace events."""
    from ...experiments.parallel import RunSpec, run_grid
    from ...experiments.runner import ExperimentSettings
    from ...scenarios import scenario as scenario_spec
    from ...trace import TraceEvent, Tracer

    spec = scenario_spec(scenario)
    settings = ExperimentSettings(
        duration_s=duration_s, warmup_s=warmup_s, seed=seed, trace=True
    )
    summary = run_grid(
        [
            RunSpec(
                kind="scenario",
                scenario=spec,
                settings=settings,
                label=f"sync:{scenario}",
            )
        ]
    )[0]
    if not summary.trace_events:
        raise AnalysisError(
            f"scenario {scenario!r} produced no trace events; "
            "cannot extract a wait-for graph"
        )
    tracer = Tracer()
    tracer.extend(TraceEvent.from_dict(e) for e in summary.trace_events)
    # Exported traces carry no latency track; rebuild it from the
    # summary's fine timeline so spike detection has something to read.
    for t, v in zip(summary.fine_times, summary.fine_p999):
        tracer.counter("latency_p999", "latency", t, v, tid="latency")
    return tracer.events


def analyze_sync(
    scenario: Optional[str] = "baseline_traffic",
    duration_s: float = 120.0,
    warmup_s: float = 10.0,
    seed: int = 1,
    paths: Optional[Sequence[Union[str, Path]]] = None,
    events: Optional[Sequence] = None,
    static: bool = True,
    spike_threshold: Optional[float] = None,
) -> SyncAuditReport:
    """Run the hidden-synchronization audit.

    *scenario* names the traced run for the dynamic half (``None``
    skips it unless *events* supplies a pre-recorded trace).  *paths*
    scopes the static half (defaults to the installed ``repro``
    package); ``static=False`` skips it.  *events* short-circuits the
    scenario run with an existing trace (a sequence of
    :class:`~repro.trace.TraceEvent`).
    """
    findings: List = []
    lint_paths_list: List[str] = []
    if static:
        from ..lint import lint_paths

        targets = [Path(p) for p in paths] if paths else [_PACKAGE_ROOT]
        lint_paths_list = [str(p) for p in targets]
        findings = [
            f
            for f in lint_paths(targets, rules=["DS2xx"])
            if f.rule_id.startswith("DS2") or f.rule_id == "DS000"
        ]

    edges: List[SyncEdge] = []
    shadows: List[SyncEdge] = []
    spike_count = 0
    sync_spikes = 0
    if events is None and scenario is not None:
        events = _traced_events(scenario, duration_s, warmup_s, seed)
    if events is not None:
        edges = extract_wait_graph(events)
        edges, shadows = diff_against_catalog(edges)
        windows = sync_windows(edges)
        from ...analysis.millibottleneck import analyze_trace

        try:
            mb = analyze_trace(
                list(events),
                threshold=spike_threshold,
                sync_windows=windows,
            )
        except AnalysisError:
            mb = None  # trace without a latency track: edges still stand
        if mb is not None:
            spike_count = len(mb.spikes)
            sync_spikes = sum(1 for s in mb.spikes if s.sync)
            attribute_spikes(edges, [s.window for s in mb.spikes])

    return SyncAuditReport(
        scenario=scenario if events is not None else None,
        duration_s=duration_s,
        seed=seed,
        findings=findings,
        edges=edges,
        shadow_edges=shadows,
        spike_count=spike_count,
        sync_attributed_spikes=sync_spikes,
        paths=lint_paths_list,
    )
