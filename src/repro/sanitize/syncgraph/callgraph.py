"""Project-wide static call graph for the hidden-sync analyzer.

The DS2xx rules need more context than one file's AST: whether a
blocking call is *reachable from the event-dispatch layer* is a
property of the whole call graph.  :func:`build_project` parses every
file once and produces a :class:`ProjectGraph` — functions indexed by
module-qualified name, call edges with best-effort resolution, and the
set of functions registered as simulator callbacks (the dispatch
roots).

Resolution is deliberately conservative Python static analysis:

* ``self.meth(...)`` resolves inside the enclosing class;
* imported names resolve through absolute *and* package-relative
  imports (``from ..trace import Tracer``);
* simple local aliases are tracked
  (``backend_flush = self.backend.flush_instance``);
* a bare method name that exists on exactly **one** class in the
  project resolves to that method (the unique-name fallback).

Anything else stays unresolved — an unresolved edge can never produce
a finding, so imprecision biases toward silence, not noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CallSite",
    "FunctionInfo",
    "WriteSite",
    "ProjectGraph",
    "build_project",
    "project_from_paths",
    "module_name_for",
]

#: Kernel/threadpool entry points whose function arguments become event
#: callbacks — the roots of the dispatch closure.
CALLBACK_REGISTRARS = frozenset({
    "schedule",
    "schedule_after",
    "schedule_at",
    "call_soon",
    "spawn",
})

#: Keyword arguments that register completion callbacks on jobs/tasks.
CALLBACK_KEYWORDS = frozenset({"on_complete", "on_done", "callback"})

#: ``X.observers.append(fn)`` / ``X.on_trigger.append(fn)`` style sinks.
CALLBACK_SINKS = frozenset({"observers", "on_trigger", "callbacks"})


def module_name_for(path: Path) -> str:
    """Dotted module name of *path*, walking up while ``__init__.py`` exists."""
    path = Path(path).resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


@dataclass(frozen=True)
class CallSite:
    """One call expression, attributed to its enclosing function."""

    caller: str
    #: Resolved project qualname of the callee, or ``None``.
    target: Optional[str]
    #: Bare called name (``flush_instance`` for ``x.y.flush_instance()``).
    attr: str
    #: Dotted receiver text (``self.backend``), ``None`` for bare calls.
    base: Optional[str]
    path: str
    lineno: int
    col: int
    #: True when the receiver is a string/bytes literal (``", ".join``).
    literal_base: bool = False


@dataclass(frozen=True)
class WriteSite:
    """One attribute write on an object other than ``self``."""

    attr: str
    #: Writer identity: enclosing class name, else the module name.
    writer: str
    base: str
    path: str
    lineno: int
    col: int
    #: True when the write happens inside a class body (a component),
    #: False for module-level builder/helper functions.
    writer_is_class: bool = False


@dataclass
class FunctionInfo:
    """One function, method, nested function or lambda in the project."""

    qualname: str
    module: str
    name: str
    cls: Optional[str]
    path: str
    lineno: int
    #: Qualname of the lexically enclosing function, if nested.
    parent: Optional[str] = None


@dataclass
class ProjectGraph:
    """The indexed project: functions, call edges, dispatch roots."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: bare name -> sorted qualnames defining a function of that name.
    by_name: Dict[str, List[str]] = field(default_factory=dict)
    #: caller qualname -> callsites, in source order.
    calls: Dict[str, List[CallSite]] = field(default_factory=dict)
    #: Functions registered as simulator/job callbacks, with evidence
    #: ``qualname -> (path, lineno, registrar)`` of one registration.
    callback_roots: Dict[str, Tuple[str, int, str]] = field(default_factory=dict)
    #: attr name -> writes on non-``self`` receivers, project-wide.
    foreign_writes: Dict[str, List[WriteSite]] = field(default_factory=dict)
    #: Dispatch closure: callback roots plus everything they reach.
    _reachable: Optional[Dict[str, Optional[str]]] = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def dispatch_reachable(self) -> Dict[str, Optional[str]]:
        """``qualname -> caller-on-the-chain`` for the dispatch closure.

        Roots map to ``None``; every other entry maps to the function
        through which BFS first reached it, so a full root→site chain
        can be reconstructed with :meth:`dispatch_chain`.
        """
        if self._reachable is not None:
            return self._reachable
        parent: Dict[str, Optional[str]] = {
            root: None for root in self.callback_roots
        }
        frontier = list(self.callback_roots)
        while frontier:
            current = frontier.pop()
            for site in self.calls.get(current, ()):
                if site.target is None or site.target in parent:
                    continue
                if site.target not in self.functions:
                    continue
                parent[site.target] = current
                frontier.append(site.target)
        self._reachable = parent
        return parent

    def dispatch_chain(self, qualname: str) -> List[str]:
        """Root→…→*qualname* chain inside the dispatch closure."""
        parent = self.dispatch_reachable()
        chain: List[str] = []
        cursor: Optional[str] = qualname
        while cursor is not None and cursor not in chain:
            chain.append(cursor)
            cursor = parent.get(cursor)
        return list(reversed(chain))

    def unique_method(self, name: str) -> Optional[str]:
        """The single project function called *name*, if unambiguous."""
        owners = self.by_name.get(name, [])
        return owners[0] if len(owners) == 1 else None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_function(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info
        self.by_name.setdefault(info.name, []).append(info.qualname)

    def add_call(self, site: CallSite) -> None:
        self.calls.setdefault(site.caller, []).append(site)


def _import_aliases(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local name -> dotted origin, resolving relative imports too."""
    aliases: Dict[str, str] = {}
    package_parts = module.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                aliases[local] = item.name if item.asname else item.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[: len(package_parts) - (node.level - 1)]
                prefix = ".".join(base + ([node.module] if node.module else []))
            elif node.module:
                prefix = node.module
            else:
                continue
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{prefix}.{item.name}"
    return aliases


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """``self.backend.flush_instance`` style dotted text, alias-resolved."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


class _FileIndexer(ast.NodeVisitor):
    """One pass over a file: functions, calls, callback registrations."""

    def __init__(self, graph: ProjectGraph, module: str, path: str) -> None:
        self.graph = graph
        self.module = module
        self.path = path
        self.aliases: Dict[str, str] = {}
        #: (cls, func-qualname) lexical scope stack.
        self.cls: Optional[str] = None
        self.func: Optional[str] = None
        #: Per-function local aliases: name -> dotted value text.
        self.locals: Dict[str, str] = {}
        #: Deferred callsites; resolved after the whole project parses.
        self.pending: List[Tuple[CallSite, Optional[str], Optional[str]]] = []

    def index(self, tree: ast.Module) -> None:
        self.aliases = _import_aliases(tree, self.module)
        self.visit(tree)

    # -- scopes --------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        prev = self.cls
        self.cls = node.name
        self.generic_visit(node)
        self.cls = prev

    def _visit_function(self, node, name: str) -> None:
        if self.func is not None:
            qualname = f"{self.func}.{name}"
        elif self.cls is not None:
            qualname = f"{self.module}.{self.cls}.{name}"
        else:
            qualname = f"{self.module}.{name}"
        self.graph.add_function(
            FunctionInfo(
                qualname=qualname,
                module=self.module,
                name=name,
                cls=self.cls,
                path=self.path,
                lineno=node.lineno,
                parent=self.func,
            )
        )
        prev_func, prev_locals = self.func, self.locals
        self.func, self.locals = qualname, dict(prev_locals)
        self.generic_visit(node)
        self.func, self.locals = prev_func, prev_locals

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node, f"<lambda:{node.lineno}>")

    # -- statements ----------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if (
            self.func is not None
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, (ast.Attribute, ast.Name))
        ):
            dotted = _dotted(node.value, self.aliases)
            if dotted is not None:
                self.locals[node.targets[0].id] = dotted
        for target in node.targets:
            self._note_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_write(node.target)
        self.generic_visit(node)

    def _note_write(self, target: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        base = _dotted(target.value, self.aliases)
        if base is None or base.split(".", 1)[0] in ("self", "cls"):
            return
        site = WriteSite(
            attr=target.attr,
            writer=self.cls or self.module,
            base=base,
            path=self.path,
            lineno=target.lineno,
            col=target.col_offset,
            writer_is_class=self.cls is not None,
        )
        self.graph.foreign_writes.setdefault(target.attr, []).append(site)

    # -- calls ---------------------------------------------------------

    def _caller(self) -> str:
        return self.func or f"{self.module}.<module>"

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        attr = base = None
        literal_base = False
        if isinstance(func, ast.Name):
            attr = func.id
            dotted = self.locals.get(func.id) or self.aliases.get(func.id)
            if dotted is not None and "." in dotted:
                base, attr = dotted.rsplit(".", 1)
            elif dotted is not None:
                attr = dotted
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            base = _dotted(func.value, self.aliases)
            if base is not None and base.split(".", 1)[0] in self.locals:
                root, _, rest = base.partition(".")
                base = self.locals[root] + (f".{rest}" if rest else "")
            literal_base = isinstance(func.value, ast.Constant)
        if attr is not None:
            site = CallSite(
                caller=self._caller(),
                target=None,
                attr=attr,
                base=base,
                path=self.path,
                lineno=node.lineno,
                col=node.col_offset,
                literal_base=literal_base,
            )
            self.pending.append((site, self.cls, self.module))
            self._note_callbacks(node, attr, base)
        self.generic_visit(node)

    def _callable_name(self, arg: ast.AST) -> Optional[str]:
        """Qualname-ish text for a callback argument expression."""
        if isinstance(arg, ast.Lambda):
            return f"{self._caller()}.<lambda:{arg.lineno}>"
        if isinstance(arg, ast.Call):
            # spawn(self._loop()) registers the generator function.
            arg = arg.func
        dotted = (
            _dotted(arg, self.aliases)
            if isinstance(arg, (ast.Attribute, ast.Name))
            else None
        )
        if dotted is None and isinstance(arg, ast.Name):
            dotted = self.locals.get(arg.id, arg.id)
        return dotted

    def _note_callbacks(self, node: ast.Call, attr: str, base: Optional[str]) -> None:
        registered: List[ast.AST] = []
        registrar = attr
        if attr in CALLBACK_REGISTRARS:
            registered.extend(node.args)
        elif attr == "append" and base is not None and (
            base.rsplit(".", 1)[-1] in CALLBACK_SINKS
        ):
            registered.extend(node.args)
            registrar = base.rsplit(".", 1)[-1]
        for kw in node.keywords:
            if kw.arg in CALLBACK_KEYWORDS:
                registered.append(kw.value)
                registrar = kw.arg
        for arg in registered:
            name = self._callable_name(arg)
            if name is None:
                continue
            self.pending.append((
                CallSite(
                    caller=f"<register:{registrar}>",
                    target=None,
                    attr=name.rsplit(".", 1)[-1],
                    base=(name.rsplit(".", 1)[0] if "." in name else None),
                    path=self.path,
                    lineno=node.lineno,
                    col=node.col_offset,
                ),
                self.cls,
                self.module,
            ))


def _resolve_site(
    graph: ProjectGraph, site: CallSite, cls: Optional[str], module: str
) -> Optional[str]:
    """Best-effort project qualname of a callsite's callee."""
    base, attr = site.base, site.attr
    if base is None:
        for candidate in (f"{module}.{attr}", attr):
            if candidate in graph.functions:
                return candidate
        return graph.unique_method(attr)
    if base == "self" or base.startswith("self."):
        if base == "self" and cls is not None:
            candidate = f"{module}.{cls}.{attr}"
            if candidate in graph.functions:
                return candidate
        return graph.unique_method(attr)
    if base.startswith("cls") and cls is not None:
        candidate = f"{module}.{cls}.{attr}"
        if candidate in graph.functions:
            return candidate
    full = f"{base}.{attr}"
    if full in graph.functions:
        return full
    # ``module.Class`` instantiation or lambda-local receiver: fall back
    # to the unique-name heuristic.
    return graph.unique_method(attr)


def build_project(
    sources: Sequence[Tuple[str, ast.Module]],
) -> ProjectGraph:
    """Index ``(path, tree)`` pairs into one :class:`ProjectGraph`."""
    graph = ProjectGraph()
    indexers: List[_FileIndexer] = []
    for path, tree in sources:
        indexer = _FileIndexer(graph, module_name_for(Path(path)), str(path))
        indexer.index(tree)
        indexers.append(indexer)
    registrations: List[Tuple[CallSite, Optional[str], Optional[str]]] = []
    for indexer in indexers:
        for site, cls, module in indexer.pending:
            if site.caller.startswith("<register:"):
                registrations.append((site, cls, module))
                continue
            target = _resolve_site(graph, site, cls, module)
            graph.add_call(
                CallSite(
                    caller=site.caller,
                    target=target,
                    attr=site.attr,
                    base=site.base,
                    path=site.path,
                    lineno=site.lineno,
                    col=site.col,
                    literal_base=site.literal_base,
                )
            )
    for site, cls, module in registrations:
        target = _resolve_site(graph, site, cls, module)
        if target is None and site.base is not None:
            candidate = f"{site.base}.{site.attr}"
            target = candidate if candidate in graph.functions else None
        if target is not None and target not in graph.callback_roots:
            registrar = site.caller[len("<register:"):-1]
            graph.callback_roots[target] = (site.path, site.lineno, registrar)
    graph._reachable = None
    return graph


def project_from_paths(paths: Sequence[Path]) -> ProjectGraph:
    """Parse *paths* (skipping unreadable files) and build the graph."""
    sources: List[Tuple[str, ast.Module]] = []
    for path in paths:
        try:
            text = Path(path).read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (OSError, UnicodeDecodeError, SyntaxError):
            continue
        sources.append((str(path), tree))
    return build_project(sources)
