"""Runtime wait-for graph: extract sync edges from recorded traces.

The dynamic half of the hidden-synchronization analyzer.  A recorded
trace (the same events :meth:`StreamJobResult.export_trace` writes)
is folded into **sync edges** — aggregated waiter→holder relations
with total blocked time and the windows where the blocking happened:

* ``pool-queue`` — jobs queued behind busy pool threads
  (``queued:NAME`` spans);
* ``pool-stall`` — pause..resume/restart intervals freezing a pool;
* ``checkpoint-barrier`` — trigger→complete barrier holds
  (``checkpoint-N`` spans);
* ``flush-block`` — instances blocked while a flush drains
  (flush spans, split by reason);
* ``compaction-during-checkpoint`` — compaction work overlapping an
  open checkpoint barrier: **the paper's shadow edge**;
* ``migration-fence`` — fenced nodes during cluster migrations.

:func:`diff_against_catalog` marks each edge with the declared
primitive that explains it; edges with no declaration are **shadow
sync**.  :func:`attribute_spikes` overlaps edge windows with the
millibottleneck spike windows, attributing blocked time onto the run's
latency critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .catalog import SYNC_CATALOG, SyncPrimitive, declared_edge_kinds

__all__ = [
    "SyncEdge",
    "extract_wait_graph",
    "diff_against_catalog",
    "sync_windows",
    "attribute_spikes",
]


@dataclass
class SyncEdge:
    """One aggregated wait-for relation observed at runtime."""

    kind: str
    #: The waiting side (``stage:agg``, ``pool:node0-flush``, ...).
    src: str
    #: What it waited on (``checkpoint``, ``pause-gate``, ...).
    dst: str
    blocked_s: float = 0.0
    count: int = 0
    windows: List[Tuple[float, float]] = field(default_factory=list)
    #: Declared primitive explaining this edge (after the catalog diff);
    #: ``None`` means shadow sync.
    declared_by: Optional[str] = None
    #: Blocked time overlapping latency-spike windows (critical path).
    spike_overlap_s: float = 0.0

    @property
    def shadow(self) -> bool:
        return self.declared_by is None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "blocked_s": self.blocked_s,
            "count": self.count,
            "windows": [list(w) for w in self.windows],
            "declared_by": self.declared_by,
            "spike_overlap_s": self.spike_overlap_s,
            "shadow": self.shadow,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SyncEdge":
        return cls(
            kind=data["kind"],
            src=data["src"],
            dst=data["dst"],
            blocked_s=data.get("blocked_s", 0.0),
            count=data.get("count", 0),
            windows=[tuple(w) for w in data.get("windows", [])],
            declared_by=data.get("declared_by"),
            spike_overlap_s=data.get("spike_overlap_s", 0.0),
        )


class _EdgeBuilder:
    def __init__(self) -> None:
        self.edges: Dict[Tuple[str, str, str], SyncEdge] = {}

    def add(
        self, kind: str, src: str, dst: str, start: float, end: float
    ) -> None:
        key = (kind, src, dst)
        edge = self.edges.get(key)
        if edge is None:
            edge = self.edges[key] = SyncEdge(kind=kind, src=src, dst=dst)
        edge.blocked_s += max(0.0, end - start)
        edge.count += 1
        edge.windows.append((start, end))

    def build(self) -> List[SyncEdge]:
        edges = [self.edges[key] for key in sorted(self.edges)]
        for edge in edges:
            edge.windows.sort()
        return edges


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


def extract_wait_graph(events: Iterable) -> List[SyncEdge]:
    """Fold trace events into aggregated :class:`SyncEdge` records."""
    events = sorted(events, key=lambda e: (e.ts, e.name))
    builder = _EdgeBuilder()
    checkpoint_windows: List[Tuple[float, float]] = []
    #: pool tid -> stack of open pause timestamps.
    open_pauses: Dict[str, List[float]] = {}
    #: node tid -> open fence timestamp.
    open_fences: Dict[str, float] = {}
    last_ts = 0.0

    for e in events:
        last_ts = max(last_ts, e.ts + (e.dur or 0.0))
        if e.ph == "X" and e.cat == "checkpoint":
            if e.name.startswith("checkpoint-"):
                checkpoint_windows.append((e.ts, e.ts + e.dur))
                builder.add(
                    "checkpoint-barrier",
                    "coordinator",
                    "stateful-instances",
                    e.ts,
                    e.ts + e.dur,
                )
        elif e.ph == "X" and e.cat == "pool":
            if e.name.startswith("queued:"):
                job_kind = str(e.args.get("kind", "job"))
                builder.add(
                    "pool-queue",
                    f"job:{job_kind}",
                    f"pool:{e.tid}",
                    e.ts,
                    e.ts + e.dur,
                )
        elif e.ph == "X" and e.cat == "flush":
            reason = str(e.args.get("reason", "") or "memtable-full")
            stage = str(e.args.get("stage", "") or "stage")
            dst = "checkpoint" if reason == "checkpoint" else "memtable"
            builder.add(
                "flush-block", f"stage:{stage}", dst, e.ts, e.ts + e.dur
            )
        elif e.ph == "i" and e.cat == "pool":
            if e.name.startswith("pause:"):
                open_pauses.setdefault(e.tid, []).append(e.ts)
            elif e.name.startswith(("resume:", "restart:")):
                stack = open_pauses.get(e.tid)
                if stack:
                    start = stack.pop()
                    if e.name.startswith("restart:"):
                        # A watchdog restart clears every pause at once.
                        while stack:
                            stack.pop()
                    builder.add(
                        "pool-stall",
                        f"pool:{e.tid}",
                        "pause-gate",
                        start,
                        e.ts,
                    )
        elif e.ph == "i" and e.cat == "cluster":
            if e.name == "node-fence":
                open_fences.setdefault(e.tid, e.ts)
            elif e.name in ("node-revive", "node-join", "node-leave"):
                start = open_fences.pop(e.tid, None)
                if start is not None:
                    builder.add(
                        "migration-fence",
                        f"node:{e.tid}",
                        "cluster-coordinator",
                        start,
                        e.ts,
                    )

    # Dangling pauses/fences block until the end of the trace.
    for tid in sorted(open_pauses):
        for start in open_pauses[tid]:
            builder.add("pool-stall", f"pool:{tid}", "pause-gate",
                        start, last_ts)
    for tid in sorted(open_fences):
        builder.add("migration-fence", f"node:{tid}", "cluster-coordinator",
                    open_fences[tid], last_ts)

    # THE paper edge: compaction work inside an open checkpoint barrier.
    for e in events:
        if e.ph != "X" or e.cat != "compaction":
            continue
        stage = str(e.args.get("stage", "") or "stage")
        for c0, c1 in checkpoint_windows:
            shared = _overlap(e.ts, e.ts + e.dur, c0, c1)
            if shared > 0.0:
                builder.add(
                    "compaction-during-checkpoint",
                    f"stage:{stage}",
                    "checkpoint",
                    max(e.ts, c0),
                    min(e.ts + e.dur, c1),
                )
    return builder.build()


def diff_against_catalog(
    edges: Sequence[SyncEdge],
    catalog: Tuple[SyncPrimitive, ...] = SYNC_CATALOG,
) -> Tuple[List[SyncEdge], List[SyncEdge]]:
    """Mark edges with their declaring primitive; return
    ``(all edges, shadow edges)``.  A runtime edge kind with no catalog
    declaration is shadow sync — the paper's phenomenon, mechanically."""
    declared = declared_edge_kinds(catalog)
    shadows: List[SyncEdge] = []
    for edge in edges:
        edge.declared_by = declared.get(edge.kind)
        if edge.declared_by is None:
            shadows.append(edge)
    return list(edges), shadows


def sync_windows(
    edges: Sequence[SyncEdge],
) -> List[Tuple[str, float, float]]:
    """``(kind, start, end)`` labeled windows for the millibottleneck
    detector's ``sync_windows`` attribution input."""
    labeled: List[Tuple[str, float, float]] = []
    for edge in edges:
        for start, end in edge.windows:
            labeled.append((edge.kind, start, end))
    labeled.sort(key=lambda w: (w[1], w[2], w[0]))
    return labeled


def attribute_spikes(
    edges: Sequence[SyncEdge],
    spike_windows: Sequence[Tuple[float, float]],
) -> None:
    """Fill ``spike_overlap_s``: each edge's blocked time that lands
    inside a latency-spike window — the share of the blocking that sat
    on the tail-latency critical path."""
    for edge in edges:
        total = 0.0
        for w0, w1 in edge.windows:
            for s0, s1 in spike_windows:
                total += _overlap(w0, w1, s0, s1)
        edge.spike_overlap_s = total
