"""Hidden-synchronization analyzer: static catalog + shadow-sync audit.

Two halves joined on one catalog (:mod:`.catalog`):

* **static** — a project-wide call graph (:mod:`.callgraph`) feeds the
  DS2xx lint rules (:mod:`.rules`), which flag blocking calls on the
  dispatch path, undeclared sync primitives, unowned shared state,
  gate-order hazards and unbounded callback puts;
* **dynamic** — a traced run's wait-for graph (:mod:`.waitgraph`) is
  diffed against the same catalog; runtime sync edges with no declared
  counterpart are **shadow sync** (:mod:`.audit`).

Importing this package registers the DS2xx family into the shared
``repro.sanitize`` rule registry.
"""

from .callgraph import (  # noqa: F401
    CallSite,
    FunctionInfo,
    ProjectGraph,
    WriteSite,
    build_project,
    module_name_for,
    project_from_paths,
)
from .catalog import (  # noqa: F401
    DECLARED_SYNC_MODULES,
    OWNERSHIP_TRANSFERS,
    SYNC_CATALOG,
    SyncPrimitive,
    declared_edge_kinds,
    primitives_by_method,
)
from . import rules as _rules  # noqa: F401  (registers DS201..DS205)
from .waitgraph import (  # noqa: F401
    SyncEdge,
    attribute_spikes,
    diff_against_catalog,
    extract_wait_graph,
    sync_windows,
)
from .audit import SyncAuditReport, analyze_sync  # noqa: F401

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ProjectGraph",
    "WriteSite",
    "build_project",
    "module_name_for",
    "project_from_paths",
    "DECLARED_SYNC_MODULES",
    "OWNERSHIP_TRANSFERS",
    "SYNC_CATALOG",
    "SyncPrimitive",
    "declared_edge_kinds",
    "primitives_by_method",
    "SyncEdge",
    "attribute_spikes",
    "diff_against_catalog",
    "extract_wait_graph",
    "sync_windows",
    "SyncAuditReport",
    "analyze_sync",
]
