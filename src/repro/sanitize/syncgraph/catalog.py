"""The declared catalog of synchronization primitives.

The paper's thesis is that tail latency comes from *hidden*
synchronization — blocking edges nobody declared.  This module is the
"declared" side of that argument: every synchronization primitive the
simulation intentionally contains, written down with its owner, kind
and the runtime wait-edge kinds it explains.

The static rules (:mod:`repro.sanitize.syncgraph.rules`) treat a sync
call that is **not** in this catalog as DS202; the dynamic audit
(:mod:`repro.sanitize.syncgraph.waitgraph`) diffs the runtime wait-for
graph against :func:`declared_edge_kinds` and reports unmatched edges
as **shadow sync**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "SyncPrimitive",
    "SYNC_CATALOG",
    "OWNERSHIP_TRANSFERS",
    "DECLARED_SYNC_MODULES",
    "primitives_by_method",
    "declared_edge_kinds",
]


@dataclass(frozen=True)
class SyncPrimitive:
    """One declared synchronization point."""

    name: str
    #: Owning class (or module for module-level primitives).
    owner: str
    #: Method that exercises the primitive; ``None`` for module grants.
    method: Optional[str]
    #: "queue" | "gate" | "barrier" | "hold" | "breaker" | "fence" | "shadow"
    kind: str
    #: True when a call can block/suspend other progress.
    blocking: bool = False
    #: Runtime wait-edge kinds this primitive explains (see waitgraph).
    edge_kinds: Tuple[str, ...] = ()
    rationale: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "owner": self.owner,
            "method": self.method,
            "kind": self.kind,
            "blocking": self.blocking,
            "edge_kinds": list(self.edge_kinds),
            "rationale": self.rationale,
        }


SYNC_CATALOG: Tuple[SyncPrimitive, ...] = (
    SyncPrimitive(
        name="threadpool.submit",
        owner="SimThreadPool",
        method="submit",
        kind="queue",
        edge_kinds=("pool-queue",),
        rationale="bounded worker pool: jobs queue when all threads are "
                  "busy; the queued:NAME spans are this wait",
    ),
    SyncPrimitive(
        name="threadpool.pause",
        owner="SimThreadPool",
        method="pause",
        kind="gate",
        blocking=True,
        edge_kinds=("pool-stall",),
        rationale="fault injection and crash handling freeze job starts; "
                  "queued work blocks until the matching resume",
    ),
    SyncPrimitive(
        name="threadpool.resume",
        owner="SimThreadPool",
        method="resume",
        kind="gate",
        edge_kinds=("pool-stall",),
        rationale="releases a pause; the pause..resume interval is the "
                  "pool-stall wait edge",
    ),
    SyncPrimitive(
        name="threadpool.restart",
        owner="SimThreadPool",
        method="restart",
        kind="gate",
        edge_kinds=("pool-stall",),
        rationale="watchdog recovery clears outstanding pauses and "
                  "terminates a pool-stall edge early",
    ),
    SyncPrimitive(
        name="checkpoint.trigger",
        owner="CheckpointCoordinator",
        method="trigger",
        kind="barrier",
        blocking=True,
        edge_kinds=("checkpoint-barrier",),
        rationale="the checkpoint barrier: every stateful instance must "
                  "flush and ack before the checkpoint completes",
    ),
    SyncPrimitive(
        name="checkpoint.abort",
        owner="CheckpointCoordinator",
        method="abort_in_flight",
        kind="barrier",
        edge_kinds=("checkpoint-barrier",),
        rationale="crash/fence handling tears down the barrier; late "
                  "acks are dropped by record state",
    ),
    SyncPrimitive(
        name="backend.flush",
        owner="LSMStateBackend",
        method="flush_instance",
        kind="gate",
        blocking=True,
        edge_kinds=("flush-block",),
        rationale="a flush freezes the instance's memtable writes "
                  "(instance.blocked) until the flush job completes",
    ),
    SyncPrimitive(
        name="backend.submission-hold",
        owner="LSMStateBackend",
        method="submission_hold",
        kind="hold",
        edge_kinds=("compaction-hold",),
        rationale="scheduling policies delay compaction submission; the "
                  "hold is a deliberate, bounded wait",
    ),
    SyncPrimitive(
        name="levels.claim",
        owner="LevelManager",
        method="claim",
        kind="gate",
        rationale="in-flight gate: picked runs are claimed so concurrent "
                  "same-level compactions cannot overlap",
    ),
    SyncPrimitive(
        name="levels.l0-gate",
        owner="LevelManager",
        method="build_l0_pick",
        kind="gate",
        rationale="l0_compaction_in_flight gate: one L0 compaction at a "
                  "time per store",
    ),
    SyncPrimitive(
        name="levels.level-gate",
        owner="LevelManager",
        method="build_level_pick",
        kind="gate",
        rationale="level_claimed gate for L1+ picks",
    ),
    SyncPrimitive(
        name="breaker.allow",
        owner="CircuitBreaker",
        method="allow",
        kind="breaker",
        rationale="open breakers reject uploads/commits instead of "
                  "queueing them; a deliberate fail-fast sync point",
    ),
    SyncPrimitive(
        name="cluster.fence",
        owner="ClusterManager",
        method="_fence",
        kind="fence",
        blocking=True,
        edge_kinds=("migration-fence",),
        rationale="suspected nodes are fenced: in-flight checkpoints "
                  "abort and the node's partitions stop serving until "
                  "ownership flips",
    ),
    SyncPrimitive(
        name="cluster.unfence",
        owner="ClusterManager",
        method="_unfence",
        kind="fence",
        edge_kinds=("migration-fence",),
        rationale="revived nodes re-enter service; ends the fence window",
    ),
    SyncPrimitive(
        name="shadow.compaction-checkpoint",
        owner="LSMStateBackend",
        method=None,
        kind="shadow",
        blocking=True,
        edge_kinds=("compaction-during-checkpoint",),
        rationale="THE paper edge: checkpoint-triggered flushes spawn "
                  "compactions that contend with the barrier on the same "
                  "pools/devices.  No code path declares it — it emerges "
                  "from flush debt — so it is cataloged here as a known "
                  "shadow edge after this analyzer first surfaced it",
    ),
)

#: Module-level synchronization grants: real concurrency primitives the
#: harness (not the simulation) is allowed to use.
DECLARED_SYNC_MODULES: Dict[str, str] = {
    "multiprocessing": "experiment executor / shard fan-out: process "
                       "pools live outside the simulated clock",
}

#: Attributes written by more than one class *by design* — the ownership
#: of the field transfers with the object along a declared protocol.
OWNERSHIP_TRANSFERS: Dict[str, str] = {
    "blocked": "instance.blocked is set by the backend at flush start "
               "and cleared by the flush completion callback; the "
               "engine only reads it",
    "flush_in_flight": "flush reference count: incremented at submit, "
                       "decremented by the completion callback of the "
                       "same flush (epoch-guarded against restarts)",
    "stall_level": "write-stall level is recomputed by the backend "
                   "after every flush/compaction completion; single "
                   "logical writer",
    "restart_epoch": "bumped only by watchdog/cluster recovery to "
                     "invalidate in-flight completions; readers compare "
                     "against their captured epoch",
    "end_time": "job completion stamp: written once by the executing "
                "pool when the job leaves the active set, then the job "
                "object is handed to metrics read-only",
    "start_time": "job start stamp: written by whichever executor "
                  "(pool thread or PS resource) admits the job; the "
                  "job object is owned by its executor while running",
    "crashed": "instance.crashed flips on the crash/revive handoff "
               "between WorkerNode (fault path) and ClusterManager "
               "(migration path); both run on the single-threaded "
               "simulated clock",
    "_queue": "EventQueue membership backref: the kernel's heap "
              "bookkeeping sets/clears event._queue when an event is "
              "scheduled, cancelled or drained — the queue owns the "
              "event while it is enqueued",
    "l0_trigger_policy": "the online autotuner retunes store options "
                         "between checkpoints; the backend re-reads "
                         "them at the next flush decision (declared "
                         "tuning handoff)",
    "compaction_input_mb": "MetricsCollector aggregates compaction "
                           "input into the per-checkpoint stats row it "
                           "owns until the row is published read-only",
}


def primitives_by_method() -> Dict[str, SyncPrimitive]:
    """``method name -> primitive`` for every method-matched entry."""
    return {
        p.method: p for p in SYNC_CATALOG if p.method is not None
    }


def declared_edge_kinds(
    catalog: Tuple[SyncPrimitive, ...] = SYNC_CATALOG,
) -> Dict[str, str]:
    """``runtime edge kind -> primitive name`` declaration map."""
    declared: Dict[str, str] = {}
    for primitive in catalog:
        for kind in primitive.edge_kinds:
            declared.setdefault(kind, primitive.name)
    return declared
