"""Runtime race sanitizer: perturbed tie-breaking + state digests.

The paper's hidden-synchronization bugs are *scheduling-order* bugs: two
activities nobody ordered on purpose happen to run in a fixed order and
the system silently depends on it.  The simulation has the same hazard
one level down — two events scheduled at the same timestamp fire in
scheduling (FIFO) order, and any state the model computes from that
accidental order is a hidden race.

The sanitizer makes those races observable the same way
:mod:`repro.analysis.millibottleneck` makes flush/compaction coupling
observable — by instrumentation, not debugging:

1. run the model twice, once with the production FIFO tie-break and once
   with the perturbed (LIFO) tie-break among equal-``(time, priority)``
   events (:class:`repro.sim.events.EventQueue`);
2. capture a running *state digest* at every window boundary — LSM
   level shapes, memtable fill, flow queues/offsets, checkpoint
   bookkeeping, per-stream RNG states — scheduled strictly after every
   same-time model event;
3. diff the two digest sequences.  The first divergent window is then
   localized by diffing the two runs' kernel dispatch traces
   (:class:`repro.trace.Tracer` with the ``"kernel"`` category), naming
   the two conflicting events.

A model with no hidden same-timestamp coupling produces identical
digests under both orders; any divergence is a bug report, not noise.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..serialize import canonical_json, register
from ..sim.kernel import Simulator
from ..trace import TraceEvent, Tracer, events_in_window

__all__ = [
    "DIGEST_PRIORITY",
    "ProbeTarget",
    "RaceProbe",
    "RaceDivergence",
    "RaceReport",
    "state_digest",
    "digest_hash",
    "run_probe",
    "diff_probes",
    "detect_races",
]

#: Priority of digest-capture events: strictly after every model event
#: at the same timestamp, in both tie-break orders (LIFO only reorders
#: *within* a priority class, and nothing else schedules at this one).
DIGEST_PRIORITY = 1_000_000

#: Decimal places kept for float state in digests.  Same-time updates
#: that commute in exact arithmetic may still differ in the last float
#: bits when reordered ((x+a)+b vs (x+b)+a); six decimals keeps genuine
#: divergences (they grow) while ignoring reordering round-off.
_DIGEST_DECIMALS = 6


def _rounded(value):
    if isinstance(value, float):
        return round(value, _DIGEST_DECIMALS)
    return value


@dataclass
class ProbeTarget:
    """One run the sanitizer can probe.

    ``factory(tie_break)`` callables passed to :func:`detect_races`
    return one of these: the simulator (whose tracer must record the
    ``"kernel"`` category for event-level localization), a zero-argument
    ``digest`` callable returning plain data, and ``run(duration)``.
    """

    sim: Simulator
    digest: Callable[[], dict]
    run: Callable[[float], object]


@dataclass
class RaceProbe:
    """The observable record of one probed run."""

    tie_break: str
    window_s: float
    digests: List[str] = field(default_factory=list)
    snapshots: List[dict] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    events_fired: int = 0
    result: object = None


@register
@dataclass
class RaceDivergence:
    """One hidden same-timestamp race: where the two runs split."""

    #: Index and bounds of the first window whose digests differ.
    window_index: int = 0
    window_start: float = 0.0
    window_end: float = 0.0
    baseline_digest: str = ""
    perturbed_digest: str = ""
    #: The two conflicting events: the first dispatch (name, time,
    #: priority) where the runs disagree inside the divergent window.
    baseline_event: Optional[dict] = None
    perturbed_event: Optional[dict] = None
    #: Position of the conflict in the window's dispatch sequence.
    event_index: int = 0
    #: Digest components that differ (component name -> both values).
    state_delta: Dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    def describe(self) -> str:
        base = (self.baseline_event or {}).get("name", "<missing event>")
        pert = (self.perturbed_event or {}).get("name", "<missing event>")
        return (
            f"window {self.window_index} "
            f"[{self.window_start:.3f}s, {self.window_end:.3f}s]: "
            f"dispatch #{self.event_index} ran {base!r} under fifo but "
            f"{pert!r} under the perturbed order"
        )


@register
@dataclass
class RaceReport:
    """Outcome of one race-detection pass (two runs + diff)."""

    label: str = ""
    duration_s: float = 0.0
    window_s: float = 0.0
    windows: int = 0
    baseline_tie_break: str = "fifo"
    perturbed_tie_break: str = "lifo"
    events_fired: Tuple[int, int] = (0, 0)
    #: Number of windows whose digests differ (cascades count once each).
    divergent_windows: int = 0
    #: Localized report for the *first* divergent window; later windows
    #: inherit the corrupted state and are not separately localized.
    divergences: List[RaceDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.divergent_windows == 0

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "duration_s": self.duration_s,
            "window_s": self.window_s,
            "windows": self.windows,
            "baseline_tie_break": self.baseline_tie_break,
            "perturbed_tie_break": self.perturbed_tie_break,
            "events_fired": list(self.events_fired),
            "divergent_windows": self.divergent_windows,
            "divergences": [d.to_dict() for d in self.divergences],
        }

    @classmethod
    def from_dict(cls, data: dict) -> RaceReport:
        data = dict(data)
        data["events_fired"] = tuple(data.get("events_fired", (0, 0)))
        data["divergences"] = [
            RaceDivergence(**d) for d in data.get("divergences", ())
        ]
        return cls(**data)

    def render(self) -> str:
        head = (
            f"race sanitizer: {self.label or 'run'} — {self.windows} "
            f"window(s) of {self.window_s:g}s, "
            f"{self.baseline_tie_break} vs {self.perturbed_tie_break} "
            f"tie-breaking"
        )
        if self.ok:
            return f"{head}\n  no divergence: state digests identical"
        lines = [
            head,
            f"  DIVERGENCE in {self.divergent_windows} window(s); first:",
        ]
        for divergence in self.divergences:
            lines.append(f"  {divergence.describe()}")
            for component, delta in sorted(divergence.state_delta.items()):
                lines.append(
                    f"    {component}: fifo={delta.get('baseline')!r} "
                    f"perturbed={delta.get('perturbed')!r}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------

def digest_hash(payload: dict) -> str:
    """Stable content hash of one digest payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _rng_digest(sim: Simulator) -> Dict[str, str]:
    """Per-stream RNG positions: any reordering of draws shows up here."""
    out: Dict[str, str] = {}
    for name in sim.rng.names():
        state = repr(sim.rng.stream(name).getstate())
        out[name] = hashlib.sha256(state.encode("utf-8")).hexdigest()[:16]
    return out


def _store_digest(store) -> dict:
    levels = store.levels
    return {
        "memtable_entries": _rounded(store.memtable_entries),
        "memtable_bytes": store.memtable_bytes,
        "frozen": len(store._frozen),
        "levels": [
            [len(levels.level(i)), levels.level_bytes(i)]
            for i in range(levels.num_levels)
        ],
        "generation": store.generation,
        "flushes": store.stats.flush_count,
        "compactions": store.stats.compaction_count,
        "compaction_input_bytes": store.stats.compaction_input_bytes,
    }


def _flow_digest(flow) -> dict:
    return {
        "arrival_rate": _rounded(flow.arrival_rate),
        "queue": _rounded(flow.queue),
        "total_arrived": _rounded(flow.total_arrived),
        "total_served": _rounded(flow.total_served),
        "dropped": _rounded(flow.dropped_messages),
    }


def state_digest(job) -> dict:
    """Plain-data digest of a :class:`~repro.stream.engine.StreamJob`.

    Captures everything same-timestamp reordering could corrupt: LSM
    level shapes and memtable fill per store, fluid-flow offsets
    (arrived/served totals are the sim's analogue of consumer offsets),
    checkpoint bookkeeping (watermark: last completed time) and the
    position of every named RNG stream.
    """
    sim = job.sim
    stores = {}
    flows = {}
    for stage in job.stages:
        for instance in stage.instances:
            if instance.store is not None:
                stores[instance.name] = _store_digest(instance.store)
        for node_name in sorted(stage.flows):
            flows[f"{stage.name}@{node_name}"] = _flow_digest(
                stage.flows[node_name]
            )
    coordinator = job.coordinator
    return {
        "now": _rounded(sim.now),
        "stores": stores,
        "flows": flows,
        "checkpoints": {
            "triggered": len(coordinator.records),
            "completed": len(coordinator.completed),
            "aborted": len(coordinator.aborted),
            "watermark": _rounded(coordinator.last_completed_time()),
        },
        "rng": _rng_digest(sim),
    }


# ----------------------------------------------------------------------
# probing and diffing
# ----------------------------------------------------------------------

def _capture(probe: RaceProbe, digest: Callable[[], dict]) -> None:
    snapshot = digest()
    probe.snapshots.append(snapshot)
    probe.digests.append(digest_hash(snapshot))


def run_probe(
    factory: Callable[[str], ProbeTarget],
    duration_s: float,
    window_s: float,
    tie_break: str,
) -> RaceProbe:
    """Execute one instrumented run and collect its windowed digests."""
    target = factory(tie_break)
    probe = RaceProbe(tie_break=tie_break, window_s=window_s)
    windows = max(1, int(round(duration_s / window_s)))
    for index in range(1, windows + 1):
        target.sim.schedule(
            index * window_s,
            _capture,
            probe,
            target.digest,
            priority=DIGEST_PRIORITY,
        )
    probe.result = target.run(duration_s)
    probe.events = events_in_window(
        target.sim.tracer.events, float("-inf"), float("inf"),
        category="kernel",
    )
    probe.events_fired = target.sim.events_fired
    return probe


def _window_events(
    probe: RaceProbe, index: int
) -> List[TraceEvent]:
    """Kernel dispatches inside window *index* (1-based, ``(lo, hi]``)."""
    return events_in_window(
        probe.events, (index - 1) * probe.window_s, index * probe.window_s
    )


def _event_key(event: TraceEvent) -> tuple:
    return (round(event.ts, 9), event.name, event.args.get("priority", 0))


def _event_dict(event: Optional[TraceEvent]) -> Optional[dict]:
    if event is None:
        return None
    return {
        "name": event.name,
        "time": event.ts,
        "priority": event.args.get("priority", 0),
    }


def _snapshot_delta(base: dict, pert: dict, prefix: str = "") -> Dict[str, dict]:
    """Leaf-level diff of two digest payloads (component -> both values)."""
    delta: Dict[str, dict] = {}
    keys = sorted(set(base) | set(pert))
    for key in keys:
        label = f"{prefix}{key}"
        b, p = base.get(key), pert.get(key)
        if isinstance(b, dict) and isinstance(p, dict):
            delta.update(_snapshot_delta(b, p, prefix=f"{label}."))
        elif b != p:
            delta[label] = {"baseline": b, "perturbed": p}
    return delta


def diff_probes(
    baseline: RaceProbe, perturbed: RaceProbe, label: str = "", duration_s: float = 0.0
) -> RaceReport:
    """Compare two probes window by window; localize the first split."""
    windows = min(len(baseline.digests), len(perturbed.digests))
    report = RaceReport(
        label=label,
        duration_s=duration_s,
        window_s=baseline.window_s,
        windows=windows,
        baseline_tie_break=baseline.tie_break,
        perturbed_tie_break=perturbed.tie_break,
        events_fired=(baseline.events_fired, perturbed.events_fired),
    )
    divergent = [
        i
        for i in range(windows)
        if baseline.digests[i] != perturbed.digests[i]
    ]
    report.divergent_windows = len(divergent)
    if not divergent:
        return report
    first = divergent[0]
    base_events = _window_events(baseline, first + 1)
    pert_events = _window_events(perturbed, first + 1)
    position = 0
    conflict: Tuple[Optional[TraceEvent], Optional[TraceEvent]] = (None, None)
    for position in range(max(len(base_events), len(pert_events))):
        b = base_events[position] if position < len(base_events) else None
        p = pert_events[position] if position < len(pert_events) else None
        if (b is None) != (p is None) or (
            b is not None and p is not None and _event_key(b) != _event_key(p)
        ):
            conflict = (b, p)
            break
    report.divergences.append(
        RaceDivergence(
            window_index=first,
            window_start=first * baseline.window_s,
            window_end=(first + 1) * baseline.window_s,
            baseline_digest=baseline.digests[first],
            perturbed_digest=perturbed.digests[first],
            baseline_event=_event_dict(conflict[0]),
            perturbed_event=_event_dict(conflict[1]),
            event_index=position,
            state_delta=_snapshot_delta(
                baseline.snapshots[first], perturbed.snapshots[first]
            ),
        )
    )
    return report


def detect_races(
    factory: Callable[[str], ProbeTarget],
    duration_s: float,
    window_s: float = 2.0,
    label: str = "",
    perturbed_tie_break: str = "lifo",
) -> RaceReport:
    """Run *factory* under both tie-break orders and diff the digests.

    *factory* must build a fresh, identically-configured model for each
    call — it is invoked once per tie-break mode.  For event-level
    localization the model's tracer must record the ``"kernel"``
    category (``Tracer(categories={"kernel"})``); without it the report
    still flags divergent windows, just without the two event names.
    """
    baseline = run_probe(factory, duration_s, window_s, "fifo")
    perturbed = run_probe(factory, duration_s, window_s, perturbed_tie_break)
    return diff_probes(baseline, perturbed, label=label, duration_s=duration_s)


def job_probe_target(job) -> ProbeTarget:
    """Adapt a built :class:`~repro.stream.engine.StreamJob` to a probe."""
    return ProbeTarget(
        sim=job.sim,
        digest=lambda: state_digest(job),
        run=job.run,
    )


def experiment_factory(
    kind: str = "wordcount",
    seed: int = 1,
    interval_s: float = 8.0,
    storage: str = "tmpfs",
    mitigation=None,
    initial_l0="aligned",
    shards: int = 1,
) -> Callable[[str], ProbeTarget]:
    """A probe factory over the standard benchmark jobs.

    ``shards = G`` probes a 1/G cluster slice — the exact topology a
    sharded run (:mod:`repro.experiments.shard`) executes per worker —
    so the race detector covers the sharded mode too.
    """
    from ..apps.traffic_job import build_traffic_job
    from ..apps.wordcount_job import build_wordcount_job
    from ..storage.backend import profile_by_name

    profile = profile_by_name(storage)

    def factory(tie_break: str) -> ProbeTarget:
        tracer = Tracer(categories={"kernel"})
        if kind == "wordcount":
            job = build_wordcount_job(
                commit_interval_s=interval_s,
                mitigation=mitigation,
                storage=profile,
                seed=seed,
                tracer=tracer,
                tie_break=tie_break,
                scale=shards,
            )
        else:
            job = build_traffic_job(
                checkpoint_interval_s=interval_s,
                mitigation=mitigation,
                storage=profile,
                initial_l0=initial_l0,
                seed=seed,
                tracer=tracer,
                tie_break=tie_break,
                scale=shards,
            )
        return job_probe_target(job)

    return factory
