"""Declarative scenarios: workload x app x faults x resilience.

See :mod:`repro.scenarios.spec` for the :class:`ScenarioSpec` object,
:mod:`repro.scenarios.library` for the named catalog, and
:mod:`repro.scenarios.run` for the unified :func:`run_scenario` entry
point.
"""

from .library import (
    SCENARIOS,
    SOAK_POOL,
    sample_scenario,
    sample_scenarios,
    scenario,
    scenario_names,
)
from .run import (
    build_scenario_job,
    execute_scenario,
    resolve_scenario,
    run_scenario,
    scenario_shard_unit,
)
from .spec import APPS, ARRIVALS, ScenarioSpec, WorkloadSpec

__all__ = [
    "APPS",
    "ARRIVALS",
    "SCENARIOS",
    "SOAK_POOL",
    "ScenarioSpec",
    "WorkloadSpec",
    "build_scenario_job",
    "execute_scenario",
    "resolve_scenario",
    "run_scenario",
    "sample_scenario",
    "sample_scenarios",
    "scenario",
    "scenario_names",
    "scenario_shard_unit",
]
