"""Building and running scenarios — the unified entry point.

:func:`run_scenario` is the canonical way to execute anything in this
repo: it accepts a :class:`ScenarioSpec` (or a library name, or a
serialized dict), assembles the job through the same app builders the
legacy helpers used, injects the scenario's fault plan and resilience
config, and runs it.  ``repro.api.run_scenario`` re-exports it;
``run_traffic``/``run_wordcount`` are deprecated wrappers over it; the
parallel executor's scenario kind and the sharded path both funnel
through :func:`execute_scenario`.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import ConfigurationError
from ..storage.backend import profile_by_name
from ..stream.engine import StreamJob, StreamJobResult
from ..trace import Tracer
from .library import scenario
from .spec import ScenarioSpec

__all__ = [
    "resolve_scenario",
    "build_scenario_job",
    "execute_scenario",
    "run_scenario",
    "scenario_shard_unit",
]


def resolve_scenario(spec: Union[ScenarioSpec, str, dict]) -> ScenarioSpec:
    """Coerce a name / serialized dict / spec into a :class:`ScenarioSpec`."""
    if isinstance(spec, ScenarioSpec):
        return spec
    if isinstance(spec, str):
        return scenario(spec)
    if isinstance(spec, dict):
        return ScenarioSpec.from_dict(spec)
    raise ConfigurationError(
        f"expected a ScenarioSpec, library name, or dict; got {type(spec).__name__}"
    )


def build_scenario_job(
    spec: Union[ScenarioSpec, str, dict],
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    tie_break: str = "fifo",
    scale: int = 1,
) -> StreamJob:
    """Assemble the :class:`StreamJob` a scenario describes.

    Goes through the same app builders as the legacy entry points
    (:func:`~repro.apps.build_traffic_job` and friends), so a scenario
    with default workload knobs builds a bit-identical job to the old
    keyword-soup call.
    """
    spec = resolve_scenario(spec)
    workload = spec.workload
    common = dict(
        mitigation=spec.mitigation,
        storage=profile_by_name(spec.storage),
        seed=seed,
        tracer=tracer,
        tie_break=tie_break,
        scale=scale,
        source=workload.make_source(scale),
        skew=workload.skew,
        tenants=spec.tenants,
    )
    if spec.app == "traffic":
        from ..apps.traffic_job import build_traffic_job

        return build_traffic_job(
            checkpoint_interval_s=spec.interval_s,
            initial_l0=spec.initial_l0,
            **common,
        )
    if spec.app == "wordcount":
        from ..apps.wordcount_job import build_wordcount_job

        return build_wordcount_job(commit_interval_s=spec.interval_s, **common)
    from ..apps.join_job import build_join_job

    return build_join_job(
        checkpoint_interval_s=spec.interval_s,
        message_rate=workload.steady_rate(),
        window_s=spec.window_s,
        **common,
    )


def execute_scenario(
    spec: Union[ScenarioSpec, str, dict],
    settings=None,
    tracer: Optional[Tracer] = None,
    tie_break: str = "fifo",
    scale: int = 1,
    barrier_s: Optional[float] = None,
    faults=None,
    resilience=None,
) -> StreamJobResult:
    """Run one scenario to completion under *settings*.

    ``faults``/``resilience`` override the scenario's own plan/config
    when given (the soak harness injects its per-seed schedules this
    way); ``None`` keeps what the scenario declares.
    """
    from ..experiments.runner import DEFAULT_SETTINGS

    spec = resolve_scenario(spec)
    settings = DEFAULT_SETTINGS if settings is None else settings
    faults = spec.faults if faults is None else faults
    resilience = spec.resilience if resilience is None else resilience
    if spec.cluster is not None and scale > 1:
        raise ConfigurationError(
            "cluster scenarios cannot be sharded: membership changes and "
            "partition migrations couple the nodes, so a 1/scale slice is "
            "not independent; run with scale=1"
        )
    job = build_scenario_job(
        spec,
        seed=settings.seed,
        tracer=tracer if tracer is not None else settings.make_tracer(),
        tie_break=tie_break,
        scale=scale,
    )
    if spec.cluster is not None:
        from ..cluster import install_cluster

        install_cluster(job, spec.cluster)
    if faults is not None:
        from ..faults import inject_faults

        inject_faults(job, faults)
    if resilience is not None:
        from ..resilience import install_resilience

        install_resilience(job, resilience)
    return job.run(settings.duration_s, barrier_s=barrier_s)


def run_scenario(
    spec: Union[ScenarioSpec, str, dict],
    settings=None,
    tracer: Optional[Tracer] = None,
    tie_break: str = "fifo",
    scale: int = 1,
    barrier_s: Optional[float] = None,
) -> StreamJobResult:
    """The single public entry point: run a scenario, return its result.

    *spec* may be a :class:`ScenarioSpec`, a library name
    (``"diurnal_flash"``), or a serialized dict.  Measurement
    conventions come from *settings*
    (:class:`~repro.experiments.runner.ExperimentSettings`; the shared
    defaults when omitted).  ``scale``/``barrier_s`` are the sharded
    execution knobs, as everywhere else.
    """
    return execute_scenario(
        spec,
        settings=settings,
        tracer=tracer,
        tie_break=tie_break,
        scale=scale,
        barrier_s=barrier_s,
    )


def scenario_shard_unit(spec: Union[ScenarioSpec, str, dict]):
    """What a shard count must divide for this scenario's deployment.

    Returns ``(whole, what, stages)`` — the node/core count, its name
    for error messages, and the (tenantized) stage tuple whose
    parallelism :func:`~repro.experiments.shard.plan_shards` checks.
    """
    from ..apps.join_job import JOIN_STAGES
    from ..apps.tenancy import tenantize
    from ..apps.traffic_job import TRAFFIC_STAGES
    from ..apps.wordcount_job import WORDCOUNT_STAGES

    spec = resolve_scenario(spec)
    if spec.cluster is not None:
        raise ConfigurationError(
            f"scenario {spec.name or '<ad hoc>'} uses the elastic cluster "
            "layer and cannot be sharded"
        )
    if spec.app == "wordcount":
        whole, what, stages = 16, "cores", WORDCOUNT_STAGES
    elif spec.app == "join":
        whole, what, stages = 4, "node groups", JOIN_STAGES
    else:
        whole, what, stages = 4, "node groups", TRAFFIC_STAGES
    return whole, what, tenantize(stages, spec.tenants)
