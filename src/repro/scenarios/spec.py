"""The declarative scenario description.

A :class:`ScenarioSpec` composes everything that defines one experiment
*situation* — the workload (arrival process, key distribution), the
app/topology, the fault schedule, and the resilience configuration —
into a single frozen, serializable object.  It is plain data end to
end: it round-trips through :mod:`repro.serialize`, pickles through the
parallel executor, and hashes canonically into the result-cache key, so
a scenario run is exactly as reproducible and cacheable as the
hand-wired experiments it replaces.

Measurement conventions (duration, warmup, seed) deliberately stay
*outside* the scenario, in
:class:`~repro.experiments.runner.ExperimentSettings`: the same
scenario is run at many durations and seeds, and the library entries
stay seed-free.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple, Union

from ..cluster.spec import ClusterSpec
from ..compat import keyword_only
from ..core.mitigation import MitigationPlan
from ..errors import ConfigurationError
from ..faults.plan import FaultPlan
from ..resilience.config import ResilienceConfig
from ..serialize import register
from ..storage.backend import profile_by_name
from ..stream.sources import (
    ClosedLoopSource,
    ConstantSource,
    DiurnalSource,
    PiecewiseSource,
)

__all__ = ["ARRIVALS", "APPS", "WorkloadSpec", "ScenarioSpec"]

#: Supported arrival processes.
ARRIVALS = ("constant", "piecewise", "diurnal", "closed_loop")

#: Supported app topologies.
APPS = ("traffic", "wordcount", "join")


def _tupled(entries) -> tuple:
    """Deep list→tuple coercion (JSON round-trips turn tuples to lists)."""
    return tuple(tuple(entry) for entry in entries)


@register
@keyword_only
@dataclass(frozen=True)
class WorkloadSpec:
    """The arrival process and key distribution of a scenario.

    Open-loop kinds (``constant``, ``piecewise``, ``diurnal``) push a
    rate regardless of system state; ``closed_loop`` models a fixed
    client population whose offered rate self-limits with latency.
    ``skew`` is the key-distribution axis: each ``(at_s, hot_fraction,
    hot_node)`` entry re-weights the ingest so *hot_fraction* of the
    source traffic lands on one node from that time on — a hot-key
    shift, not a rate change.
    """

    arrival: str = "constant"
    #: Base (constant) or peak (diurnal) message rate, msgs/s.
    rate: float = 60000.0
    #: ``piecewise``: ``((at_s, rate), ...)`` ascending.
    schedule: Tuple[Tuple[float, float], ...] = ()
    #: ``diurnal``: oscillation period and trough depth.
    period_s: float = 240.0
    trough_factor: float = 0.3
    #: ``diurnal``: flash crowds ``((at_s, duration_s, multiplier), ...)``.
    bursts: Tuple[Tuple[float, float, float], ...] = ()
    steps_per_period: int = 24
    #: ``closed_loop``: client population and per-client timing.
    clients: int = 0
    think_time_s: float = 1.0
    base_service_s: float = 0.002
    control_interval_s: float = 1.0
    #: Hot-key schedule ``((at_s, hot_fraction, hot_node), ...)``.
    skew: Tuple[Tuple[float, float, int], ...] = ()

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVALS:
            raise ConfigurationError(
                f"unknown arrival {self.arrival!r}; expected one of {ARRIVALS}"
            )
        object.__setattr__(self, "schedule", _tupled(self.schedule))
        object.__setattr__(self, "bursts", _tupled(self.bursts))
        object.__setattr__(self, "skew", _tupled(self.skew))
        if self.rate < 0:
            raise ConfigurationError("workload rate must be >= 0")
        if self.arrival == "piecewise" and not self.schedule:
            raise ConfigurationError("piecewise arrival needs a schedule")
        if self.arrival == "closed_loop" and self.clients < 1:
            raise ConfigurationError("closed_loop arrival needs clients >= 1")
        for entry in self.skew:
            if len(entry) != 3:
                raise ConfigurationError(
                    "skew entries are (at_s, hot_fraction, hot_node)"
                )
            at_s, hot_fraction, hot_node = entry
            if at_s < 0:
                raise ConfigurationError("skew at_s must be >= 0")
            if not 0.0 <= hot_fraction <= 1.0:
                raise ConfigurationError("skew hot_fraction must be in [0, 1]")
            if int(hot_node) < 0:
                raise ConfigurationError("skew hot_node must be >= 0")

    def steady_rate(self) -> float:
        """The provisioning rate (used e.g. to size windowed-join state)."""
        if self.arrival == "piecewise":
            return self.schedule[-1][1]
        if self.arrival == "closed_loop":
            return self.clients / (self.think_time_s + self.base_service_s)
        return self.rate

    def make_source(self, scale: int = 1):
        """Build the source object driving a (1/*scale* slice of a) job."""
        if self.arrival == "constant":
            return ConstantSource(self.rate / scale)
        if self.arrival == "piecewise":
            return PiecewiseSource(
                [(at_s, rate / scale) for at_s, rate in self.schedule]
            )
        if self.arrival == "diurnal":
            return DiurnalSource(
                base_rate=self.rate / scale,
                period_s=self.period_s,
                trough_factor=self.trough_factor,
                bursts=self.bursts,
                steps_per_period=self.steps_per_period,
            )
        return ClosedLoopSource(
            clients=max(1, self.clients // scale),
            think_time_s=self.think_time_s,
            base_service_s=self.base_service_s,
            interval_s=self.control_interval_s,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> WorkloadSpec:
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})


@register
@keyword_only
@dataclass(frozen=True)
class ScenarioSpec:
    """One named experiment situation, fully described by plain data."""

    name: str = ""
    app: str = "traffic"
    #: Presentation only — excluded from the cache key, like
    #: :attr:`RunSpec.label`.
    description: str = ""
    workload: WorkloadSpec = WorkloadSpec()
    #: Checkpoint (traffic/join) or commit (wordcount) interval.
    interval_s: float = 8.0
    #: Initial L0 phase; only the traffic app consumes it.
    initial_l0: Union[str, Dict[str, int]] = "aligned"
    storage: str = "tmpfs"
    mitigation: Optional[MitigationPlan] = None
    faults: Optional[FaultPlan] = None
    resilience: Optional[ResilienceConfig] = None
    #: Copies of the app chain sharing the nodes (repro.apps.tenancy).
    tenants: int = 1
    #: Join-app buffering horizon (its state size is rate x window).
    window_s: float = 30.0
    #: Elastic cluster layer (repro.cluster): membership schedule,
    #: failure detector and migration pacing.  ``None`` = static
    #: topology; serialized (and cache-keyed) only when set, so legacy
    #: scenario keys are untouched.
    cluster: Optional["ClusterSpec"] = None

    def __post_init__(self) -> None:
        if self.app not in APPS:
            raise ConfigurationError(
                f"unknown app {self.app!r}; expected one of {APPS}"
            )
        profile_by_name(self.storage)  # raises on unknown profiles
        if self.tenants < 1:
            raise ConfigurationError("tenants must be >= 1")
        if self.window_s <= 0:
            raise ConfigurationError("window_s must be > 0")
        if isinstance(self.workload, dict):
            object.__setattr__(
                self, "workload", WorkloadSpec.from_dict(self.workload)
            )
        if isinstance(self.mitigation, dict):
            names = {f for f in MitigationPlan.__dataclass_fields__}
            object.__setattr__(
                self,
                "mitigation",
                MitigationPlan(
                    **{k: v for k, v in self.mitigation.items() if k in names}
                ),
            )
        if isinstance(self.faults, dict):
            object.__setattr__(self, "faults", FaultPlan.from_dict(self.faults))
        if isinstance(self.resilience, dict):
            object.__setattr__(
                self, "resilience", ResilienceConfig.from_dict(self.resilience)
            )
        elif self.resilience is True:
            from ..resilience.config import DEFAULT_RESILIENCE

            object.__setattr__(self, "resilience", DEFAULT_RESILIENCE)
        if isinstance(self.cluster, dict):
            from ..cluster.spec import ClusterSpec

            object.__setattr__(
                self, "cluster", ClusterSpec.from_dict(self.cluster)
            )

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "app": self.app,
            "description": self.description,
            "workload": self.workload.to_dict(),
            "interval_s": self.interval_s,
            "initial_l0": self.initial_l0,
            "storage": self.storage,
            "mitigation": (
                None if self.mitigation is None else asdict(self.mitigation)
            ),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "resilience": (
                None if self.resilience is None else self.resilience.to_dict()
            ),
            "tenants": self.tenants,
            "window_s": self.window_s,
        }
        # only serialized when set: keeps every pre-cluster scenario's
        # dict — and therefore its cache key — byte-identical
        if self.cluster is not None:
            payload["cluster"] = self.cluster.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> ScenarioSpec:
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})

    def key_dict(self) -> dict:
        """Canonical content for cache hashing.

        ``name`` and ``description`` are presentation and excluded, so
        an ad-hoc spec with identical content shares the library entry's
        cache address.
        """
        payload = self.to_dict()
        payload.pop("name")
        payload.pop("description")
        return payload

    def with_faults(self, faults: Optional[FaultPlan]) -> ScenarioSpec:
        """A copy running under a different fault plan."""
        from dataclasses import replace

        return replace(self, faults=faults)
