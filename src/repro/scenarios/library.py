"""The named scenario library.

Each entry is a fully-specified :class:`~repro.scenarios.spec.ScenarioSpec`
exercising one axis of the space where ShadowSync's hidden
synchronization shows up (the Pulsar enterprise-benchmark methodology is
the template for the matrix: rate shape x key distribution x topology x
tenancy x client loop).  The catalog with per-scenario intent and
expected tail behavior lives in EXPERIMENTS.md.

``repro soak`` samples from :data:`SOAK_POOL` (the steady-baseline
subset whose recovery audits are meaningful) with the seeded
:func:`sample_scenario`, so the chaos harness sweeps the scenario space
instead of hammering one pipeline.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..cluster.spec import ClusterSpec, MembershipEvent
from ..errors import ConfigurationError, did_you_mean
from ..faults.plan import FaultPlan, FaultSpec
from .spec import ScenarioSpec, WorkloadSpec

__all__ = [
    "SCENARIOS",
    "SOAK_POOL",
    "scenario",
    "scenario_names",
    "sample_scenario",
    "sample_scenarios",
]


def _build_library() -> dict:
    entries = (
        ScenarioSpec(
            name="baseline_traffic",
            app="traffic",
            description=(
                "The paper's 4-node traffic-jam pipeline at a steady "
                "60k msg/s — the reference deployment every other "
                "scenario perturbs."
            ),
        ),
        ScenarioSpec(
            name="baseline_wordcount",
            app="wordcount",
            description=(
                "Single-node Kafka Streams WordCount at 25k sentences/s "
                "(commit-triggered RocksDB flushes)."
            ),
            workload=WorkloadSpec(arrival="constant", rate=25000.0),
        ),
        ScenarioSpec(
            name="diurnal_flash",
            app="traffic",
            description=(
                "Diurnal load (troughs to 40% of peak, 4-minute period) "
                "with two flash crowds; uneven flush pressure across the "
                "cycle desynchronizes L0 counters between stages."
            ),
            workload=WorkloadSpec(
                arrival="diurnal",
                rate=60000.0,
                period_s=240.0,
                trough_factor=0.4,
                bursts=((90.0, 20.0, 1.5), (150.0, 15.0, 1.7)),
            ),
        ),
        ScenarioSpec(
            name="hotkey_shift",
            app="traffic",
            description=(
                "Steady rate but a hot key range pins 30% of ingest "
                "(1.2x the fair share) to one node, shifting to another "
                "node mid-run; the hot node's flushes desynchronize from "
                "the rest of the cluster's checkpoint-aligned "
                "maintenance."
            ),
            workload=WorkloadSpec(
                arrival="constant",
                rate=60000.0,
                skew=((40.0, 0.30, 0), (120.0, 0.30, 2)),
            ),
        ),
        ScenarioSpec(
            name="windowed_join",
            app="join",
            description=(
                "Two-input windowed ad-attribution join with downstream "
                "sessionization; append-heavy window state makes flushes "
                "large and both branches must align on every barrier."
            ),
            workload=WorkloadSpec(arrival="constant", rate=32000.0),
            window_s=30.0,
        ),
        ScenarioSpec(
            name="closed_loop",
            app="traffic",
            description=(
                "A fixed population of 60k closed-loop clients (1s think "
                "time): the offered rate self-limits when the tail grows, "
                "hiding overload that an open-loop run would expose "
                "(coordinated omission)."
            ),
            workload=WorkloadSpec(
                arrival="closed_loop",
                clients=60000,
                think_time_s=1.0,
                base_service_s=0.002,
            ),
        ),
        ScenarioSpec(
            name="multi_tenant",
            app="traffic",
            description=(
                "Four copies of the traffic pipeline sharing the 4 nodes "
                "(16 instances each); every tenant's checkpoint-"
                "synchronized flushes land in the shared background "
                "pools — the noisy-neighbor variant of ShadowSync."
            ),
            workload=WorkloadSpec(arrival="constant", rate=60000.0),
            tenants=4,
        ),
        ScenarioSpec(
            name="elastic_scale",
            app="traffic",
            description=(
                "Elastic 4->8->4 traffic pipeline under diurnal load: "
                "four nodes join at 60s, four leave at 150s, and one "
                "node crashes mid-run at 110s — every partition move is "
                "a checkpoint-shipped migration audited for single "
                "ownership and no lost state (repro.cluster)."
            ),
            workload=WorkloadSpec(
                arrival="diurnal",
                rate=60000.0,
                period_s=240.0,
                trough_factor=0.4,
            ),
            cluster=ClusterSpec(
                events=(
                    MembershipEvent(action="join", at_s=60.0, count=4),
                    MembershipEvent(action="leave", at_s=150.0, count=4),
                ),
            ),
            faults=FaultPlan(
                name="elastic-mid-run-crash",
                faults=(
                    FaultSpec(
                        kind="node_crash", at_s=110.0, duration_s=3.0, node=1
                    ),
                ),
            ),
        ),
    )
    return {entry.name: entry for entry in entries}


#: Name -> :class:`ScenarioSpec` of every library scenario.
SCENARIOS = _build_library()

#: The soak sampler's pool: scenarios with a stationary healthy baseline
#: so the per-fault-window recovery audit is meaningful.  The diurnal,
#: closed-loop and hot-key-shift workloads move on their own mid-run and
#: would fail a fixed pre-fault-baseline recovery check for workload
#: reasons, not resilience bugs — run those through ``repro run
#: --scenario`` instead.
SOAK_POOL = (
    "baseline_traffic",
    "baseline_wordcount",
    "windowed_join",
    "multi_tenant",
)


def scenario(name: str) -> ScenarioSpec:
    """The library scenario registered under *name*.

    Unknown names raise :class:`ConfigurationError` with a
    did-you-mean suggestion list, so CLI typos exit cleanly instead of
    dumping a ``KeyError`` traceback.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        hint = did_you_mean(name, SCENARIOS)
        raise ConfigurationError(
            f"unknown scenario {name!r}{hint}; available: {sorted(SCENARIOS)}"
        ) from None


def scenario_names() -> List[str]:
    """All library scenario names, sorted."""
    return sorted(SCENARIOS)


def sample_scenario(
    seed: int, pool: Sequence[str] = SOAK_POOL, salt: int = 0
) -> ScenarioSpec:
    """Deterministically pick one pool scenario for *seed*.

    The draw is a pure function of ``(seed, salt)``: the soak harness
    uses the run seed, so re-running a soak re-runs the same scenarios
    (and hits the result cache)."""
    if not pool:
        raise ConfigurationError("scenario pool must not be empty")
    rng = random.Random(100003 * salt + seed)
    return scenario(rng.choice(list(pool)))


def sample_scenarios(
    seeds: Sequence[int], pool: Sequence[str] = SOAK_POOL, salt: int = 0
) -> List[ScenarioSpec]:
    """One deterministic pool draw per seed."""
    return [sample_scenario(seed, pool=pool, salt=salt) for seed in seeds]
