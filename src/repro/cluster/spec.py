"""Declarative cluster membership and migration configuration.

A :class:`ClusterSpec` describes everything the elastic cluster layer
needs as plain, frozen data: how often nodes heartbeat, when the
phi-accrual failure detector suspects a silent node, how partition
transfers are paced (bandwidth, retry policy, deadline, circuit
breaker), and the scheduled membership events (scale-out joins and
graceful leaves).  Like every other spec in this repo it round-trips
through :mod:`repro.serialize` and hashes into the experiment cache
key, so an elastic run is exactly as reproducible and cacheable as a
static one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..compat import keyword_only
from ..errors import ConfigurationError
from ..resilience.policies import RetryPolicy
from ..serialize import register

__all__ = ["MEMBERSHIP_ACTIONS", "NodeSpec", "MembershipEvent", "ClusterSpec"]

#: Supported scheduled membership actions.
MEMBERSHIP_ACTIONS = ("join", "leave")


@register
@keyword_only
@dataclass(frozen=True)
class NodeSpec:
    """Shape of the worker nodes a scale-out event adds.

    ``cores = 0`` inherits the job's :class:`~repro.config.ClusterConfig`
    core count, so homogeneous scale-out needs no configuration.
    """

    cores: int = 0

    def __post_init__(self) -> None:
        if self.cores < 0:
            raise ConfigurationError(f"node cores must be >= 0, got {self.cores}")

    def to_dict(self) -> dict:
        return {"cores": self.cores}

    @classmethod
    def from_dict(cls, data: dict) -> "NodeSpec":
        return cls(cores=int(data.get("cores", 0)))


@register
@keyword_only
@dataclass(frozen=True)
class MembershipEvent:
    """One scheduled membership change: *count* nodes join or leave at
    *at_s*.  Leaves retire the highest-named live nodes after draining
    their partitions through live migration."""

    action: str = "join"
    at_s: float = 0.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.action not in MEMBERSHIP_ACTIONS:
            raise ConfigurationError(
                f"unknown membership action {self.action!r}; expected one of "
                f"{MEMBERSHIP_ACTIONS}"
            )
        if self.at_s < 0:
            raise ConfigurationError(f"membership at_s must be >= 0, got {self.at_s}")
        if self.count < 1:
            raise ConfigurationError(f"membership count must be >= 1, got {self.count}")

    def to_dict(self) -> dict:
        return {"action": self.action, "at_s": self.at_s, "count": self.count}

    @classmethod
    def from_dict(cls, data: dict) -> "MembershipEvent":
        return cls(
            action=data.get("action", "join"),
            at_s=float(data.get("at_s", 0.0)),
            count=int(data.get("count", 1)),
        )


@register
@keyword_only
@dataclass(frozen=True)
class ClusterSpec:
    """Configuration of the elastic cluster layer for one run."""

    #: Expected node count at install time; 0 accepts whatever the app
    #: built (the paper's 4-node layout for the traffic app).
    initial_nodes: int = 0
    #: Shape of nodes added by ``join`` events.
    node: NodeSpec = NodeSpec()
    #: Heartbeat cadence; the detector samples on the same tick.
    heartbeat_interval_s: float = 0.5
    #: Phi-accrual suspicion threshold (Akka's default neighborhood);
    #: phi 8 means the silence had probability 1e-8 under the observed
    #: inter-arrival distribution.
    phi_threshold: float = 8.0
    #: Regularized lower bound on the inter-arrival stddev — with
    #: jitterless simulated heartbeats the sample stddev is zero and
    #: phi would be a step function.
    min_std_s: float = 0.05
    #: Heartbeat history window per node.
    history_window: int = 16
    #: Snapshot transfer bandwidth between nodes (and from the durable
    #: checkpoint store during failover).
    migration_bandwidth_mb_s: float = 200.0
    #: Stop-the-world pause at the ownership flip (the destination
    #: replays the delta and opens its local store).
    handover_pause_s: float = 0.05
    #: Per-migration transfer deadline (the whole retry loop must beat
    #: it); expired transfers fail the migration.
    transfer_deadline_s: float = 15.0
    #: Backoff policy for failed transfer attempts.
    retry: RetryPolicy = RetryPolicy(
        max_attempts=4, base_delay_s=0.25, multiplier=2.0,
        max_delay_s=4.0, jitter=0.2,
    )
    #: Per-destination circuit breaker: this many consecutive transfer
    #: failures stop new attempts toward that node until the reset.
    breaker_failures: int = 3
    breaker_reset_s: float = 5.0
    #: Concurrency cap on in-flight partition migrations.
    max_parallel_migrations: int = 4
    #: Rebalance partitions back onto a node that rejoins after a crash
    #: or a healed partition (scale-out joins always rebalance).
    rebalance_on_rejoin: bool = True
    #: Scheduled membership changes.
    events: Tuple[MembershipEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.initial_nodes < 0:
            raise ConfigurationError("initial_nodes must be >= 0")
        if self.heartbeat_interval_s <= 0:
            raise ConfigurationError("heartbeat_interval_s must be > 0")
        if self.phi_threshold <= 0:
            raise ConfigurationError("phi_threshold must be > 0")
        if self.min_std_s <= 0:
            raise ConfigurationError("min_std_s must be > 0")
        if self.history_window < 2:
            raise ConfigurationError("history_window must be >= 2")
        if self.migration_bandwidth_mb_s <= 0:
            raise ConfigurationError("migration_bandwidth_mb_s must be > 0")
        if self.handover_pause_s < 0:
            raise ConfigurationError("handover_pause_s must be >= 0")
        if self.transfer_deadline_s <= 0:
            raise ConfigurationError("transfer_deadline_s must be > 0")
        if self.breaker_failures < 1:
            raise ConfigurationError("breaker_failures must be >= 1")
        if self.breaker_reset_s < 0:
            raise ConfigurationError("breaker_reset_s must be >= 0")
        if self.max_parallel_migrations < 1:
            raise ConfigurationError("max_parallel_migrations must be >= 1")
        if isinstance(self.node, dict):
            object.__setattr__(self, "node", NodeSpec.from_dict(self.node))
        if isinstance(self.retry, dict):
            object.__setattr__(self, "retry", RetryPolicy.from_dict(self.retry))
        coerced = tuple(
            event if isinstance(event, MembershipEvent)
            else MembershipEvent.from_dict(dict(event))
            for event in self.events
        )
        object.__setattr__(self, "events", coerced)

    def to_dict(self) -> dict:
        return {
            "initial_nodes": self.initial_nodes,
            "node": self.node.to_dict(),
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "phi_threshold": self.phi_threshold,
            "min_std_s": self.min_std_s,
            "history_window": self.history_window,
            "migration_bandwidth_mb_s": self.migration_bandwidth_mb_s,
            "handover_pause_s": self.handover_pause_s,
            "transfer_deadline_s": self.transfer_deadline_s,
            "retry": self.retry.to_dict(),
            "breaker_failures": self.breaker_failures,
            "breaker_reset_s": self.breaker_reset_s,
            "max_parallel_migrations": self.max_parallel_migrations,
            "rebalance_on_rejoin": self.rebalance_on_rejoin,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        names = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in names})
