"""Elastic cluster layer: membership, failure detection, migration.

See :mod:`repro.cluster.coordinator` for the moving parts.  Install on
a built job with::

    from repro.cluster import ClusterSpec, MembershipEvent, install_cluster

    install_cluster(job, ClusterSpec(events=(
        MembershipEvent(action="join", at_s=60.0, count=4),
        MembershipEvent(action="leave", at_s=150.0, count=4),
    )))
"""

from .coordinator import ClusterManager, install_cluster, state_digest
from .detector import PhiAccrualDetector
from .spec import MEMBERSHIP_ACTIONS, ClusterSpec, MembershipEvent, NodeSpec

__all__ = [
    "MEMBERSHIP_ACTIONS",
    "ClusterManager",
    "ClusterSpec",
    "MembershipEvent",
    "NodeSpec",
    "PhiAccrualDetector",
    "install_cluster",
    "state_digest",
]
