"""The cluster coordinator: membership, placement and state migration.

:class:`ClusterManager` owns the partition→node assignment of a built
:class:`~repro.stream.engine.StreamJob` and drives the node lifecycle
on top of the sim kernel:

* **Heartbeats + failure detection.**  One kernel event per
  ``heartbeat_interval_s`` samples every live node into the
  phi-accrual detector; a node silenced by a crash or network
  partition accrues suspicion and is *fenced* (checkpoints aborted,
  data plane frozen, queued inputs shed) once phi crosses the
  threshold — graceful degradation: only the fenced node's keys stop,
  everything else keeps flowing.
* **Scheduled membership.**  ``ClusterSpec.events`` joins fresh worker
  nodes (engine topology grows mid-run) and drains/retires leaving
  ones, each followed by a keyed rebalance toward an even spread.
* **State migration.**  Moving a partition means checkpoint-snapshot →
  transfer (bandwidth-paced, with RetryPolicy backoff, a Deadline and
  a per-destination CircuitBreaker from :mod:`repro.resilience`) →
  restore on the destination → atomic ownership flip (single event
  time: host maps, flows and the ownership log move together).
  Planned migrations (rebalance/drain) ship a live snapshot; failover
  ships the newest *completed* checkpoint from the durable store and
  replays the delta since its trigger time, exactly like crash
  recovery.

Every decision runs on the sim clock with a named RNG stream, so an
elastic run is as deterministic and byte-stable as a static one.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SimulationError
from ..resilience.policies import CircuitBreaker, Deadline
from ..sim.events import HIGH_PRIORITY
from ..sim.process import spawn
from .detector import PhiAccrualDetector
from .spec import ClusterSpec, MembershipEvent

__all__ = ["ClusterManager", "install_cluster", "state_digest"]

#: Poll step while waiting for an instance's in-flight flush to drain
#: before an ownership flip.
_FLUSH_DRAIN_POLL_S = 0.05


def state_digest(snapshot: Optional[dict]) -> str:
    """Shape digest of a store snapshot: per-level table count and
    logical bytes.  The WAL frontier is deliberately excluded — the
    destination replays the WAL tail, so its frontier legitimately
    advances past the snapshot's."""
    if snapshot is None:
        return "cold"
    parts = []
    for level in snapshot.get("levels", []):
        parts.append(
            f"{len(level)}/{int(sum(t.logical_bytes for t in level))}"
        )
    return "|".join(parts) if parts else "empty"


def install_cluster(job, spec: ClusterSpec) -> "ClusterManager":
    """Install the elastic cluster layer on a built (unstarted) job."""
    if getattr(job, "cluster_manager", None) is not None:
        raise SimulationError("cluster layer already installed")
    if spec.initial_nodes and spec.initial_nodes != len(job.nodes):
        raise ConfigurationError(
            f"ClusterSpec.initial_nodes={spec.initial_nodes} but the job "
            f"was built with {len(job.nodes)} nodes"
        )
    manager = ClusterManager(job, spec)
    job.cluster_manager = manager
    manager.start()
    return manager


class ClusterManager:
    """Deterministic membership + placement layer for one job."""

    def __init__(self, job, spec: ClusterSpec) -> None:
        self.job = job
        self.sim = job.sim
        self.spec = spec
        self.detector = PhiAccrualDetector(
            spec.heartbeat_interval_s,
            spec.phi_threshold,
            spec.min_std_s,
            spec.history_window,
        )
        self._rng = self.sim.rng.stream("cluster")
        #: Names of nodes currently part of the cluster.
        self.live: List[str] = [node.name for node in job.nodes]
        self.retired: List[str] = []
        #: Nodes currently under a crash fault (process down).
        self.down: set = set()
        #: Nodes currently cut off by a network partition.
        self.partitioned: set = set()
        #: Nodes being drained for a scheduled leave.
        self.retiring: set = set()
        #: Fenced nodes: name -> {"start": t, ...}; data plane frozen.
        self.fenced: Dict[str, dict] = {}
        #: Time each fenced node went silent (failover replay anchor).
        self._fence_time: Dict[str, float] = {}
        #: partition (instance name) -> owning node name.
        self.owner: Dict[str, str] = {}
        #: Append-only flips: each entry's ``from`` equals the previous
        #: entry's ``to`` for that partition (audited by the
        #: single-owner invariant).
        self.ownership_log: List[dict] = []
        #: One dict per migration attempt chain (see _new_migration).
        self.migrations: List[dict] = []
        #: ``(label, start, end)`` rebalance/failover windows for
        #: millibottleneck spike attribution.
        self.windows: List[Tuple[str, float, float]] = []
        self.membership_log: List[dict] = []
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._active_migrations = 0
        self._migration_queue: Deque[dict] = deque()
        self._plans: Dict[int, dict] = {}
        self._next_plan_id = 0
        self._next_migration_id = 0
        self._node_seq = len(job.nodes)
        for stage in job.stages:
            for instance in stage.instances:
                self.owner[instance.name] = instance.node.name

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        now = self.sim.now
        for name in sorted(self.live):
            self.detector.register(name, now)
        for event in self.spec.events:
            self.sim.schedule(
                event.at_s, self._membership_event, event,
                priority=HIGH_PRIORITY,
            )
        spawn(
            self.sim,
            self._membership_loop(),
            name="cluster-membership",
            priority=HIGH_PRIORITY,
        )

    def _membership_loop(self):
        interval = self.spec.heartbeat_interval_s
        while True:
            yield interval
            now = self.sim.now
            for name in sorted(self.live):
                if self._heartbeating(name):
                    if self.detector.heartbeat(name, now):
                        self._on_revive(name)
            for name in self.detector.tracked():
                phi = self.detector.check(name, now)
                if phi is not None:
                    self._on_suspect(name, phi)

    def _heartbeating(self, name: str) -> bool:
        """A node heartbeats while its process is up and reachable.
        (A *fenced* node still heartbeats — fencing is a control-plane
        quarantine; its revival is what lifts the fence.)"""
        return name not in self.down and name not in self.partitioned

    # ------------------------------------------------------------------
    # node lookup helpers
    # ------------------------------------------------------------------

    def _node(self, name: str):
        return self.job._node(name)

    def _healthy(self, name: str) -> bool:
        return (
            name in self.live
            and name not in self.down
            and name not in self.partitioned
            and name not in self.fenced
            and not self._node(name).crashed
        )

    def _placement_candidates(self) -> List[str]:
        return [
            name for name in sorted(self.live)
            if self._healthy(name) and name not in self.retiring
        ]

    def _hosted_count(self, name: str) -> int:
        return sum(
            len(stage.instances_by_node.get(name, ()))
            for stage in self.job.stages
        )

    def _inbound_count(self, name: str) -> int:
        return sum(
            1 for m in self.migrations
            if m["dest"] == name and m["status"] in ("pending", "transferring")
        )

    def _least_loaded(self, candidates: List[str],
                      exclude: str = "") -> Optional[str]:
        best = None
        for name in candidates:
            if name == exclude:
                continue
            # physical hosting alone is stale while a plan is being laid
            # out (flips happen later), so count inbound transfers too —
            # otherwise a whole failover lands on a single survivor
            load = self._hosted_count(name) + self._inbound_count(name)
            if best is None or load < best[0]:
                best = (load, name)
        return None if best is None else best[1]

    def _breaker(self, dest: str) -> CircuitBreaker:
        breaker = self._breakers.get(dest)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.spec.breaker_failures,
                reset_timeout_s=self.spec.breaker_reset_s,
                name=f"transfer-to-{dest}",
            )
            self._breakers[dest] = breaker
        return breaker

    def _instant(self, name: str, tid: str, **fields) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(name, "cluster", self.sim.now, tid=tid, **fields)

    # ------------------------------------------------------------------
    # scheduled membership
    # ------------------------------------------------------------------

    def _membership_event(self, event: MembershipEvent) -> None:
        if event.action == "join":
            self.node_join(event.count)
        else:
            self.node_leave(event.count)

    def node_join(self, count: int = 1) -> List[str]:
        """Add *count* fresh worker nodes and rebalance onto them."""
        added = []
        for _ in range(count):
            name = f"node{self._node_seq}"
            self._node_seq += 1
            cores = self.spec.node.cores or self.job.cluster.cores_per_node
            self.job.add_worker_node(name, cores)
            self.live.append(name)
            self.detector.register(name, self.sim.now)
            added.append(name)
            self.membership_log.append(
                {"event": "join", "node": name, "time": self.sim.now}
            )
            self._instant("node-join", name, cores=cores)
        self.rebalance(f"scale-out:+{count}")
        return added

    def node_leave(self, count: int = 1) -> List[str]:
        """Drain and retire the *count* highest-named healthy nodes."""
        victims = [
            name for name in sorted(self.live)
            if self._healthy(name) and name not in self.retiring
        ]
        keep_at_least = 1
        count = min(count, max(0, len(victims) - keep_at_least))
        victims = victims[len(victims) - count:]
        if not victims:
            return []
        plan = self._open_plan(f"scale-in:-{count}")
        for name in victims:
            self.retiring.add(name)
            self.membership_log.append(
                {"event": "leave-begin", "node": name, "time": self.sim.now}
            )
            self._instant("node-drain", name)
        for name in victims:
            node = self._node(name)
            for instance in self._hosted_instances(node):
                dest = self._least_loaded(
                    self._placement_candidates(), exclude=name
                )
                if dest is None:
                    # nowhere to drain to; the node stays until the
                    # cluster has capacity again
                    continue
                self._enqueue_migration(instance, dest, "drain", plan)
        self._close_plan_if_empty(plan)
        for name in victims:
            self._retire_if_empty(name)
        return victims

    def _hosted_instances(self, node) -> List:
        hosted = []
        for stage in self.job.stages:
            hosted.extend(stage.instances_by_node.get(node.name, ()))
        return hosted

    def _retire_if_empty(self, name: str) -> None:
        if name not in self.retiring:
            return
        if self._hosted_count(name):
            return
        self.retiring.discard(name)
        if name in self.live:
            self.live.remove(name)
        self.retired.append(name)
        self.detector.deregister(name)
        self.membership_log.append(
            {"event": "leave", "node": name, "time": self.sim.now}
        )
        self._instant("node-leave", name)

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------

    def rebalance(self, reason: str) -> int:
        """Move partitions toward an even spread over healthy nodes.

        Per stage: target = floor/ceil split over the placement
        candidates (sorted by name); surplus nodes give up their
        highest-index instances first.  Returns the number of
        migrations scheduled.
        """
        targets = self._placement_candidates()
        if not targets:
            return 0
        plan = self._open_plan(f"rebalance:{reason}")
        moves = 0
        for stage in self.job.stages:
            movable = sum(
                len(stage.instances_by_node.get(name, ())) for name in targets
            )
            if not movable:
                continue
            base, extra = divmod(movable, len(targets))
            want = {
                name: base + (1 if i < extra else 0)
                for i, name in enumerate(targets)
            }
            surplus: List = []
            for name in targets:
                hosted = list(stage.instances_by_node.get(name, ()))
                excess = len(hosted) - want[name]
                if excess > 0:
                    picked = sorted(hosted, key=lambda inst: inst.index)
                    surplus.extend(reversed(picked[-excess:]))
            for name in targets:
                deficit = want[name] - len(stage.instances_by_node.get(name, ()))
                while deficit > 0 and surplus:
                    instance = surplus.pop(0)
                    self._enqueue_migration(instance, name, "rebalance", plan)
                    moves += 1
                    deficit -= 1
        self._close_plan_if_empty(plan)
        if moves:
            self._instant("rebalance-plan", "coordinator",
                          reason=reason, moves=moves)
        return moves

    def _open_plan(self, label: str) -> dict:
        plan = {
            "id": self._next_plan_id,
            "label": label,
            "start": self.sim.now,
            "end": None,
            "pending": set(),
            "closed": False,
        }
        self._next_plan_id += 1
        self._plans[plan["id"]] = plan
        return plan

    def _close_plan_if_empty(self, plan: dict) -> None:
        if plan["closed"] or plan["pending"]:
            return
        plan["closed"] = True
        plan["end"] = self.sim.now
        if plan["end"] > plan["start"]:
            self.windows.append((plan["label"], plan["start"], plan["end"]))
        self._instant("rebalance-complete", "coordinator",
                      label=plan["label"])

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def _on_suspect(self, name: str, phi: float) -> None:
        self._instant("node-suspect", name, phi=round(phi, 3))
        if name not in self.live:
            return
        candidates = [c for c in self._placement_candidates() if c != name]
        if not candidates:
            # no healthy destination: degrade gracefully — the node's
            # keys queue until it comes back, nothing is fenced
            self.membership_log.append(
                {"event": "suspect-no-destination", "node": name,
                 "time": self.sim.now}
            )
            return
        # Fencing IS the point: a suspected node must stop serving
        # before ownership flips, so the block is the protocol.
        # repro: allow[DS201] declared fence edge (cluster.fence)
        self._fence(name)
        node = self._node(name)
        stateful = [
            inst for inst in self._hosted_instances(node)
            if inst.store is not None
        ]
        if not stateful:
            return
        plan = self._open_plan(f"failover:{name}")
        for instance in sorted(stateful, key=lambda i: i.name):
            dest = self._least_loaded(candidates)
            if dest is None:
                break
            self._enqueue_migration(instance, dest, "failover", plan)
        self._close_plan_if_empty(plan)

    def _on_revive(self, name: str) -> None:
        self._instant("node-revive", name)
        self._unfence(name)
        if self.spec.rebalance_on_rejoin and name not in self.retiring:
            self.rebalance(f"rejoin:{name}")

    def _fence(self, name: str) -> None:
        """Quarantine a suspected node: abort checkpoints its barrier
        participants can no longer ack, freeze its data plane, shed its
        queued inputs (Kafka re-reads them on replay)."""
        if name in self.fenced:
            return
        node = self._node(name)
        record = {"start": self.sim.now, "dropped_messages": 0.0}
        self._fence_time[name] = self.sim.now
        self.job.coordinator.abort_in_flight(reason=f"fence:{name}")
        node.begin_crash()
        dropped = 0.0
        for stage in self.job.stages:
            flow = stage.flows.get(name)
            if flow is not None:
                dropped += flow.drop_backlog()
            stage.update_blocked(name)
        record["dropped_messages"] = dropped
        self.fenced[name] = record
        self._abort_transfers(name, "source-fenced")
        self._instant("node-fence", name, dropped=dropped)

    def _unfence(self, name: str) -> None:
        record = self.fenced.pop(name, None)
        if record is None:
            return
        node = self._node(name)
        self._restore_in_place(node, record["start"])
        node.end_crash()
        for stage in self.job.stages:
            stage.update_blocked(name)
        self._fence_time.pop(name, None)
        self._instant("node-unfence", name)

    def _restore_in_place(self, node, since: float) -> None:
        """Rewind every instance still hosted on *node* to its newest
        completed checkpoint and replay the gap — the same recovery the
        fault injector performs for a classic worker crash."""
        coordinator = self.job.coordinator
        snapshot_times = []
        for instance in self._hosted_instances(node):
            if instance.store is None:
                continue
            info = coordinator.restore_instance(instance)
            snapshot_times.append(info["snapshot_time"])
            self._recompute_stall(instance)
        rewind_to = min(snapshot_times) if snapshot_times else since
        stage0 = self.job.stages[0]
        flow = stage0.flows.get(node.name)
        if flow is not None:
            replayed = flow.arrival_rate * max(0.0, since - rewind_to)
            if replayed > 0:
                flow.add_backlog(replayed)

    @staticmethod
    def _recompute_stall(instance) -> None:
        options = instance.store.options
        l0 = instance.store.l0_file_count
        if l0 >= options.l0_stop_trigger:
            instance.stall_level = 1.0
        elif l0 >= options.l0_slowdown_trigger:
            instance.stall_level = 0.5
        else:
            instance.stall_level = 0.0

    # ------------------------------------------------------------------
    # fault hooks (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------

    def begin_node_crash(self, node, event: dict) -> None:
        """The node process dies: abort its barriers, freeze its share
        of every stage, shed its queues, kill its outgoing transfers."""
        name = node.name
        self.down.add(name)
        aborted = self.job.coordinator.abort_in_flight(reason=f"crash:{name}")
        event["aborted_checkpoints"] = [r.checkpoint_id for r in aborted]
        node.begin_crash()
        dropped = 0.0
        for stage in self.job.stages:
            flow = stage.flows.get(name)
            if flow is not None:
                dropped += flow.drop_backlog()
            stage.update_blocked(name)
        event["dropped_messages"] = dropped
        self._abort_transfers(name, "source-crashed")

    def end_node_crash(self, node, event: dict) -> None:
        """The node process restarts.  If the detector fenced it the
        fence owns recovery (lifted on revival); otherwise restore in
        place immediately, like the classic worker-crash path."""
        name = node.name
        self.down.discard(name)
        if name not in self.fenced:
            self._restore_in_place(node, event.get("start", self.sim.now))
        node.end_crash()
        for stage in self.job.stages:
            stage.update_blocked(name)

    def begin_partition(self, node, event: dict) -> None:
        self.partitioned.add(node.name)
        self._instant("net-partition", node.name)

    def end_partition(self, node, event: dict) -> None:
        self.partitioned.discard(node.name)
        self._instant("net-heal", node.name)

    def _abort_transfers(self, name: str, reason: str) -> None:
        """Kill planned transfers whose *source* just died — their live
        snapshot is gone.  (Failover transfers read from the durable
        checkpoint store, so a dead source cannot abort them.)"""
        for record in self.migrations:
            if record["status"] != "transferring":
                continue
            if record["kind"] == "failover":
                continue
            if record["source"] == name:
                record["status"] = "aborted"
                record["reason"] = reason
                record["end"] = self.sim.now

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------

    def _enqueue_migration(self, instance, dest: str, kind: str,
                           plan: dict) -> dict:
        record = {
            "id": self._next_migration_id,
            "kind": kind,
            "partition": instance.name,
            "source": instance.node.name,
            "dest": dest,
            "plan_id": plan["id"],
            "status": "pending",
            "start": self.sim.now,
            "end": None,
            "attempts": 0,
            "bytes": 0,
            "snapshot_time": None,
            "replayed_messages": 0.0,
            "digest_source": None,
            "digest_restored": None,
            "reason": None,
        }
        self._next_migration_id += 1
        self.migrations.append(record)
        plan["pending"].add(instance.name)
        task = {"record": record, "instance": instance}
        if self._active_migrations >= self.spec.max_parallel_migrations:
            self._migration_queue.append(task)
        else:
            self._start_migration(task)
        return record

    def _start_migration(self, task: dict) -> None:
        self._active_migrations += 1
        spawn(
            self.sim,
            self._migration_proc(task),
            name=f"migrate-{task['record']['id']}",
        )

    def _migration_proc(self, task: dict):
        record = task["record"]
        instance = task["instance"]
        spec = self.spec
        if record["status"] == "aborted":
            self._migration_done(record)
            return
        record["status"] = "transferring"
        self._instant(
            "partition-migrate", record["partition"],
            kind=record["kind"], source=record["source"], dest=record["dest"],
        )
        # stateless partitions flip instantly — nothing to ship
        if instance.store is None:
            self._flip(record, instance, None, self.sim.now)
            self._migration_done(record)
            return
        if record["kind"] == "failover":
            entry = self.job.coordinator.latest_snapshot(record["partition"])
            if entry is None:
                snapshot, snapshot_time = None, 0.0
            else:
                snapshot, snapshot_time = entry[2], entry[1]
            nbytes = _snapshot_bytes(snapshot)
        else:
            # live snapshot: wait out any in-flight flush so no ack
            # closure straddles the move
            while instance.flush_in_flight > 0:
                yield _FLUSH_DRAIN_POLL_S
                if record["status"] != "transferring":
                    self._migration_done(record)
                    return
            snapshot = instance.store.snapshot_state()
            snapshot_time = self.sim.now
            nbytes = instance.store.total_bytes()
        record["bytes"] = nbytes
        record["snapshot_time"] = snapshot_time
        deadline = Deadline.after(self.sim.now, spec.transfer_deadline_s)
        record["deadline"] = deadline.at
        failure = None
        while True:
            record["attempts"] += 1
            breaker = self._breaker(record["dest"])
            if not breaker.allow(self.sim.now):
                failure = "breaker-open"
            else:
                transfer_s = nbytes / (spec.migration_bandwidth_mb_s * 1e6)
                yield max(transfer_s, 1e-3)
                if record["status"] != "transferring":
                    self._migration_done(record)
                    return
                if self._transfer_ok(record):
                    breaker.record_success(self.sim.now)
                    break
                breaker.record_failure(self.sim.now)
                failure = "endpoint-unhealthy"
            if (record["attempts"] >= spec.retry.max_attempts
                    or deadline.expired(self.sim.now)):
                if deadline.expired(self.sim.now):
                    failure = "deadline-expired"
                self._migration_failed(record, instance, failure)
                self._migration_done(record)
                return
            yield spec.retry.delay_s(record["attempts"], self._rng)
            if record["status"] != "transferring":
                self._migration_done(record)
                return
        if record["kind"] != "failover":
            # a checkpoint may have started a flush during the transfer
            while instance.flush_in_flight > 0:
                yield _FLUSH_DRAIN_POLL_S
                if record["status"] != "transferring":
                    self._migration_done(record)
                    return
        self._flip(record, instance, snapshot, snapshot_time)
        self._migration_done(record)

    def _transfer_ok(self, record: dict) -> bool:
        dest_ok = (
            record["dest"] in self.live
            and record["dest"] not in self.down
            and record["dest"] not in self.partitioned
            and record["dest"] not in self.fenced
        )
        if record["kind"] == "failover":
            return dest_ok
        source = record["source"]
        source_ok = (
            source not in self.down and source not in self.partitioned
        )
        return dest_ok and source_ok

    def _migration_failed(self, record: dict, instance,
                          reason: Optional[str]) -> None:
        record["status"] = "failed"
        record["reason"] = reason
        record["end"] = self.sim.now
        self._instant(
            "migrate-failed", record["partition"],
            kind=record["kind"], dest=record["dest"], reason=reason or "",
        )
        if record["kind"] != "failover":
            return
        # failover must land somewhere: re-dispatch once toward the
        # next-least-loaded healthy destination, if one exists
        if record.get("redispatched"):
            return
        candidates = [
            c for c in self._placement_candidates()
            if c not in (record["dest"], record["source"])
        ]
        dest = self._least_loaded(candidates)
        if dest is None:
            return
        record["redispatched"] = True
        plan = self._plans[record["plan_id"]]
        retry = self._enqueue_migration(instance, dest, "failover", plan)
        retry["redispatched"] = True

    def _flip(self, record: dict, instance, snapshot: Optional[dict],
              snapshot_time: float) -> None:
        """The atomic ownership flip: at one event time the instance
        changes host node, its store rewinds to the shipped snapshot,
        the replay delta lands on the destination flow, and the owner
        map + ownership log advance."""
        job = self.job
        stage = job.stage(instance.spec.name)
        dest = self._node(record["dest"])
        now = self.sim.now
        # replay-rate estimate, taken before the topology mutates
        stage_rate = sum(f.arrival_rate for f in stage.flows.values())
        per_instance = stage_rate / max(1, len(stage.instances))
        if record["kind"] == "failover":
            # the source is fenced/dead: discard its flush bookkeeping;
            # any in-flight flush job is epoch-guarded into a no-op
            instance.restart_epoch += 1
            instance.flush_in_flight = 0
            instance.blocked = False
            # the partition is reborn on a healthy host: the crash flag
            # belongs to the fenced source node, and end_crash() there
            # can no longer reach an instance that has moved away
            instance.crashed = False
        drained = job.relocate_instance(instance, dest)
        if instance.store is not None:
            record["digest_source"] = state_digest(snapshot)
            instance.store.restore_from_checkpoint(snapshot)
            record["digest_restored"] = state_digest(
                {"levels": instance.store.levels.snapshot()}
            )
            self._recompute_stall(instance)
        replay_until = self._fence_time.get(record["source"], now)
        replay = per_instance * max(0.0, replay_until - snapshot_time)
        replay += drained
        if replay > 0:
            stage.flows[dest.name].add_backlog(replay)
        record["replayed_messages"] = replay
        previous = self.owner.get(record["partition"])
        self.owner[record["partition"]] = dest.name
        self.ownership_log.append({
            "time": now,
            "partition": record["partition"],
            "from": previous,
            "to": dest.name,
            "reason": record["kind"],
        })
        self._instant(
            "ownership-flip", record["partition"],
            source=record["source"], dest=dest.name, kind=record["kind"],
        )
        if self.spec.handover_pause_s > 0 and instance.store is not None:
            instance.blocked = True
            stage.update_blocked(dest.name)
            self.sim.schedule_after(
                self.spec.handover_pause_s, self._end_handover,
                instance, stage,
            )
        record["status"] = "completed"
        record["end"] = now

    def _end_handover(self, instance, stage) -> None:
        if instance.flush_in_flight == 0 and not instance.crashed:
            instance.blocked = False
            stage.update_blocked(instance.node.name)

    def _migration_done(self, record: dict) -> None:
        self._active_migrations -= 1
        plan = self._plans.get(record["plan_id"])
        if plan is not None:
            plan["pending"].discard(record["partition"])
            self._close_plan_if_empty(plan)
        if record["kind"] == "drain":
            self._retire_if_empty(record["source"])
        while (self._migration_queue
               and self._active_migrations < self.spec.max_parallel_migrations):
            self._start_migration(self._migration_queue.popleft())

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def unowned_partitions(self) -> List[str]:
        hosted = set()
        for stage in self.job.stages:
            for instances in stage.instances_by_node.values():
                hosted.update(inst.name for inst in instances)
        expected = set()
        for stage in self.job.stages:
            expected.update(inst.name for inst in stage.instances)
        return sorted(expected - hosted)

    def in_flight_migrations(self) -> int:
        return sum(
            1 for r in self.migrations
            if r["status"] in ("pending", "transferring")
        )

    def report(self) -> dict:
        """JSON-plain digest for RunSummary / the CLI."""
        def public(record: dict) -> dict:
            out = dict(record)
            out.pop("deadline", None)
            return out

        return {
            "spec": self.spec.to_dict(),
            "nodes": {
                "live": sorted(self.live),
                "retired": sorted(self.retired),
                "fenced": sorted(self.fenced),
                "down": sorted(self.down),
                "partitioned": sorted(self.partitioned),
            },
            "membership": [dict(entry) for entry in self.membership_log],
            "suspicions": [dict(entry) for entry in self.detector.transitions],
            "migrations": [public(record) for record in self.migrations],
            "ownership_flips": len(self.ownership_log),
            "unowned_partitions": self.unowned_partitions(),
            "in_flight_migrations": self.in_flight_migrations(),
            "windows": [
                [label, start, end] for label, start, end in self.windows
            ],
        }


def _snapshot_bytes(snapshot: Optional[dict]) -> int:
    if snapshot is None:
        return 0
    return int(sum(
        t.logical_bytes for level in snapshot.get("levels", [])
        for t in level
    ))
