"""Deterministic phi-accrual failure detection.

The detector keeps, per node, the history of heartbeat inter-arrival
times and turns "how long has this node been silent" into a suspicion
level *phi* — the negative log10 of the probability that a healthy
node would be this late, under a normal model of its observed
inter-arrival distribution (Hayashibara et al.).  ``phi >= threshold``
flips the node to *suspected*; a later heartbeat flips it back.

Simulated heartbeats are jitterless, so the sample stddev degenerates
to zero and phi would be a step function; ``min_std_s`` regularizes it
(the same trick Akka's implementation uses) so suspicion still builds
gradually over roughly ``threshold`` standard deviations of silence.

The detector itself owns no processes and never reads a wall clock —
the :class:`~repro.cluster.coordinator.ClusterManager` drives it from
one heartbeat-interval loop, which keeps detection fully deterministic
and adds a single kernel event per interval.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["PhiAccrualDetector"]


class PhiAccrualDetector:
    """Per-node phi-accrual suspicion state."""

    def __init__(
        self,
        interval_s: float,
        threshold: float,
        min_std_s: float,
        window: int = 16,
    ) -> None:
        self.interval_s = interval_s
        self.threshold = threshold
        self.min_std_s = min_std_s
        self.window = window
        #: node name -> time of last heartbeat.
        self._last: Dict[str, float] = {}
        #: node name -> recent inter-arrival samples.
        self._intervals: Dict[str, Deque[float]] = {}
        #: node name -> time the node crossed the suspicion threshold.
        self.suspected: Dict[str, float] = {}
        #: Append-only log of suspicion flips for the run report.
        self.transitions: List[dict] = []

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def register(self, name: str, now: float) -> None:
        """Start tracking *name*; the registration counts as a heartbeat."""
        self._last[name] = now
        self._intervals[name] = deque(maxlen=self.window)

    def deregister(self, name: str) -> None:
        self._last.pop(name, None)
        self._intervals.pop(name, None)
        self.suspected.pop(name, None)

    def tracked(self) -> List[str]:
        return sorted(self._last)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def heartbeat(self, name: str, now: float) -> bool:
        """Record a heartbeat from *name*.

        Returns True when the heartbeat revives a suspected node (the
        caller owns the revival side effects).
        """
        last = self._last.get(name)
        if last is None:
            self.register(name, now)
            return False
        if now > last:
            self._intervals[name].append(now - last)
        self._last[name] = now
        if name in self.suspected:
            since = self.suspected.pop(name)
            self.transitions.append(
                {"node": name, "event": "revive", "time": now,
                 "suspected_for_s": now - since}
            )
            return True
        return False

    def phi(self, name: str, now: float) -> float:
        """Current suspicion level of *name*."""
        last = self._last.get(name)
        if last is None:
            return 0.0
        silence = now - last
        if silence <= 0:
            return 0.0
        intervals = self._intervals[name]
        if intervals:
            mean = sum(intervals) / len(intervals)
            var = sum((x - mean) ** 2 for x in intervals) / len(intervals)
            std = max(math.sqrt(var), self.min_std_s)
        else:
            mean = self.interval_s
            std = self.min_std_s
        # P(a healthy node is still silent after `silence`) under the
        # normal model; floored so phi stays finite.
        y = (silence - mean) / std
        p_later = 0.5 * math.erfc(y / math.sqrt(2.0))
        return -math.log10(max(p_later, 1e-300))

    def check(self, name: str, now: float) -> Optional[float]:
        """Evaluate *name*; on a fresh threshold crossing mark it
        suspected and return the phi value, else return None."""
        if name in self.suspected:
            return None
        value = self.phi(name, now)
        if value < self.threshold:
            return None
        self.suspected[name] = now
        self.transitions.append(
            {"node": name, "event": "suspect", "time": now, "phi": value}
        )
        return value
