"""The Kneedle knee/elbow detection algorithm.

Full from-scratch implementation of Satopää, Albrecht, Irwin &
Raghavan, *Finding a "Kneedle" in a Haystack: Detecting Knee Points in
System Behavior* (ICDCSW 2011) — the paper's §4.2.2 uses it to pick the
compaction-thread allocation from the latency-vs-concurrency curve
(Figure 15).

Algorithm outline (for a concave-increasing curve; other shapes are
transformed into this canonical form first):

1. Optionally smooth the curve (here: moving average).
2. Normalize x and y to [0, 1].
3. Compute the difference curve ``d = y_n − x_n``.
4. Candidate knees are local maxima of ``d``; a candidate is confirmed
   when ``d`` drops below a sensitivity-dependent threshold before the
   next local maximum.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError

__all__ = ["kneedle", "KneedleResult"]


class KneedleResult:
    """Outcome of a knee search."""

    __slots__ = ("knee_x", "knee_y", "all_knees", "difference_curve")

    def __init__(
        self,
        knee_x: Optional[float],
        knee_y: Optional[float],
        all_knees: List[float],
        difference_curve: np.ndarray,
    ) -> None:
        self.knee_x = knee_x
        self.knee_y = knee_y
        self.all_knees = all_knees
        self.difference_curve = difference_curve

    @property
    def found(self) -> bool:
        return self.knee_x is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KneedleResult knee_x={self.knee_x} candidates={self.all_knees}>"


def _moving_average(values: np.ndarray, window: int) -> np.ndarray:
    if window <= 1:
        return values.astype(float)
    kernel = np.ones(window) / window
    padded = np.concatenate(
        [np.full(window // 2, values[0]), values, np.full(window - 1 - window // 2, values[-1])]
    )
    return np.convolve(padded, kernel, mode="valid")


def kneedle(
    x: Sequence[float],
    y: Sequence[float],
    sensitivity: float = 1.0,
    curve: str = "concave",
    direction: str = "increasing",
    smoothing_window: int = 1,
) -> KneedleResult:
    """Find the knee of ``y(x)``.

    Parameters
    ----------
    x, y:
        The curve's points; ``x`` must be strictly increasing.
    sensitivity:
        Kneedle's S parameter; larger = more conservative.
    curve:
        ``"concave"`` (knee = point of diminishing returns) or
        ``"convex"`` (elbow — Figure 15's latency-vs-concurrency curve
        is convex-increasing: flat, then rising fast).
    direction:
        ``"increasing"`` or ``"decreasing"``.
    smoothing_window:
        Moving-average width in samples (1 = no smoothing).
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.ndim != 1 or x_arr.shape != y_arr.shape:
        raise AnalysisError("x and y must be 1-D arrays of equal length")
    if len(x_arr) < 3:
        raise AnalysisError("kneedle needs at least 3 points")
    if np.any(np.diff(x_arr) <= 0):
        raise AnalysisError("x must be strictly increasing")
    if curve not in ("concave", "convex"):
        raise AnalysisError(f"unknown curve {curve!r}")
    if direction not in ("increasing", "decreasing"):
        raise AnalysisError(f"unknown direction {direction!r}")
    if sensitivity < 0:
        raise AnalysisError("sensitivity must be >= 0")

    y_smooth = _moving_average(y_arr, smoothing_window)

    # Normalize to the unit square.
    x_span = x_arr[-1] - x_arr[0]
    y_span = y_smooth.max() - y_smooth.min()
    if y_span == 0:
        return KneedleResult(None, None, [], np.zeros(len(x_arr)))
    x_n = (x_arr - x_arr[0]) / x_span
    y_n = (y_smooth - y_smooth.min()) / y_span

    # Transform to the canonical concave-increasing shape.  Reversing
    # the y sequence mirrors the curve horizontally; ``1 - y`` mirrors
    # vertically.  The four (curve, direction) combinations map onto
    # canonical form as: concave/increasing — identity; concave/
    # decreasing — horizontal mirror; convex/increasing — both mirrors;
    # convex/decreasing — vertical mirror.
    flipped = (curve == "convex") != (direction == "decreasing")
    if flipped:
        y_n = y_n[::-1]
    if curve == "convex":
        y_n = 1.0 - y_n

    difference = y_n - x_n

    # Local maxima of the difference curve are knee candidates.
    candidates: List[int] = []
    for i in range(1, len(difference) - 1):
        if difference[i] >= difference[i - 1] and difference[i] >= difference[i + 1]:
            candidates.append(i)

    threshold_drop = sensitivity * float(np.mean(np.abs(np.diff(x_n))))
    knees: List[int] = []
    for idx_pos, i in enumerate(candidates):
        threshold = difference[i] - threshold_drop
        next_candidate = (
            candidates[idx_pos + 1] if idx_pos + 1 < len(candidates) else len(difference)
        )
        for j in range(i + 1, next_candidate):
            if difference[j] < threshold:
                knees.append(i)
                break
        else:
            # The difference curve never recovers after the last
            # candidate: accept it if it is the global maximum tail.
            if idx_pos == len(candidates) - 1 and difference[i] == difference.max():
                knees.append(i)

    if not knees:
        return KneedleResult(None, None, [], difference)

    def original_index(i: int) -> int:
        return len(x_arr) - 1 - i if flipped else i

    knee_xs = [float(x_arr[original_index(i)]) for i in knees]
    first = original_index(knees[0])
    return KneedleResult(
        float(x_arr[first]), float(y_arr[first]), knee_xs, difference
    )
