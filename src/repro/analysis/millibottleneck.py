"""The millibottleneck detector: attribute p99.9 spikes to hidden sync.

Implements the paper's diagnostic method on top of recorded traces:
slide a fine (50–100 ms) window over CPU demand to flag *saturation
windows* (millibottlenecks — full utilization too brief to move average
utilization), then attribute each windowed p99.9 latency spike to the
flush/compaction span set concurrently in flight around it.  A spike is
**attributed** when flushes and compactions overlap inside its window
and, where CPU data is available, the CPU actually saturated there.
Runs are further classified as *scheduled* ShadowSync (bursts
alternating between checkpoint periods, the LCM cadence of Figure 1) or
*statistical* ShadowSync (several stages' bursts landing in the same
period, §3.3) via :mod:`repro.analysis.overlap`.

Three entry points cover the three places evidence lives:

* :func:`analyze_result` — a live :class:`~repro.stream.engine.StreamJobResult`
  (spans + CPU series + coordinator all in memory);
* :func:`analyze_summary` — a cached :class:`~repro.experiments.summary.RunSummary`
  (concurrency timelines, no CPU series);
* :func:`analyze_trace` — a list of :class:`~repro.trace.TraceEvent`
  (e.g. loaded back from an exported JSONL trace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..metrics.spans import ActivitySpan, SpanLog
from ..metrics.timeline import StepSeries, millibottleneck_windows
from ..serialize import register
from .longtail import find_spikes
from .overlap import alignment_score, burst_alignment

__all__ = [
    "SpikeAttribution",
    "MillibottleneckReport",
    "detect",
    "analyze_result",
    "analyze_summary",
    "analyze_trace",
    "spans_from_trace",
]

#: Alignment score above which a run reads as statistical ShadowSync.
STATISTICAL_ALIGNMENT = 0.8
#: Default spike-threshold rule shared with the figure scripts.
SPIKE_FLOOR_S = 0.8
SPIKE_MEDIAN_FACTOR = 2.5


@register
@dataclass
class SpikeAttribution:
    """One latency spike and the background work blamed for it."""

    peak_time: float
    peak_s: float
    window: Tuple[float, float]
    flush_spans: int
    compaction_spans: int
    overlap_s: float
    #: Fraction of the window with CPU ≥ saturation; None when no CPU data.
    cpu_saturated_fraction: Optional[float]
    #: 0-based checkpoint period containing the peak (-1: before first).
    checkpoint_index: int
    #: Stages with compaction activity inside the window.
    stages: List[str] = field(default_factory=list)
    attributed: bool = False
    #: "scheduled" | "statistical" | "unattributed"
    classification: str = "unattributed"
    #: Injected-fault windows (``kind@node``) overlapping this spike —
    #: distinguishes ShadowSync spikes from fault-induced ones.
    faults: List[str] = field(default_factory=list)
    #: Resilience-action windows (``degraded``, ``load-shed``) the spike
    #: fell into — spikes inside a degraded window are the overload the
    #: guard was already reacting to, not new hidden synchronization.
    resilience: List[str] = field(default_factory=list)
    #: Compaction/scheduling policies of the compactions inside the
    #: window — distinguishes mitigation-zoo members in the blame.
    policies: List[str] = field(default_factory=list)
    #: Cluster-layer windows (``rebalance:...``, ``failover:...``,
    #: ``scale-in:...``) overlapping the spike — elastic churn is a
    #: *known* synchronization source, not hidden ShadowSync.
    cluster: List[str] = field(default_factory=list)
    #: Wait-for-graph sync-edge kinds (``checkpoint-barrier``,
    #: ``compaction-during-checkpoint``, ...) whose blocked windows
    #: overlap the spike — the shadow-sync audit's blame channel.
    sync: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "peak_time": self.peak_time,
            "peak_s": self.peak_s,
            "window": list(self.window),
            "flush_spans": self.flush_spans,
            "compaction_spans": self.compaction_spans,
            "overlap_s": self.overlap_s,
            "cpu_saturated_fraction": self.cpu_saturated_fraction,
            "checkpoint_index": self.checkpoint_index,
            "stages": list(self.stages),
            "attributed": self.attributed,
            "classification": self.classification,
            "faults": list(self.faults),
            "resilience": list(self.resilience),
            "policies": list(self.policies),
            "cluster": list(self.cluster),
            "sync": list(self.sync),
        }

    @classmethod
    def from_dict(cls, data: dict) -> SpikeAttribution:
        data = dict(data)
        data["window"] = tuple(data["window"])
        data.setdefault("faults", [])
        data.setdefault("resilience", [])
        data.setdefault("policies", [])
        data.setdefault("cluster", [])
        data.setdefault("sync", [])
        return cls(**data)


@register
@dataclass
class MillibottleneckReport:
    """Detector output for one run window."""

    window_s: float
    threshold_s: float
    spikes: List[SpikeAttribution] = field(default_factory=list)
    #: CPU saturation windows (empty when no CPU data was supplied).
    saturation_windows: List[Tuple[float, float]] = field(default_factory=list)
    #: Stage-burst alignment score; None without per-checkpoint counts.
    alignment: Optional[float] = None
    #: "scheduled" | "statistical" | "none"
    classification: str = "none"

    @property
    def spike_count(self) -> int:
        return len(self.spikes)

    @property
    def attributed_count(self) -> int:
        return sum(1 for s in self.spikes if s.attributed)

    @property
    def attributed_fraction(self) -> float:
        if not self.spikes:
            return 0.0
        return self.attributed_count / len(self.spikes)

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "threshold_s": self.threshold_s,
            "spikes": [s.to_dict() for s in self.spikes],
            "saturation_windows": [list(w) for w in self.saturation_windows],
            "alignment": self.alignment,
            "classification": self.classification,
            "spike_count": self.spike_count,
            "attributed_count": self.attributed_count,
            "attributed_fraction": self.attributed_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> MillibottleneckReport:
        return cls(
            window_s=data["window_s"],
            threshold_s=data["threshold_s"],
            spikes=[SpikeAttribution.from_dict(s) for s in data.get("spikes", [])],
            saturation_windows=[
                tuple(w) for w in data.get("saturation_windows", [])
            ],
            alignment=data.get("alignment"),
            classification=data.get("classification", "none"),
        )


def default_threshold(p999: Sequence[float]) -> float:
    """The figures' spike rule: ``max(2.5 × median, 0.8 s)``."""
    values = np.asarray(p999, dtype=float)
    if len(values) == 0:
        return SPIKE_FLOOR_S
    return max(SPIKE_MEDIAN_FACTOR * float(np.median(values)), SPIKE_FLOOR_S)


def _checkpoint_index(checkpoint_times: Sequence[float], when: float) -> int:
    if not len(checkpoint_times):
        return -1
    return int(
        np.searchsorted(np.asarray(checkpoint_times, dtype=float), when, "right") - 1
    )


def detect(
    times: Sequence[float],
    p999: Sequence[float],
    *,
    window_s: float = 0.05,
    spans: Optional[SpanLog] = None,
    concurrency_times: Optional[Sequence[float]] = None,
    flush_concurrency: Optional[Sequence[float]] = None,
    compaction_concurrency: Optional[Sequence[float]] = None,
    cpu: Optional[StepSeries] = None,
    capacity: Optional[float] = None,
    checkpoint_times: Sequence[float] = (),
    per_checkpoint: Optional[Dict[int, Dict[str, int]]] = None,
    fault_windows: Sequence[Tuple[str, float, float]] = (),
    resilience_windows: Sequence[Tuple[str, float, float]] = (),
    cluster_windows: Sequence[Tuple[str, float, float]] = (),
    sync_windows: Sequence[Tuple[str, float, float]] = (),
    threshold: Optional[float] = None,
    pad_s: float = 1.0,
    saturation: float = 0.95,
    min_gap: float = 1.0,
) -> MillibottleneckReport:
    """Core detector over a windowed-p99.9 timeline.

    *times*/*p999* is the latency timeline (window *window_s*).  Spans
    may come either as a :class:`SpanLog` or, for cached summaries, as
    flush/compaction concurrency arrays on *concurrency_times*.  When a
    CPU :class:`StepSeries` (and its *capacity*) is given, spikes whose
    window never saturates the CPU stay unattributed and the report
    carries the run's saturation windows.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(p999, dtype=float)
    if t.shape != v.shape:
        raise AnalysisError("times and p999 must have equal shapes")
    if threshold is None:
        threshold = default_threshold(v)

    report = MillibottleneckReport(window_s=window_s, threshold_s=float(threshold))
    if len(t) == 0:
        return report

    if cpu is not None and capacity is not None:
        report.saturation_windows = millibottleneck_windows(
            cpu,
            capacity,
            float(t[0]),
            float(t[-1]) + window_s,
            dt=window_s,
            saturation=saturation,
            max_duration=float("inf"),
        )

    ct = cf = cc = None
    if concurrency_times is not None:
        ct = np.asarray(concurrency_times, dtype=float)
        cf = np.asarray(flush_concurrency, dtype=float)
        cc = np.asarray(compaction_concurrency, dtype=float)
        if not (ct.shape == cf.shape == cc.shape):
            raise AnalysisError("concurrency arrays must have equal shapes")

    for spike in find_spikes(t, v, threshold, min_gap=min_gap):
        # Latency at time τ reflects work queued up to a flush/compaction
        # burst slightly earlier, so look at a padded window.
        w0 = spike.start - pad_s
        w1 = spike.end + pad_s
        n_flush = n_comp = 0
        overlap_s = 0.0
        stages: List[str] = []
        policies: List[str] = []
        if spans is not None:
            flushes = spans.spans(kind="flush", window=(w0, w1))
            compactions = spans.spans(kind="compaction", window=(w0, w1))
            n_flush = len(flushes)
            n_comp = len(compactions)
            overlap_s = spans.overlap_seconds("flush", "compaction", w0, w1)
            stages = sorted({s.stage for s in compactions if s.stage})
            policies = sorted(
                {getattr(s, "policy", "") for s in compactions} - {""}
            )
        elif ct is not None and len(ct) > 1:
            dt = float(np.median(np.diff(ct)))
            mask = (ct >= w0) & (ct <= w1)
            if mask.any():
                n_flush = int(cf[mask].max())
                n_comp = int(cc[mask].max())
                overlap_s = float(
                    np.sum((cf[mask] > 0) & (cc[mask] > 0)) * dt
                )

        cpu_frac: Optional[float] = None
        if cpu is not None and capacity is not None:
            cpu_frac = cpu.fraction_above(saturation * capacity, w0, w1)

        cp_index = _checkpoint_index(checkpoint_times, spike.peak_time)
        if not stages and per_checkpoint is not None and cp_index in per_checkpoint:
            stages = sorted(
                name
                for name, count in per_checkpoint[cp_index].items()
                if count > 0
            )

        fault_labels = sorted(
            {name for name, fs, fe in fault_windows if fs <= w1 and fe >= w0}
        )
        resilience_labels = sorted(
            {name for name, rs, re in resilience_windows if rs <= w1 and re >= w0}
        )
        cluster_labels = sorted(
            {name for name, cs, ce in cluster_windows if cs <= w1 and ce >= w0}
        )
        sync_labels = sorted(
            {name for name, ss, se in sync_windows if ss <= w1 and se >= w0}
        )

        attributed = (
            n_flush > 0
            and n_comp > 0
            and overlap_s > 0.0
            and (cpu_frac is None or cpu_frac > 0.0)
        )
        if not attributed:
            classification = "unattributed"
        elif len(stages) >= 2:
            classification = "statistical"
        else:
            classification = "scheduled"

        report.spikes.append(
            SpikeAttribution(
                peak_time=spike.peak_time,
                peak_s=spike.peak,
                window=(w0, w1),
                flush_spans=n_flush,
                compaction_spans=n_comp,
                overlap_s=overlap_s,
                cpu_saturated_fraction=cpu_frac,
                checkpoint_index=cp_index,
                stages=stages,
                attributed=attributed,
                classification=classification,
                faults=fault_labels,
                resilience=resilience_labels,
                policies=policies,
                cluster=cluster_labels,
                sync=sync_labels,
            )
        )

    if per_checkpoint:
        report.alignment = alignment_score(per_checkpoint)
    if report.attributed_count == 0:
        report.classification = "none"
    elif report.alignment is not None and report.alignment >= STATISTICAL_ALIGNMENT:
        report.classification = "statistical"
    else:
        report.classification = "scheduled"
    return report


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def analyze_result(
    result,
    start: float = 0.0,
    end: Optional[float] = None,
    window_s: float = 0.05,
    **kwargs,
) -> MillibottleneckReport:
    """Run the detector on a live :class:`StreamJobResult`."""
    if end is None:
        end = result.duration
    times, p999 = result.latency_timeline(0.999, window=window_s, start=start, end=end)
    checkpoints = [
        t for t in result.coordinator.checkpoint_times() if start <= t <= end
    ]
    stage_names = [stage.name for stage in result.job.stages]
    per_checkpoint = (
        burst_alignment(result.spans, stage_names, checkpoints)
        if checkpoints
        else None
    )
    kwargs.setdefault("cpu", result.cpu_series(None))
    kwargs.setdefault("capacity", result.job.cluster.cores_per_node)
    injector = getattr(result.job, "fault_injector", None)
    if injector is not None:
        kwargs.setdefault("fault_windows", list(injector.windows))
    kwargs.setdefault("resilience_windows", result.resilience_windows)
    kwargs.setdefault("cluster_windows", result.cluster_windows)
    return detect(
        times,
        p999,
        window_s=window_s,
        spans=result.spans,
        checkpoint_times=checkpoints,
        per_checkpoint=per_checkpoint,
        **kwargs,
    )


def analyze_summary(summary, **kwargs) -> MillibottleneckReport:
    """Run the detector on a cached :class:`RunSummary`.

    Summaries carry no CPU series, so attribution relies on span
    concurrency alone (``cpu_saturated_fraction`` stays ``None``).
    """
    fault_windows = [
        (f"{e['kind']}@{e['node']}", e["start"], e["end"])
        for e in getattr(summary, "fault_events", [])
        if e.get("end") is not None
    ]
    kwargs.setdefault("fault_windows", fault_windows)
    resilience = getattr(summary, "resilience", None) or {}
    resilience_windows = [
        (mode, start, end)
        for mode, start, end in resilience.get("mode_windows", [])
        if end is not None
    ]
    resilience_windows.extend(
        ("load-shed", start, end)
        for start, end in (resilience.get("shed") or {}).get("windows", [])
        if end is not None
    )
    kwargs.setdefault("resilience_windows", resilience_windows)
    cluster = getattr(summary, "cluster", None) or {}
    kwargs.setdefault(
        "cluster_windows",
        [(label, start, end) for label, start, end in cluster.get("windows", [])],
    )
    return detect(
        summary.fine_times,
        summary.fine_p999,
        window_s=summary.fine_window_s,
        concurrency_times=summary.concurrency_times,
        flush_concurrency=summary.flush_concurrency,
        compaction_concurrency=summary.compaction_concurrency,
        checkpoint_times=summary.checkpoint_times,
        per_checkpoint=summary.per_checkpoint_compactions or None,
        **kwargs,
    )


def spans_from_trace(events) -> SpanLog:
    """Rebuild a :class:`SpanLog` from traced flush/compaction spans."""
    log = SpanLog()
    for e in events:
        if e.ph != "X" or e.cat not in ("flush", "compaction"):
            continue
        queue_delay = float(e.args.get("queue_delay", 0.0) or 0.0)
        log.add(
            ActivitySpan(
                kind=e.cat,
                name=e.name,
                stage=str(e.args.get("stage", "")),
                instance=int(e.args.get("instance", 0) or 0),
                node=e.tid.split("/")[0] if e.tid else "",
                start=e.ts,
                end=e.ts + e.dur,
                input_bytes=int(e.args.get("input_bytes", 0) or 0),
                submit=e.ts - queue_delay,
                policy=str(e.args.get("policy", "") or ""),
            )
        )
    return log


def _counter_track(events, cat: str, mean_over_tids: bool = False):
    """(times, values) of a counter category; optionally averaged over tids."""
    points: Dict[float, List[float]] = {}
    for e in events:
        if e.ph != "C" or e.cat != cat:
            continue
        points.setdefault(e.ts, []).append(float(e.args.get("value", 0.0)))
    if not points:
        return np.array([]), np.array([])
    times = np.array(sorted(points))
    if mean_over_tids:
        values = np.array([float(np.mean(points[t])) for t in times])
    else:
        values = np.array([points[t][-1] for t in times])
    return times, values


def analyze_trace(
    events,
    *,
    capacity: Optional[float] = None,
    window_s: float = 0.05,
    **kwargs,
) -> MillibottleneckReport:
    """Run the detector on exported trace events.

    Expects the tracks :meth:`StreamJobResult.export_trace` writes:
    flush/compaction ``X`` spans, per-node ``cpu`` counters, a
    ``latency_p999`` counter track, and ``checkpoint-trigger`` instants.
    Pass *capacity* (cores per node) to enable CPU gating.
    """
    events = list(events)
    lat_t, lat_v = _counter_track(events, "latency")
    if len(lat_t) == 0:
        raise AnalysisError("trace has no latency_p999 counter track")
    spans = spans_from_trace(events)
    checkpoints = sorted(
        e.ts for e in events if e.ph == "i" and e.name == "checkpoint-trigger"
    )
    stage_names = sorted({s.stage for s in spans if s.stage})
    per_checkpoint = (
        burst_alignment(spans, stage_names, checkpoints)
        if checkpoints and stage_names
        else None
    )
    cpu_t, cpu_v = _counter_track(events, "cpu", mean_over_tids=True)
    cpu = StepSeries(zip(cpu_t, cpu_v)) if len(cpu_t) and capacity else None
    fault_windows = [
        (
            f"{e.args.get('kind', 'fault')}@{e.tid}",
            e.ts,
            e.ts + float(e.args.get("duration_s", 0.0) or 0.0),
        )
        for e in events
        if e.ph == "i" and e.cat == "fault" and e.name == "fault-inject"
    ]
    kwargs.setdefault("fault_windows", fault_windows)
    return detect(
        lat_t,
        lat_v,
        window_s=window_s,
        spans=spans,
        cpu=cpu,
        capacity=capacity if cpu is not None else None,
        checkpoint_times=checkpoints,
        per_checkpoint=per_checkpoint,
        **kwargs,
    )
