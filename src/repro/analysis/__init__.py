"""Offline analysis: knee detection, overlap analysis, tail statistics."""

from .kneedle import KneedleResult, kneedle
from .longtail import LatencySpike, find_spikes, reduction_ratio, spike_period
from .millibottleneck import (
    MillibottleneckReport,
    SpikeAttribution,
    analyze_result,
    analyze_summary,
    analyze_trace,
    detect,
)
from .overlap import (
    OverlapReport,
    alignment_score,
    burst_alignment,
    coincidence_period,
    overlap_report,
    scheduled_overlap_times,
)

__all__ = [
    "KneedleResult",
    "kneedle",
    "LatencySpike",
    "find_spikes",
    "reduction_ratio",
    "spike_period",
    "MillibottleneckReport",
    "SpikeAttribution",
    "analyze_result",
    "analyze_summary",
    "analyze_trace",
    "detect",
    "OverlapReport",
    "alignment_score",
    "burst_alignment",
    "coincidence_period",
    "overlap_report",
    "scheduled_overlap_times",
]
