"""Offline analysis: knee detection, overlap analysis, tail statistics."""

from .kneedle import KneedleResult, kneedle
from .longtail import LatencySpike, find_spikes, reduction_ratio, spike_period
from .overlap import (
    OverlapReport,
    alignment_score,
    burst_alignment,
    coincidence_period,
    overlap_report,
    scheduled_overlap_times,
)

__all__ = [
    "KneedleResult",
    "kneedle",
    "LatencySpike",
    "find_spikes",
    "reduction_ratio",
    "spike_period",
    "OverlapReport",
    "alignment_score",
    "burst_alignment",
    "coincidence_period",
    "overlap_report",
    "scheduled_overlap_times",
]
