"""Latency long-tail statistics and spike detection.

Helpers for the evaluation's headline comparisons: spike extraction
from pXX timelines, spike periodicity (the LCM cadence of Figure 1),
and baseline-vs-solution reduction ratios (§5's "p99.9 to less than
20 %").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError

__all__ = ["find_spikes", "spike_period", "reduction_ratio", "LatencySpike"]


class LatencySpike:
    """One contiguous excursion of a latency timeline above a threshold."""

    __slots__ = ("start", "end", "peak", "peak_time")

    def __init__(self, start: float, end: float, peak: float, peak_time: float) -> None:
        self.start = start
        self.end = end
        self.peak = peak
        self.peak_time = peak_time

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LatencySpike {self.start:.1f}-{self.end:.1f}s "
            f"peak={self.peak:.2f}s@{self.peak_time:.1f}s>"
        )


def find_spikes(
    times: Sequence[float],
    values: Sequence[float],
    threshold: float,
    min_gap: float = 1.0,
) -> List[LatencySpike]:
    """Contiguous regions where *values* exceeds *threshold*.

    Regions separated by less than *min_gap* seconds are merged — a
    spike briefly dipping under the threshold is still one spike.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape:
        raise AnalysisError("times and values must have equal shapes")
    above = v > threshold
    spikes: List[LatencySpike] = []
    i = 0
    n = len(t)
    while i < n:
        if not above[i]:
            i += 1
            continue
        j = i
        while j + 1 < n and (
            above[j + 1] or (t[j + 1] - t[j] < min_gap and np.any(above[j + 1 :][: 3]))
        ):
            j += 1
        segment = slice(i, j + 1)
        peak_idx = i + int(np.argmax(v[segment]))
        spikes.append(
            LatencySpike(float(t[i]), float(t[j]), float(v[peak_idx]), float(t[peak_idx]))
        )
        i = j + 1
    # merge spikes closer than min_gap
    merged: List[LatencySpike] = []
    for spike in spikes:
        if merged and spike.start - merged[-1].end < min_gap:
            prev = merged[-1]
            peak, peak_time = (
                (prev.peak, prev.peak_time)
                if prev.peak >= spike.peak
                else (spike.peak, spike.peak_time)
            )
            merged[-1] = LatencySpike(prev.start, spike.end, peak, peak_time)
        else:
            merged.append(spike)
    return merged


def spike_period(spikes: Sequence[LatencySpike]) -> Optional[float]:
    """Median interval between consecutive spike peaks (None if < 2)."""
    if len(spikes) < 2:
        return None
    peaks = np.array([s.peak_time for s in spikes])
    return float(np.median(np.diff(peaks)))


def reduction_ratio(baseline: float, mitigated: float) -> float:
    """``mitigated / baseline`` — §5 claims < 0.2 at p99.9."""
    if baseline <= 0:
        raise AnalysisError("baseline must be positive")
    if mitigated < 0:
        raise AnalysisError("mitigated must be non-negative")
    return mitigated / baseline
