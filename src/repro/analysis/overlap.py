"""ShadowSync overlap analysis.

Tools that answer the paper's diagnostic questions from recorded spans
and timelines:

* when do flush and compaction activities overlap, and for how long
  (the direct ShadowSync exposure, §3.2);
* do compaction bursts of different stages coincide (statistical
  ShadowSync, §3.3);
* where will scheduled overlaps recur, given the trigger periods — the
  LCM argument of Figure 1.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..metrics.spans import SpanLog
from ..serialize import register

__all__ = [
    "scheduled_overlap_times",
    "overlap_report",
    "burst_alignment",
    "OverlapReport",
]


def scheduled_overlap_times(
    period_a: float,
    period_b: float,
    horizon: float,
    offset_a: float = 0.0,
    offset_b: float = 0.0,
    tolerance: float = 1e-9,
) -> List[float]:
    """Times within ``[0, horizon]`` at which two periodic activities
    fire simultaneously.

    For commensurable periods the coincidences recur with period
    ``lcm(period_a, period_b)`` — the scheduling argument behind
    Figure 1's spike cadence (flush every 8 s, compaction every 32 s ⇒
    overlap every 32 s).
    """
    if period_a <= 0 or period_b <= 0:
        raise AnalysisError("periods must be positive")
    times: List[float] = []
    t_a = offset_a
    while t_a <= horizon + tolerance:
        # Is t_a also a firing time of b?
        k = round((t_a - offset_b) / period_b)
        if k >= 0 and abs(offset_b + k * period_b - t_a) <= tolerance:
            times.append(t_a)
        t_a += period_a
    return times


def coincidence_period(period_a: float, period_b: float) -> Optional[float]:
    """LCM of two periods if they are commensurable (rational ratio),
    else ``None`` (coincidences never exactly recur)."""
    if period_a <= 0 or period_b <= 0:
        raise AnalysisError("periods must be positive")
    ratio = period_a / period_b
    frac = (ratio).as_integer_ratio()
    # Guard against irrational-ish ratios exploding the fraction.
    if frac[0] > 10**6 or frac[1] > 10**6:
        return None
    return period_b * frac[0] / math.gcd(frac[0], frac[1]) * 1.0


@register
class OverlapReport:
    """Quantified ShadowSync exposure of one run window."""

    __slots__ = (
        "window",
        "flush_compaction_overlap_s",
        "flush_busy_s",
        "compaction_busy_s",
        "peak_flush_concurrency",
        "peak_compaction_concurrency",
    )

    def __init__(self, window: Tuple[float, float]) -> None:
        self.window = window
        self.flush_compaction_overlap_s = 0.0
        self.flush_busy_s = 0.0
        self.compaction_busy_s = 0.0
        self.peak_flush_concurrency = 0
        self.peak_compaction_concurrency = 0

    @property
    def overlap_fraction(self) -> float:
        """Share of compaction-busy time spent overlapping flushes."""
        if self.compaction_busy_s == 0:
            return 0.0
        return self.flush_compaction_overlap_s / self.compaction_busy_s

    def to_dict(self) -> dict:
        return {
            "window": list(self.window),
            "flush_compaction_overlap_s": self.flush_compaction_overlap_s,
            "flush_busy_s": self.flush_busy_s,
            "compaction_busy_s": self.compaction_busy_s,
            "peak_flush_concurrency": self.peak_flush_concurrency,
            "peak_compaction_concurrency": self.peak_compaction_concurrency,
            "overlap_fraction": self.overlap_fraction,
        }

    #: Deprecated alias of :meth:`to_dict`.
    as_dict = to_dict

    @classmethod
    def from_dict(cls, data: dict) -> OverlapReport:
        report = cls(tuple(data["window"]))
        report.flush_compaction_overlap_s = data.get("flush_compaction_overlap_s", 0.0)
        report.flush_busy_s = data.get("flush_busy_s", 0.0)
        report.compaction_busy_s = data.get("compaction_busy_s", 0.0)
        report.peak_flush_concurrency = data.get("peak_flush_concurrency", 0)
        report.peak_compaction_concurrency = data.get("peak_compaction_concurrency", 0)
        return report


def overlap_report(
    spans: SpanLog, start: float, end: float, dt: float = 0.01
) -> OverlapReport:
    """Measure flush/compaction co-activity in ``[start, end)``."""
    if end <= start:
        raise AnalysisError("empty analysis window")
    report = OverlapReport((start, end))
    _t, flush = spans.concurrency_series(start, end, dt=dt, kind="flush")
    _t, compaction = spans.concurrency_series(start, end, dt=dt, kind="compaction")
    report.flush_busy_s = float(np.sum(flush > 0) * dt)
    report.compaction_busy_s = float(np.sum(compaction > 0) * dt)
    report.flush_compaction_overlap_s = float(
        np.sum((flush > 0) & (compaction > 0)) * dt
    )
    report.peak_flush_concurrency = int(flush.max()) if len(flush) else 0
    report.peak_compaction_concurrency = int(compaction.max()) if len(compaction) else 0
    return report


def burst_alignment(
    spans: SpanLog,
    stages: Sequence[str],
    checkpoint_times: Sequence[float],
    kind: str = "compaction",
) -> Dict[int, Dict[str, int]]:
    """Per-checkpoint activity counts per stage.

    The statistical-ShadowSync signature (§3.3) is several stages'
    bursts landing in the *same* checkpoint period; the scheduled
    signature (§3.2) is bursts alternating between periods.  Returns
    ``{checkpoint_index: {stage: count}}``.
    """
    result: Dict[int, Dict[str, int]] = {}
    for stage in stages:
        counts = spans.per_cycle_counts(checkpoint_times, kind=kind, stage=stage)
        for period, count in counts.items():
            result.setdefault(period, {})[stage] = count
    return result


def alignment_score(per_checkpoint: Dict[int, Dict[str, int]]) -> float:
    """How synchronized the stages' bursts are, in [0, 1].

    1.0 = every stage's activity concentrates in the same checkpoint
    periods (statistical ShadowSync); lower = spread/alternating.
    Computed as the mean over stages of the cosine similarity between
    the stage's per-period counts and the total per-period counts.
    """
    if not per_checkpoint:
        raise AnalysisError("empty alignment input")
    stages = sorted({s for counts in per_checkpoint.values() for s in counts})
    periods = sorted(per_checkpoint)
    matrix = np.array(
        [
            [per_checkpoint[p].get(stage, 0) for p in periods]
            for stage in stages
        ],
        dtype=float,
    )
    total = matrix.sum(axis=0)
    score = 0.0
    counted = 0
    for row in matrix:
        if row.sum() == 0 or total.sum() == 0:
            continue
        denom = np.linalg.norm(row) * np.linalg.norm(total)
        if denom > 0:
            score += float(np.dot(row, total) / denom)
            counted += 1
    if counted == 0:
        return 0.0
    return score / counted
