"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at an API boundary.

:func:`did_you_mean` is the shared suggestion helper used wherever a
user-supplied name (scenario, lint rule, policy) misses a registry: it
turns the miss into a readable hint instead of a bare ``KeyError``.
"""

from __future__ import annotations

import difflib
from typing import Iterable


def did_you_mean(name: str, options: Iterable[str], n: int = 3) -> str:
    """`` (did you mean a, b?)`` hint for *name* against *options*.

    Returns an empty string when nothing is close enough, so callers
    can append the result to an error message unconditionally.
    """
    close = difflib.get_close_matches(name, sorted(options), n=n)
    return f" (did you mean {', '.join(close)}?)" if close else ""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the simulation kernel is misused or reaches an
    inconsistent state (e.g. scheduling an event in the past)."""


class ConfigurationError(ReproError):
    """Raised when an experiment or component configuration is invalid."""


class LSMError(ReproError):
    """Base class for LSM-tree store errors."""


class StoreClosedError(LSMError):
    """Raised when operating on a closed :class:`~repro.lsm.store.LSMStore`."""


class FrozenMemtableError(LSMError):
    """Raised when writing to a memtable that has been frozen for flush."""


class CheckpointError(ReproError):
    """Raised on checkpoint-coordination failures (e.g. overlapping
    checkpoints that the coordinator was configured to reject)."""


class AnalysisError(ReproError):
    """Raised when an analysis routine receives degenerate input
    (e.g. fewer than three points for knee detection)."""


class ResilienceError(ReproError):
    """Base class for errors raised by :mod:`repro.resilience` — the
    closed-loop overload-protection layer (SLO guard, load shedding,
    retry/circuit-breaker policies, watchdog supervision)."""


class OverloadError(ResilienceError):
    """Raised when the system failed to stay within its overload budget:
    a soak run whose windowed tail latency never recovered after a fault
    window, an unshed queue blow-up, or an invariant violation under
    load.  See :meth:`repro.resilience.soak.SoakReport.require_pass`."""


class RetryExhaustedError(ResilienceError):
    """Raised (or recorded, on asynchronous paths) when a
    :class:`repro.resilience.policies.RetryPolicy` has spent every
    attempt without a success — e.g. a checkpoint snapshot upload that
    kept missing its deadline, or a Kafka offset commit that failed on
    all attempts."""


class WatchdogError(ResilienceError):
    """Raised when the :class:`repro.resilience.watchdog.Watchdog` is
    misused (installed twice, attached to a finished job) or when a
    supervised restart cannot be performed."""
