"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the simulation kernel is misused or reaches an
    inconsistent state (e.g. scheduling an event in the past)."""


class ConfigurationError(ReproError):
    """Raised when an experiment or component configuration is invalid."""


class LSMError(ReproError):
    """Base class for LSM-tree store errors."""


class StoreClosedError(LSMError):
    """Raised when operating on a closed :class:`~repro.lsm.store.LSMStore`."""


class FrozenMemtableError(LSMError):
    """Raised when writing to a memtable that has been frozen for flush."""


class CheckpointError(ReproError):
    """Raised on checkpoint-coordination failures (e.g. overlapping
    checkpoints that the coordinator was configured to reject)."""


class AnalysisError(ReproError):
    """Raised when an analysis routine receives degenerate input
    (e.g. fewer than three points for knee detection)."""
