"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the simulation kernel is misused or reaches an
    inconsistent state (e.g. scheduling an event in the past)."""


class ConfigurationError(ReproError):
    """Raised when an experiment or component configuration is invalid."""


class LSMError(ReproError):
    """Base class for LSM-tree store errors."""


class StoreClosedError(LSMError):
    """Raised when operating on a closed :class:`~repro.lsm.store.LSMStore`."""


class FrozenMemtableError(LSMError):
    """Raised when writing to a memtable that has been frozen for flush."""


class CheckpointError(ReproError):
    """Raised on checkpoint-coordination failures (e.g. overlapping
    checkpoints that the coordinator was configured to reject)."""


class AnalysisError(ReproError):
    """Raised when an analysis routine receives degenerate input
    (e.g. fewer than three points for knee detection)."""


class ResilienceError(ReproError):
    """Base class for errors raised by :mod:`repro.resilience` — the
    closed-loop overload-protection layer (SLO guard, load shedding,
    retry/circuit-breaker policies, watchdog supervision)."""


class OverloadError(ResilienceError):
    """Raised when the system failed to stay within its overload budget:
    a soak run whose windowed tail latency never recovered after a fault
    window, an unshed queue blow-up, or an invariant violation under
    load.  See :meth:`repro.resilience.soak.SoakReport.require_pass`."""


class RetryExhaustedError(ResilienceError):
    """Raised (or recorded, on asynchronous paths) when a
    :class:`repro.resilience.policies.RetryPolicy` has spent every
    attempt without a success — e.g. a checkpoint snapshot upload that
    kept missing its deadline, or a Kafka offset commit that failed on
    all attempts."""


class WatchdogError(ResilienceError):
    """Raised when the :class:`repro.resilience.watchdog.Watchdog` is
    misused (installed twice, attached to a finished job) or when a
    supervised restart cannot be performed."""
