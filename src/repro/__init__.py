"""ShadowSync reproduction (Middleware '22).

A discrete-event reproduction of *"ShadowSync: Latency Long Tail caused
by Hidden Synchronization in Real-time LSM-tree based Stream Processing
Systems"*: a functional LSM-tree store, a Flink-like stream engine with
continuous checkpointing, processor-sharing CPU models that reproduce
millibottlenecks, the paper's mitigation methods, and a benchmark
harness regenerating every table and figure of the evaluation.

Quickstart::

    from repro import build_traffic_job, MitigationPlan

    job = build_traffic_job(checkpoint_interval_s=8.0,
                            mitigation=MitigationPlan.paper_solution())
    result = job.run(200.0)
    print(result.tail_summary(start=40.0))
"""

from .apps import build_traffic_job, build_wordcount_job
from .config import CheckpointConfig, ClusterConfig, CostModel
from .core import (
    MitigationPlan,
    OnlineAutoTuner,
    SilkPolicy,
    RandomizedL0Trigger,
    ShadowSyncDetector,
    estimate_drain_time,
    recommend_compaction_threads,
    recommend_flush_threads,
)
from .errors import ReproError
from .lsm import LSMOptions, LSMStore
from .sim import Simulator
from .storage import HDD, NVME_SSD, TMPFS, StorageProfile
from .stream import ConstantSource, StageSpec, StreamJob, StreamJobResult

__version__ = "1.8.0"

__all__ = [
    "build_traffic_job",
    "build_wordcount_job",
    "CheckpointConfig",
    "ClusterConfig",
    "CostModel",
    "MitigationPlan",
    "OnlineAutoTuner",
    "SilkPolicy",
    "RandomizedL0Trigger",
    "ShadowSyncDetector",
    "estimate_drain_time",
    "recommend_compaction_threads",
    "recommend_flush_threads",
    "ReproError",
    "LSMOptions",
    "LSMStore",
    "Simulator",
    "HDD",
    "NVME_SSD",
    "TMPFS",
    "StorageProfile",
    "ConstantSource",
    "StageSpec",
    "StreamJob",
    "StreamJobResult",
    "__version__",
]
