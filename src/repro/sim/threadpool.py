"""Simulated bounded thread pools.

RocksDB executes flushes and compactions on two dedicated background
pools (``max_background_flushes`` / ``max_background_compactions``).
The pool size is the paper's central *soft resource*: it bounds how many
maintenance jobs contend for the CPU at once (§4.2).

A :class:`SimJob` is a sequence of phases, each charging work to one
:class:`~repro.sim.resource.ProcessorSharingResource` — e.g. a flush is
a CPU phase (serialize the memtable) followed by an I/O phase (write the
SSTable through the storage backend).  A job occupies one pool slot from
the moment it starts executing until its last phase completes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Sequence

from ..errors import SimulationError
from .kernel import Simulator
from .resource import ProcessorSharingResource, ResourceTask

__all__ = ["JobPhase", "SimJob", "SimThreadPool"]


class JobPhase:
    """One phase of a job: *work* units on *resource* at ≤ *demand*."""

    __slots__ = ("resource", "work", "demand")

    def __init__(
        self, resource: ProcessorSharingResource, work: float, demand: float = 1.0
    ) -> None:
        self.resource = resource
        self.work = work
        self.demand = demand


class SimJob:
    """A multi-phase background job (flush or compaction)."""

    __slots__ = (
        "name",
        "kind",
        "phases",
        "on_complete",
        "metadata",
        "submit_time",
        "start_time",
        "end_time",
        "_phase_index",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        phases: Sequence[JobPhase],
        on_complete: Optional[Callable[["SimJob"], None]] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        if not phases:
            raise SimulationError(f"job {name!r} has no phases")
        self.name = name
        self.kind = kind
        self.phases: List[JobPhase] = list(phases)
        self.on_complete = on_complete
        self.metadata = metadata or {}
        self.submit_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self._phase_index = 0

    @property
    def queue_delay(self) -> Optional[float]:
        if self.submit_time is None or self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def duration(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimJob {self.name!r} kind={self.kind} phase={self._phase_index}>"


class SimThreadPool:
    """A FIFO pool executing at most *size* jobs concurrently."""

    def __init__(self, sim: Simulator, name: str, size: int) -> None:
        if size < 1:
            raise SimulationError(f"pool {name!r} needs size >= 1, got {size}")
        self.sim = sim
        self.name = name
        self.size = size
        self._pending: deque = deque()
        self._active: List[SimJob] = []
        #: Pause depth (fault injection): > 0 freezes new job starts.
        self._paused = 0
        #: Outstanding pauses forgiven by :meth:`restart` — matching
        #: late :meth:`resume` calls are absorbed instead of raising.
        self._forgiven = 0
        #: Times at which the pool was force-restarted (watchdog).
        self.restarts: List[float] = []
        #: Observers called with (job, "submitted" | "start" | "end").
        self.observers: List[Callable[[SimJob, str], None]] = []
        self.completed_jobs: List[SimJob] = []
        #: Shared with the simulator; spans are emitted per job here so
        #: traces show queue→run→done for every flush/compaction.
        self.tracer = sim.tracer

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def submit(self, job: SimJob) -> SimJob:
        job.submit_time = self.sim.now
        if self.tracer.enabled:
            self.tracer.instant(
                f"queue:{job.name}",
                "pool",
                self.sim.now,
                tid=self.name,
                kind=job.kind,
                backlog=self.backlog,
            )
        self._notify(job, "submitted")
        self._pending.append(job)
        self._maybe_start()
        return job

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def backlog(self) -> int:
        """Jobs submitted but not finished."""
        return len(self._pending) + len(self._active)

    def resize(self, size: int) -> None:
        """Grow or shrink the pool; shrinking never preempts running jobs."""
        if size < 1:
            raise SimulationError(f"pool {self.name!r}: size must be >= 1")
        self.size = size
        self._maybe_start()

    @property
    def paused(self) -> bool:
        return self._paused > 0

    def pause(self) -> None:
        """Stop starting queued jobs; running jobs finish normally.

        Nestable — the pool resumes when every pause has been matched by
        a :meth:`resume`.  This is how a flush/compaction thread stall
        fault is injected.
        """
        self._paused += 1
        if self.tracer.enabled:
            self.tracer.instant(
                f"pause:{self.name}", "pool", self.sim.now,
                tid=self.name, depth=self._paused,
            )

    def resume(self) -> None:
        if self._paused == 0:
            if self._forgiven > 0:
                # this pause was cleared early by a watchdog restart();
                # absorb the matching late resume silently
                self._forgiven -= 1
                return
            raise SimulationError(f"pool {self.name!r} is not paused")
        self._paused -= 1
        if self.tracer.enabled:
            self.tracer.instant(
                f"resume:{self.name}", "pool", self.sim.now,
                tid=self.name, depth=self._paused,
            )
        if self._paused == 0:
            self._maybe_start()

    def restart(self) -> int:
        """Force the pool back into a runnable state (watchdog recovery).

        Clears every outstanding pause — each cleared pause is
        *forgiven*, so a fault-injection cleanup that later calls
        :meth:`resume` on the already-restarted pool is absorbed rather
        than raising.  Running jobs are untouched (they complete on
        their resources); queued jobs start immediately.  Returns the
        number of pauses cleared.
        """
        cleared = self._paused
        self._paused = 0
        self._forgiven += cleared
        self.restarts.append(self.sim.now)
        if self.tracer.enabled:
            self.tracer.instant(
                f"restart:{self.name}", "pool", self.sim.now,
                tid=self.name, cleared=cleared, backlog=self.backlog,
            )
        self._maybe_start()
        return cleared

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _maybe_start(self) -> None:
        while self._pending and not self._paused and len(self._active) < self.size:
            job = self._pending.popleft()
            job.start_time = self.sim.now
            self._active.append(job)
            self._notify(job, "start")
            self._run_phase(job)

    def _run_phase(self, job: SimJob) -> None:
        phase = job.phases[job._phase_index]
        task = ResourceTask(
            name=f"{job.name}#p{job._phase_index}",
            kind=job.kind,
            work=phase.work,
            demand=phase.demand,
            on_complete=lambda _task, job=job: self._phase_done(job),
            metadata=job.metadata,
        )
        phase.resource.submit(task)

    def _phase_done(self, job: SimJob) -> None:
        job._phase_index += 1
        if job._phase_index < len(job.phases):
            self._run_phase(job)
            return
        job.end_time = self.sim.now
        self._active.remove(job)
        # Completion journal, not a work queue: metrics drain it once
        # per run; it never feeds back into dispatch.
        # repro: allow[DS205] append-only journal, no dispatch feedback
        self.completed_jobs.append(job)
        if self.tracer.enabled:
            queue_delay = job.queue_delay or 0.0
            if queue_delay > 0:
                self.tracer.complete(
                    f"queued:{job.name}",
                    "pool",
                    job.submit_time,
                    queue_delay,
                    tid=self.name,
                    kind=job.kind,
                )
            self.tracer.complete(
                job.name,
                job.kind,
                job.start_time,
                job.end_time - job.start_time,
                tid=self.name,
                queue_delay=queue_delay,
                **job.metadata,
            )
        self._notify(job, "end")
        if job.on_complete is not None:
            job.on_complete(job)
        self._maybe_start()

    def _notify(self, job: SimJob, what: str) -> None:
        for observer in self.observers:
            observer(job, what)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimThreadPool {self.name!r} size={self.size} "
            f"active={len(self._active)} pending={len(self._pending)}>"
        )
