"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the event queue.  All other
components (CPUs, thread pools, the stream engine, the LSM store's
background jobs) schedule work on one shared ``Simulator``.

The kernel is deliberately small: a monotonically advancing clock, an
event heap, generator-based processes layered on top (see
:mod:`repro.sim.process`), and a couple of run-loop variants.  Determinism
is a first-class property — two runs with the same seed and configuration
produce identical traces, which the test suite relies on.
"""

from __future__ import annotations

import gc
import heapq
from time import perf_counter  # repro: allow[DS101] dispatch profiler only, never model time
from typing import Any, Callable, Dict, List, Optional

from ..errors import SimulationError
from ..trace import Tracer, ensure_tracer
from .events import Event, EventQueue, HIGH_PRIORITY, LOW_PRIORITY, NORMAL_PRIORITY
from .rng import RngRegistry

__all__ = ["Simulator"]


def _dispatch_name(callback: Callable[..., Any]) -> str:
    """Label for one dispatched event in the ``"kernel"`` trace.

    Bound methods of named owners (e.g. :class:`~repro.sim.process.Process`
    wake-ups) get the owner's name appended — all process resumes share
    one ``__qualname__``, and the race sanitizer needs to tell the
    checkpoint coordinator's wake-up apart from an accounting tick when
    it localizes a divergence to two conflicting events.
    """
    name = getattr(callback, "__qualname__", None) or repr(callback)
    owner = getattr(callback, "__self__", None)
    owner_name = getattr(owner, "name", None)
    if isinstance(owner_name, str) and owner_name:
        return f"{name}[{owner_name}]"
    return name


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the per-component RNG registry (see
        :class:`repro.sim.rng.RngRegistry`).
    tracer:
        Root :class:`~repro.trace.Tracer` shared by every component
        built on this simulator (``None`` = the no-op tracer).  Event
        dispatch itself is traced only when the tracer opts into the
        ``"kernel"`` category — one instant per event is far too much
        for routine traces.
    tie_break:
        Ordering among events with equal ``(time, priority)``:
        ``"fifo"`` (default, scheduling order) or ``"lifo"`` — the race
        sanitizer's perturbation mode (see
        :mod:`repro.sanitize.racedetect`).  Correct models produce
        identical state under both.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(
        self,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        tie_break: str = "fifo",
    ) -> None:
        self._now = 0.0
        self._queue = EventQueue(tie_break=tie_break)
        self._running = False
        self._events_fired = 0
        self._aborted = False
        self._abort_reason = ""
        self.rng = RngRegistry(seed)
        self.tracer = ensure_tracer(tracer)
        self._trace_dispatch = self.tracer.enabled and self.tracer.wants("kernel")
        # label -> [count, self_seconds]; populated only while dispatch
        # profiling is enabled (see enable_dispatch_stats) because the
        # timed path costs two wall-clock reads per event.
        self._dispatch_stats: Optional[Dict[str, List[float]]] = None

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def tie_break(self) -> str:
        """Same-timestamp ordering mode (``"fifo"`` or ``"lifo"``)."""
        return self._queue.tie_break

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def aborted(self) -> bool:
        """Whether :meth:`abort` stopped the last :meth:`run` early."""
        return self._aborted

    @property
    def abort_reason(self) -> str:
        return self._abort_reason

    def abort(self, reason: str = "") -> None:
        """Ask the current :meth:`run` loop to stop before its next event.

        Used by the invariant checker's halt-on-violation mode; the clock
        stays at the abort time instead of advancing to ``until``.
        """
        self._aborted = True
        self._abort_reason = reason

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL_PRIORITY,
    ) -> Event:
        """Schedule *callback(*args)* at absolute simulation *time*."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        return self._queue.push(max(time, self._now), callback, args, priority)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL_PRIORITY,
    ) -> Event:
        """Schedule *callback* ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, *args, priority=priority)

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback* at the current time, after pending
        same-time events of normal priority."""
        return self.schedule(self._now, callback, *args, priority=LOW_PRIORITY)

    def call_urgent(self, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule *callback* at the current time ahead of normal events."""
        return self.schedule(self._now, callback, *args, priority=HIGH_PRIORITY)

    # ------------------------------------------------------------------
    # run loops
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single earliest event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty.
        """
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now - 1e-9:
            raise SimulationError(
                f"event queue yielded past event {event!r} at now={self._now}"
            )
        self._now = max(self._now, event.time)
        self._events_fired += 1
        if self._trace_dispatch:
            self.tracer.instant(
                _dispatch_name(event.callback),
                "kernel",
                self._now,
                tid="kernel",
                priority=event.priority,
            )
        event.callback(*event.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains or the clock would pass *until*.

        When *until* is given, the clock is advanced exactly to *until*
        even if no event lands there, so follow-up calls resume cleanly.
        *max_events* (if given) bounds the number of events executed by
        this call: the loop stops after exactly *max_events* dispatches
        and raises :class:`SimulationError` if more work was still due —
        a guard against event-cascade bugs in user models.

        The loop works on the heap entries directly (one ``heappop`` per
        dispatched event, no ``peek``/``pop`` double traversal, no
        ``Event.__lt__`` calls) — this is the simulation's hottest code.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        # The run loop allocates heavily (events, heap tuples, history
        # segments) but creates no reference cycles that must die
        # mid-run; generational GC passes over the growing object graph
        # cost ~10% of wall time.  Suspend collection for the duration
        # and restore the caller's setting on exit.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        executed = 0
        queue = self._queue
        heap = queue._heap  # compaction mutates in place, identity is stable
        heappop = heapq.heappop
        bound = None if until is None else until + 1e-12
        tracer = self.tracer
        trace = self._trace_dispatch
        stats = self._dispatch_stats
        try:
            while heap and not self._aborted:
                entry = heap[0]
                event = entry[3]
                if event._cancelled:
                    heappop(heap)
                    continue
                etime = entry[0]
                if bound is not None and etime > bound:
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"run() exceeded max_events={max_events} at t={self._now}"
                    )
                heappop(heap)
                queue._live -= 1
                # Detach (as EventQueue.pop does) so a late cancel() on
                # the fired handle cannot decrement the live count again.
                event._queue = None
                if etime < self._now - 1e-9:
                    raise SimulationError(
                        f"event queue yielded past event {event!r} at now={self._now}"
                    )
                if etime > self._now:
                    self._now = etime
                self._events_fired += 1
                executed += 1
                if trace:
                    tracer.instant(
                        _dispatch_name(event.callback),
                        "kernel",
                        self._now,
                        tid="kernel",
                        priority=event.priority,
                    )
                if stats is None:
                    event.callback(*event.args)
                else:
                    started = perf_counter()  # repro: allow[DS101] dispatch profiler
                    event.callback(*event.args)
                    elapsed = perf_counter() - started  # repro: allow[DS101] dispatch profiler
                    cell = stats.get(_dispatch_name(event.callback))
                    if cell is None:
                        stats[_dispatch_name(event.callback)] = [1, elapsed]
                    else:
                        cell[0] += 1
                        cell[1] += elapsed
            if until is not None and until > self._now and not self._aborted:
                self._now = until
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()

    def run_for(self, duration: float) -> None:
        """Run for *duration* simulated seconds from the current time."""
        self.run(until=self._now + duration)

    # ------------------------------------------------------------------
    # dispatch profiling
    # ------------------------------------------------------------------

    def enable_dispatch_stats(self) -> None:
        """Record per-callback dispatch counts and wall-clock self time.

        Must be called before :meth:`run`; the run loop binds the stats
        table once on entry.  Adds two clock reads per event, so it is
        off by default and meant for ``repro profile``.
        """
        if self._dispatch_stats is None:
            self._dispatch_stats = {}

    def dispatch_stats(self) -> Dict[str, tuple]:
        """Per-callback ``{label: (count, self_seconds)}`` gathered so far.

        Empty unless :meth:`enable_dispatch_stats` was called before the
        run.  Labels match the ``"kernel"`` trace's dispatch names.
        """
        if self._dispatch_stats is None:
            return {}
        return {
            label: (int(cell[0]), float(cell[1]))
            for label, cell in self._dispatch_stats.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self._now:.6f} pending={len(self._queue)} "
            f"fired={self._events_fired}>"
        )
