"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` couples a firing time with a callback.  Events are
totally ordered by ``(time, priority, sequence)`` so that simultaneous
events fire deterministically in scheduling order unless a priority says
otherwise.  Cancellation is lazy: a cancelled event stays in the heap but
is skipped when popped, which keeps cancellation O(1); when dead entries
outnumber live ones the heap is compacted in place so cancellation-heavy
workloads (e.g. completion reschedules) stay O(live) instead of O(pushed).

The heap stores ``(time, priority, seq, event)`` tuples rather than the
events themselves: tuple comparison settles on the unique ``seq`` before
ever reaching the event object, so ordering costs no Python-level
``__lt__`` calls — by far the hottest path in large simulations.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

#: Default priority for events; lower fires first among equal times.
NORMAL_PRIORITY = 0

#: Priority used for bookkeeping events that must observe the state left
#: behind by all normal events at the same timestamp.
LOW_PRIORITY = 10

#: Priority for control events that must precede normal work at a time.
HIGH_PRIORITY = -10

#: Supported tie-breaking orders among events with equal (time, priority).
#: ``"fifo"`` is the production order (scheduling order); ``"lifo"`` is
#: the race sanitizer's perturbation — a correct model produces the same
#: state under both, so any divergence exposes hidden same-timestamp
#: ordering coupling (see :mod:`repro.sanitize.racedetect`).
TIE_BREAKS = ("fifo", "lifo")


class Event:
    """A scheduled callback.

    Instances are created by :meth:`EventQueue.push` (usually via
    :meth:`repro.sim.kernel.Simulator.schedule`) and should be treated as
    opaque handles whose only user-facing operation is :meth:`cancel`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "_cancelled", "_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        queue: Optional[EventQueue] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when its time comes."""
        if not self._cancelled:
            self._cancelled = True
            if self._queue is not None:
                self._queue._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: Event) -> bool:
        # Heap ordering no longer touches this (the heap compares the
        # (time, priority, seq) tuple prefix of its entries); kept for
        # callers that sort Event handles directly.
        return self._key() < other._key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.6f} prio={self.priority} {name} {state}>"


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    ``tie_break`` picks the order among events with equal
    ``(time, priority)``: ``"fifo"`` (default, scheduling order) or
    ``"lifo"`` (reverse scheduling order, the sanitizer's perturbation).
    The flip is implemented by negating the sequence counter, so the
    total order stays strict either way.
    """

    #: Heap size below which cancellation never triggers compaction —
    #: small heaps are cheap to walk and compaction bookkeeping would
    #: dominate.
    COMPACT_MIN = 512

    def __init__(self, tie_break: str = "fifo") -> None:
        if tie_break not in TIE_BREAKS:
            raise ValueError(
                f"unknown tie_break {tie_break!r}; expected one of {TIE_BREAKS}"
            )
        self.tie_break = tie_break
        self._seq_sign = 1 if tie_break == "fifo" else -1
        # Entries are (time, priority, seq, event); seq is unique, so
        # tuple comparison never falls through to the Event object.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count(start=1)
        self._live = 0
        #: Number of in-place heap compactions performed (diagnostics).
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def _note_cancelled(self) -> None:
        self._live -= 1
        heap = self._heap
        if len(heap) >= self.COMPACT_MIN and self._live * 2 < len(heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, keeping list identity.

        In-place (slice assignment) so run loops holding a reference to
        the heap list never observe a stale object.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[3]._cancelled]
        heapq.heapify(heap)
        self.compactions += 1

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = NORMAL_PRIORITY,
    ) -> Event:
        """Schedule *callback* at *time* and return its handle."""
        seq = self._seq_sign * next(self._counter)
        event = Event(time, priority, seq, callback, args, queue=self)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if not event._cancelled:
                self._live -= 1
                # Detach so a late cancel() on the popped handle cannot
                # decrement the live count a second time.
                event._queue = None
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            heapq.heappop(heap)
        if heap:
            return heap[0][0]
        return None

    def discard(self, event: Event) -> None:
        """Cancel *event* (synonym for ``event.cancel()``)."""
        event.cancel()
