"""Discrete-event simulation kernel.

The kernel is generic: a clock plus an event heap
(:class:`~repro.sim.kernel.Simulator`), generator processes
(:func:`~repro.sim.process.spawn`), processor-sharing resources
(:class:`~repro.sim.resource.ProcessorSharingResource`), fluid message
flows (:class:`~repro.sim.fluid.FluidFlow`) and bounded thread pools
(:class:`~repro.sim.threadpool.SimThreadPool`).  The stream engine and
the LSM store are built on these five primitives.
"""

from .events import Event, EventQueue, HIGH_PRIORITY, LOW_PRIORITY, NORMAL_PRIORITY
from .fluid import FlowSegment, FluidFlow
from .kernel import Simulator
from .process import Process, Signal, spawn
from .resource import ProcessorSharingResource, ResourceTask
from .rng import RngRegistry
from .threadpool import JobPhase, SimJob, SimThreadPool

__all__ = [
    "Event",
    "EventQueue",
    "HIGH_PRIORITY",
    "LOW_PRIORITY",
    "NORMAL_PRIORITY",
    "FlowSegment",
    "FluidFlow",
    "Simulator",
    "Process",
    "Signal",
    "spawn",
    "ProcessorSharingResource",
    "ResourceTask",
    "RngRegistry",
    "JobPhase",
    "SimJob",
    "SimThreadPool",
]
