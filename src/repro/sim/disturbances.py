"""Other sources of ShadowSync: capacity disturbances (§6).

The paper's discussion section names further asynchronous events that
can overlap with checkpoints and each other — JVM garbage collection,
CPU DVFS throttling, and interference from co-located VMs — and leaves
them to future work.  This module models them as *capacity
disturbances*: transient reductions of a node's effective CPU capacity,
injected on top of a running job.

* :class:`GcPauseInjector` — periodic stop-the-world pauses.  The paper
  observes that GCs cluster around flush activity (Flink churns through
  many objects during a checkpoint), modelled by an optional bias that
  shifts each pause towards the next checkpoint time.
* :class:`DvfsThrottleInjector` — random windows at a reduced frequency
  (capacity × factor), with exponential inter-arrival times.
* :class:`ColocationInterferenceInjector` — a noisy neighbour stealing
  a fixed share of the node for random intervals.

Each injector records its ``(node, start, end)`` windows so analyses can
correlate the resulting latency spikes with their cause.

.. deprecated::
    These injector classes are superseded by declarative
    :class:`repro.faults.FaultPlan` scenarios; the shared dip mechanism
    now lives in :func:`repro.faults.capacity.capacity_dip`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..compat import deprecated
from ..errors import ConfigurationError
from .kernel import Simulator
from .process import spawn
from .resource import ProcessorSharingResource

__all__ = [
    "GcPauseInjector",
    "DvfsThrottleInjector",
    "ColocationInterferenceInjector",
]


class _CapacityDisturbance:
    """Shared machinery: dip a resource's capacity, then restore it."""

    def __init__(self) -> None:
        #: Recorded disturbance windows: (resource_name, start, end).
        self.windows: List[Tuple[str, float, float]] = []

    def _dip(
        self,
        sim: Simulator,
        resource: ProcessorSharingResource,
        factor: float,
        duration: float,
    ):
        """A generator process: reduce capacity by *factor* for
        *duration* seconds.

        Delegates to :func:`repro.faults.capacity.capacity_dip`, which
        owns the nesting semantics: dips from different injectors (a GC
        pause during a DVFS window, a slow-disk fault during either)
        compose without compounding, and the capacity is restored only
        when the last overlapping dip ends.
        """
        from ..faults.capacity import capacity_dip

        return capacity_dip(sim, resource, factor, duration, windows=self.windows)


@deprecated("describe GC pauses as a repro.faults.FaultPlan scenario instead")
class GcPauseInjector(_CapacityDisturbance):
    """Periodic JVM stop-the-world garbage-collection pauses."""

    def __init__(
        self,
        interval_s: float = 20.0,
        pause_s: float = 0.25,
        jitter: float = 0.3,
        checkpoint_bias: float = 0.0,
        first_at_s: float = 5.0,
    ) -> None:
        super().__init__()
        if interval_s <= 0 or pause_s <= 0:
            raise ConfigurationError("interval and pause must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")
        if not 0.0 <= checkpoint_bias <= 1.0:
            raise ConfigurationError("checkpoint_bias must be in [0, 1]")
        self.interval_s = interval_s
        self.pause_s = pause_s
        self.jitter = jitter
        self.checkpoint_bias = checkpoint_bias
        self.first_at_s = first_at_s
        self._checkpoint_times: List[float] = []

    def note_checkpoint(self, time: float) -> None:
        """Let the injector know checkpoint times (for the bias)."""
        self._checkpoint_times.append(time)

    def install(self, sim: Simulator, resource: ProcessorSharingResource) -> None:
        rng = sim.rng.stream(f"gc/{resource.name}")

        def loop():
            yield self.first_at_s
            while True:
                spawn(sim, self._dip(sim, resource, 0.0, self.pause_s),
                      name=f"gc-pause-{resource.name}")
                wait = self.interval_s * (
                    1.0 + self.jitter * (2.0 * rng.random() - 1.0)
                )
                if self.checkpoint_bias > 0 and self._checkpoint_times:
                    # pull the next pause towards the most recent
                    # checkpoint cadence (GC pressure peaks there)
                    period = self._cadence()
                    if period is not None:
                        phase = (sim.now + wait) % period
                        wait -= self.checkpoint_bias * min(phase, wait * 0.5)
                yield max(wait, self.pause_s)

        spawn(sim, loop(), name=f"gc-injector-{resource.name}")

    def _cadence(self) -> Optional[float]:
        if len(self._checkpoint_times) < 2:
            return None
        gaps = [
            b - a
            for a, b in zip(self._checkpoint_times, self._checkpoint_times[1:])
        ]
        return sum(gaps) / len(gaps)


@deprecated("describe DVFS throttling as a repro.faults.FaultPlan scenario instead")
class DvfsThrottleInjector(_CapacityDisturbance):
    """Transient CPU frequency throttling under dynamic power control."""

    def __init__(
        self,
        mean_interval_s: float = 15.0,
        duration_s: float = 0.5,
        frequency_factor: float = 0.6,
        first_at_s: float = 3.0,
    ) -> None:
        super().__init__()
        if mean_interval_s <= 0 or duration_s <= 0:
            raise ConfigurationError("interval and duration must be positive")
        if not 0.0 < frequency_factor < 1.0:
            raise ConfigurationError("frequency_factor must be in (0, 1)")
        self.mean_interval_s = mean_interval_s
        self.duration_s = duration_s
        self.frequency_factor = frequency_factor
        self.first_at_s = first_at_s

    def install(self, sim: Simulator, resource: ProcessorSharingResource) -> None:
        rng = sim.rng.stream(f"dvfs/{resource.name}")

        def loop():
            yield self.first_at_s
            while True:
                spawn(
                    sim,
                    self._dip(sim, resource, self.frequency_factor, self.duration_s),
                    name=f"dvfs-{resource.name}",
                )
                # exponential inter-arrivals (Poisson throttle events)
                yield max(
                    -self.mean_interval_s * math.log(1.0 - rng.random()),
                    self.duration_s,
                )

        spawn(sim, loop(), name=f"dvfs-injector-{resource.name}")


@deprecated(
    "describe co-location interference as a repro.faults.FaultPlan scenario instead"
)
class ColocationInterferenceInjector(_CapacityDisturbance):
    """A co-located tenant stealing a share of the node."""

    def __init__(
        self,
        steal_fraction: float = 0.3,
        mean_on_s: float = 2.0,
        mean_off_s: float = 20.0,
        first_at_s: float = 4.0,
    ) -> None:
        super().__init__()
        if not 0.0 < steal_fraction < 1.0:
            raise ConfigurationError("steal_fraction must be in (0, 1)")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ConfigurationError("on/off periods must be positive")
        self.steal_fraction = steal_fraction
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.first_at_s = first_at_s

    def install(self, sim: Simulator, resource: ProcessorSharingResource) -> None:
        rng = sim.rng.stream(f"coloc/{resource.name}")

        def loop():
            yield self.first_at_s
            while True:
                on = -self.mean_on_s * math.log(1.0 - rng.random())
                spawn(
                    sim,
                    self._dip(sim, resource, 1.0 - self.steal_fraction, on),
                    name=f"coloc-{resource.name}",
                )
                yield on + max(
                    -self.mean_off_s * math.log(1.0 - rng.random()), 0.1
                )

        spawn(sim, loop(), name=f"coloc-injector-{resource.name}")
