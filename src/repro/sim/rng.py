"""Named, seeded random-number streams.

Distributed-systems simulations need *decorrelated* randomness: the
random compaction threshold of stage instance ``s0/17`` must not change
when an unrelated component draws an extra sample.  The registry derives
one independent :class:`random.Random` stream per name from a master
seed, so adding components never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of stable, independent random streams.

    >>> reg = RngRegistry(42)
    >>> a = reg.stream("flush").random()
    >>> b = RngRegistry(42).stream("flush").random()
    >>> a == b
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(
                f"{self._master_seed}:{name}".encode("utf-8")
            ).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def uniform_int(self, name: str, low: int, high: int) -> int:
        """Draw one integer in ``[low, high]`` from stream *name*."""
        return self.stream(name).randint(low, high)

    def names(self) -> list:
        """Names of streams created so far (sorted, for reproducibility)."""
        return sorted(self._streams)
