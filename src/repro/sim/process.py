"""Generator-based coroutine processes on top of the event kernel.

A process is a Python generator that yields *waits*:

* a ``float`` — sleep that many simulated seconds;
* a :class:`Signal` — park until the signal fires, receiving the value
  passed to :meth:`Signal.fire`.

This gives sequential-looking control flow for inherently sequential
actors (e.g. the checkpoint coordinator: trigger, wait for acks, sleep
until the next interval) while everything still runs on one event heap.

>>> sim = Simulator()
>>> log = []
>>> def actor():
...     yield 1.0
...     log.append(("woke", sim.now))
...     yield 0.5
...     log.append(("done", sim.now))
>>> _ = spawn(sim, actor())
>>> sim.run()
>>> log
[('woke', 1.0), ('done', 1.5)]
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List

from ..errors import SimulationError
from .events import NORMAL_PRIORITY
from .kernel import Simulator

__all__ = ["Signal", "Process", "spawn"]


class Signal:
    """A one-to-many wake-up primitive for processes and callbacks.

    A signal may fire many times; each ``fire`` wakes every waiter that
    was parked at that moment.  Waiters registered after a fire wait for
    the next one.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self.fire_count = 0

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        self._waiters.append(callback)

    def fire(self, value: Any = None) -> None:
        """Wake all current waiters with *value*."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class Process:
    """A running generator process.  Create via :func:`spawn`."""

    def __init__(
        self,
        sim: Simulator,
        generator: Generator,
        name: str = "",
        priority: int = NORMAL_PRIORITY,
    ) -> None:
        self._sim = sim
        self._gen = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: Event priority of this process's timed wake-ups.  Processes
        #: whose actions must precede same-timestamp peers (e.g. the
        #: checkpoint coordinator's trigger vs. the per-instance
        #: accounting ticks it races with) declare that ordering here
        #: instead of relying on scheduling-order tie-breaking, which
        #: the race sanitizer deliberately perturbs.
        self.priority = priority
        self.finished = False
        self.result: Any = None
        #: Fired once, with :attr:`result`, when the generator returns.
        self.done = Signal(f"{self.name}.done")

    def _start(self) -> None:
        self._advance(None)

    def _advance(self, value: Any) -> None:
        if self.finished:
            return
        try:
            wait = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done.fire(self.result)
            return
        self._park(wait)

    def _park(self, wait: Any) -> None:
        if isinstance(wait, (int, float)):
            if wait < 0:
                raise SimulationError(f"process {self.name!r} yielded negative delay")
            self._sim.schedule_after(
                float(wait), self._advance, None, priority=self.priority
            )
        elif isinstance(wait, Signal):
            wait.add_waiter(self._advance)
        elif isinstance(wait, Process):
            if wait.finished:
                self._sim.call_soon(self._advance, wait.result)
            else:
                wait.done.add_waiter(self._advance)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported wait {wait!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name!r} {state}>"


def spawn(
    sim: Simulator,
    generator: Generator,
    name: str = "",
    delay: float = 0.0,
    priority: int = NORMAL_PRIORITY,
) -> Process:
    """Start *generator* as a process after *delay* seconds.

    *priority* orders the process's timed wake-ups against other events
    at the same timestamp (see :attr:`Process.priority`).
    """
    process = Process(sim, generator, name=name, priority=priority)
    if delay > 0:
        sim.schedule_after(delay, process._start, priority=priority)
    else:
        sim.call_soon(process._start)
    return process
