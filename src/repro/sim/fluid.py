"""Fluid message-processing flows.

Simulating 60 000 discrete messages per second over 10+ minutes is
infeasible (and unnecessary): at that rate the queueing dynamics are
fluid.  A :class:`FluidFlow` models one stage's message processing on
one worker node as a fluid FIFO queue:

* arrivals at rate ``λ(t)`` messages/s (piecewise constant),
* service requiring ``work_per_message`` CPU-seconds each,
* a parallelism cap (a stage instance is single-threaded),
* a *blocked fraction* ``b(t)`` — the share of this flow's stage
  instances currently frozen by a stop-the-world memtable flush.

Between simulation events all rates are constant, so the backlog evolves
linearly and per-message latency can be recovered *exactly* afterwards
by inverting the cumulative arrival/departure curves (FIFO):
``L(t) = D⁻¹(A(t)) − t`` (see :func:`repro.metrics.percentiles`).

The flow integrates its backlog during the run because its CPU demand
depends on it: an empty queue only asks for ``λ · work_per_message``
cores, a backlogged queue asks for its full parallelism cap.  This is
what turns a compaction burst into a millibottleneck — the flow's fair
share drops below its keep-up demand and the backlog takes off.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional

import numpy as np

from ..errors import SimulationError
from .events import Event
from .kernel import Simulator

__all__ = ["FlowSegment", "FlowHistory", "FluidFlow"]

_EPS = 1e-9

#: Relative change in output rate below which downstream stages are not
#: re-notified; bounds same-timestamp event cascades between coupled
#: flows on a shared CPU.
_NOTIFY_TOLERANCE = 2e-3

#: Relative hysteresis on arrival-rate updates.  Coupled flows sharing a
#: CPU can otherwise ping-pong sub-percent rate adjustments through the
#: pipeline forever at a single timestamp (flow A's share shifts flow
#: B's output, which shifts A's downstream arrival, ...).  Ignoring
#: changes below this band makes the propagation a contraction.
_ARRIVAL_HYSTERESIS = 5e-3


class FlowSegment:
    """One piecewise-constant interval of a flow's recorded history."""

    __slots__ = ("time", "arrival_rate", "serve_rate", "queue", "blocked", "alloc")

    def __init__(
        self,
        time: float,
        arrival_rate: float,
        serve_rate: float,
        queue: float,
        blocked: float,
        alloc: float,
    ) -> None:
        self.time = time
        self.arrival_rate = arrival_rate
        self.serve_rate = serve_rate
        self.queue = queue
        self.blocked = blocked
        self.alloc = alloc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlowSegment t={self.time:.3f} λ={self.arrival_rate:.1f} "
            f"μ={self.serve_rate:.1f} Q={self.queue:.1f} b={self.blocked:.2f}>"
        )


class FlowHistory(NamedTuple):
    """A flow's recorded history as parallel numpy arrays.

    The post-run analysis (latency inversion, queue timelines) samples
    the same history many times on different grids; extracting the
    per-segment attributes into arrays once — instead of per analysis
    call — is what :meth:`FluidFlow.history` caches.
    """

    times: np.ndarray
    arrival: np.ndarray
    serve: np.ndarray
    queue: np.ndarray


class FluidFlow:
    """An elastic message-processing consumer on a shared resource."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        work_per_message: float,
        max_parallelism: float,
    ) -> None:
        if work_per_message <= 0:
            raise SimulationError(f"flow {name!r}: work_per_message must be > 0")
        if max_parallelism <= 0:
            raise SimulationError(f"flow {name!r}: max_parallelism must be > 0")
        self.sim = sim
        self.name = name
        self.work_per_message = work_per_message
        self.max_parallelism = max_parallelism

        self.arrival_rate = 0.0
        self.blocked_fraction = 0.0
        self._queue = 0.0

        #: Exact record accounting (messages, fluid): every sync adds the
        #: integrated in/outflow here, so ``total_arrived + replayed ==
        #: total_served + dropped + queue`` holds identically — the
        #: exactly-once invariant checked under fault injection.
        self.total_arrived = 0.0
        self.total_served = 0.0
        self.dropped_messages = 0.0
        self.replayed_messages = 0.0

        self._resource = None
        self._alloc = 0.0
        self._serve_rate = 0.0
        self._last_sync = sim.now
        self._empty_event: Optional[Event] = None
        self._last_notified_output = 0.0

        #: Recorded piecewise history for post-run latency inversion.
        self.segments: List[FlowSegment] = []
        self._history: Optional[FlowHistory] = None
        #: Callbacks receiving the new output (served) rate in msgs/s.
        self.output_listeners: List[Callable[[float], None]] = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _attached(self, resource) -> None:
        if self._resource is not None:
            raise SimulationError(f"flow {self.name!r} already attached")
        self._resource = resource
        self._last_sync = self.sim.now

    # ------------------------------------------------------------------
    # external control
    # ------------------------------------------------------------------

    def set_arrival_rate(self, rate: float) -> None:
        """Change the input rate (msgs/s); triggers reallocation.

        Sub-hysteresis changes are absorbed (see ``_ARRIVAL_HYSTERESIS``).
        """
        if rate < 0:
            raise SimulationError(f"flow {self.name!r}: negative arrival rate")
        band = _ARRIVAL_HYSTERESIS * max(self.arrival_rate, 10.0)
        if abs(rate - self.arrival_rate) < band:
            return
        self.sync(self.sim.now)
        self.arrival_rate = rate
        self._request_realloc()

    def set_blocked_fraction(self, blocked: float) -> None:
        """Change the share of instances frozen by stop-the-world flush."""
        blocked = min(1.0, max(0.0, blocked))
        if abs(blocked - self.blocked_fraction) < _EPS:
            return
        self.sync(self.sim.now)
        self.blocked_fraction = blocked
        self._request_realloc()

    def _request_realloc(self) -> None:
        if self._resource is not None:
            self._resource.request_reallocation()

    # ------------------------------------------------------------------
    # resource protocol (called by ProcessorSharingResource)
    # ------------------------------------------------------------------

    def current_demand(self) -> float:
        """Units (cores) this flow asks for given its backlog state."""
        available = self.max_parallelism * (1.0 - self.blocked_fraction)
        if self.queue > _EPS:
            return available
        keep_up = self.arrival_rate * (1.0 - self.blocked_fraction)
        return min(available, keep_up * self.work_per_message)

    def escalated_demand(self, tentative_alloc: float) -> Optional[float]:
        """If *tentative_alloc* would leave an empty queue underserved,
        return the backlogged demand cap; otherwise ``None``."""
        if self.queue > _EPS:
            return None
        keep_up_units = (
            self.arrival_rate * (1.0 - self.blocked_fraction) * self.work_per_message
        )
        if tentative_alloc + _EPS < keep_up_units:
            return self.max_parallelism * (1.0 - self.blocked_fraction)
        return None

    @property
    def queue(self) -> float:
        """Current backlog in messages (computed live)."""
        elapsed = self.sim.now - self._last_sync
        if elapsed <= 0:
            return self._queue
        drift = (self.arrival_rate - self._serve_rate) * elapsed
        return max(0.0, self._queue + drift)

    def sync(self, now: float) -> None:
        """Integrate the backlog up to *now* at the current rates."""
        elapsed = now - self._last_sync
        if elapsed > 0:
            inflow = self.arrival_rate * elapsed
            outflow = self._serve_rate * elapsed
            served = min(outflow, self._queue + inflow)
            self.total_arrived += inflow
            self.total_served += served
            self._queue = max(0.0, self._queue + inflow - outflow)
        self._last_sync = now

    def apply_allocation(self, alloc: float, now: float) -> float:
        """Accept a new allocation; returns units actually used."""
        self._alloc = alloc
        capacity_msgs = alloc / self.work_per_message
        servable_arrivals = self.arrival_rate * (1.0 - self.blocked_fraction)
        if self.queue > _EPS:
            serve = capacity_msgs
        else:
            serve = min(servable_arrivals, capacity_msgs)
        self._serve_rate = serve
        self._record_segment(now)
        self._schedule_empty_event(now)
        self._notify_output()
        return serve * self.work_per_message

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _record_segment(self, now: float) -> None:
        self._history = None  # array cache is stale once history grows
        segment = FlowSegment(
            now,
            self.arrival_rate,
            self._serve_rate,
            self.queue,
            self.blocked_fraction,
            self._alloc,
        )
        if self.segments and abs(self.segments[-1].time - now) < _EPS:
            self.segments[-1] = segment
        else:
            self.segments.append(segment)

    def _schedule_empty_event(self, now: float) -> None:
        pending = self._empty_event
        drain = self._serve_rate - self.arrival_rate
        queue = self.queue
        if queue > _EPS and drain > _EPS:
            when = now + queue / drain
            if pending is not None:
                if not pending._cancelled and pending.time == when:
                    # Reallocation left the drain trajectory unchanged;
                    # keep the pending wake-up instead of heap churn.
                    # Exact float equality only.
                    return
                pending.cancel()
            self._empty_event = self.sim.schedule(when, self._on_queue_empty)
        elif pending is not None:
            pending.cancel()
            self._empty_event = None

    def _on_queue_empty(self) -> None:
        self._empty_event = None
        self.sync(self.sim.now)
        # Credit the numerical residue to served before snapping to empty,
        # or the record-accounting balance drifts by the rounding error.
        self.total_served += self._queue
        self._queue = 0.0
        self._request_realloc()

    # ------------------------------------------------------------------
    # fault injection (crash / recovery)
    # ------------------------------------------------------------------

    def drop_backlog(self) -> float:
        """Discard the queued backlog (a worker crash loses its inputs).

        Returns the number of messages dropped; they are tracked in
        ``dropped_messages`` so record accounting stays exact.
        """
        self.sync(self.sim.now)
        dropped = self._queue
        self._queue = 0.0
        self.dropped_messages += dropped
        self._request_realloc()
        return dropped

    def add_backlog(self, messages: float) -> None:
        """Re-enqueue *messages* (source replay after a restore)."""
        if messages < 0:
            raise SimulationError(
                f"flow {self.name!r}: cannot add negative backlog {messages}"
            )
        if messages == 0:
            return
        self.sync(self.sim.now)
        self._queue += messages
        self.replayed_messages += messages
        self._request_realloc()

    def accounting_balance(self) -> float:
        """``arrived + replayed − served − dropped − queued`` as of now.

        Zero (up to float rounding) whenever no records have leaked.
        """
        self.sync(self.sim.now)
        return (self.total_arrived + self.replayed_messages
                - self.total_served - self.dropped_messages - self._queue)

    def _notify_output(self) -> None:
        rate = self._serve_rate
        reference = max(self._last_notified_output, 1.0)
        if abs(rate - self._last_notified_output) / reference <= _NOTIFY_TOLERANCE:
            return
        self._last_notified_output = rate
        for listener in self.output_listeners:
            listener(rate)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def serve_rate(self) -> float:
        """Current departure rate in msgs/s."""
        return self._serve_rate

    @property
    def allocation(self) -> float:
        """Current resource units granted."""
        return self._alloc

    def queue_at(self, time: float) -> float:
        """Backlog (messages) at an arbitrary past *time*."""
        queue = 0.0
        previous: Optional[FlowSegment] = None
        for segment in self.segments:
            if segment.time > time:
                break
            previous = segment
        if previous is None:
            return 0.0
        elapsed = time - previous.time
        queue = previous.queue + (previous.arrival_rate - previous.serve_rate) * elapsed
        return max(0.0, queue)

    def history(self) -> FlowHistory:
        """The recorded segments as cached numpy arrays.

        Built lazily on first use (normally after :meth:`finalize`) and
        invalidated whenever a new segment is recorded.
        """
        if self._history is None:
            segments = self.segments
            self._history = FlowHistory(
                times=np.array([s.time for s in segments], dtype=float),
                arrival=np.array([s.arrival_rate for s in segments], dtype=float),
                serve=np.array([s.serve_rate for s in segments], dtype=float),
                queue=np.array([s.queue for s in segments], dtype=float),
            )
        return self._history

    def finalize(self, end_time: float) -> None:
        """Close the recorded history at *end_time* (end of run)."""
        self.sync(end_time)
        self._record_segment(end_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FluidFlow {self.name!r} λ={self.arrival_rate:.1f} "
            f"Q={self.queue:.1f} alloc={self._alloc:.2f}>"
        )
