"""Processor-sharing resources: the millibottleneck substrate.

A :class:`ProcessorSharingResource` models a pool of identical capacity
units — CPU cores (units = cores) or a storage device (units = MB/s of
bandwidth) — shared by two kinds of consumers:

* **Tasks** (:class:`ResourceTask`): finite jobs with a fixed amount of
  work (CPU-seconds, megabytes) and a parallelism cap (a single
  compaction thread can use at most 1 core).  Flush and compaction jobs
  are tasks.
* **Flows** (:class:`FluidFlow`, see :mod:`repro.sim.fluid`): elastic,
  open-ended consumers representing message processing.  A flow exposes
  a demand (units it could use right now) that depends on its backlog.

Allocation is *proportional fair with caps*, which models an OS
fair-share scheduler across runnable threads: when the sum of demands
exceeds capacity every consumer is scaled by ``capacity / total_demand``.
This is exactly the mechanism behind the paper's millibottlenecks — a
burst of compaction tasks inflates total demand, the message-processing
flow's share collapses below its arrival rate, and queues build within
hundreds of milliseconds even though average utilization is moderate.

The resource keeps a piecewise-constant utilization timeline so
experiments can reproduce the paper's 50 ms point-in-time CPU plots
(Figure 6a).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..errors import SimulationError
from .events import Event, LOW_PRIORITY
from .fluid import FlowSegment, _NOTIFY_TOLERANCE
from .kernel import Simulator

__all__ = ["ResourceTask", "ProcessorSharingResource"]

#: Queue lengths below this are treated as empty (float hygiene).
_EPS = 1e-9

#: Flow count at which :meth:`ProcessorSharingResource.reallocate`
#: switches to the numpy gather/scatter path.  Below this the per-array
#: overhead exceeds the saved Python calls, so small resources keep the
#: scalar loop.  Both paths are elementwise IEEE-754 identical.
_VECTOR_MIN_FLOWS = 8


class ResourceTask:
    """A finite job running on a :class:`ProcessorSharingResource`.

    Parameters
    ----------
    name:
        Human-readable identifier (shows up in activity spans).
    kind:
        Category used by metrics, e.g. ``"flush"`` or ``"compaction"``.
    work:
        Total work in resource units × seconds (CPU-seconds, MB).
    demand:
        Maximum units the task can consume at once (thread count × 1 core).
    """

    __slots__ = (
        "name",
        "kind",
        "work",
        "demand",
        "remaining",
        "rate",
        "on_complete",
        "start_time",
        "end_time",
        "metadata",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        work: float,
        demand: float = 1.0,
        on_complete: Optional[Callable[["ResourceTask"], None]] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        if work <= 0:
            raise SimulationError(f"task {name!r} has non-positive work {work}")
        if demand <= 0:
            raise SimulationError(f"task {name!r} has non-positive demand {demand}")
        self.name = name
        self.kind = kind
        self.work = work
        self.demand = demand
        self.remaining = work
        self.rate = 0.0
        self.on_complete = on_complete
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.metadata = metadata or {}

    @property
    def done(self) -> bool:
        return self.end_time is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResourceTask {self.name!r} kind={self.kind} "
            f"remaining={self.remaining:.4f}/{self.work:.4f}>"
        )


class ProcessorSharingResource:
    """A capacity pool shared proportionally among tasks and flows."""

    def __init__(self, sim: Simulator, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise SimulationError(f"resource {name!r} needs positive capacity")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._tasks: List[ResourceTask] = []
        self._flows: list = []  # List[FluidFlow]; untyped to avoid import cycle
        self._last_sync = sim.now
        #: Piecewise-constant utilization: list of ``(time, used_units)``.
        self.util_segments: List[tuple] = []
        #: Observers called with (task, "start"|"end") for span metrics.
        self.task_observers: List[Callable[[ResourceTask, str], None]] = []
        self._realloc_scheduled = False
        # Reallocation at the same timestamp with no intervening consumer
        # mutation is a pure no-op (sync integrates nothing, demands and
        # rates recompute to the same values, every record dedups); the
        # dirty flag lets reallocate() skip the recomputation outright.
        # Every mutation source — submit/complete, capacity changes, and
        # all flow updates (which funnel through request_reallocation) —
        # sets it.
        self._dirty = True
        self._last_realloc_time: Optional[float] = None
        # Completion wheel: one pending kernel event per resource, aimed
        # at the earliest task finish, instead of one event per task.  A
        # reallocation that changes every task's rate then cancels and
        # pushes a single event rather than N — the bulk of all heap
        # traffic in flush/compaction-heavy runs.
        self._wheel_event: Optional[Event] = None
        self._wheel_task: Optional[ResourceTask] = None
        # Cached (count, work_per_message[], max_parallelism[]) arrays
        # for the vectorized reallocation path; rebuilt when flows are
        # added (both attributes are fixed at flow construction).
        self._flow_static: Optional[tuple] = None

    # ------------------------------------------------------------------
    # consumer registration
    # ------------------------------------------------------------------

    def add_flow(self, flow) -> None:
        """Attach a :class:`~repro.sim.fluid.FluidFlow` to this resource."""
        self._flows.append(flow)
        self._flow_static = None
        flow._attached(self)
        self._dirty = True
        self.reallocate()

    def submit(self, task: ResourceTask) -> ResourceTask:
        """Start *task* now; its completion callback fires when the
        (contention-dependent) work is done."""
        task.start_time = self.sim.now
        self._tasks.append(task)
        for observer in self.task_observers:
            observer(task, "start")
        self._dirty = True
        self.reallocate()
        return task

    @property
    def running_tasks(self) -> List[ResourceTask]:
        return list(self._tasks)

    def running_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self._tasks)
        return sum(1 for t in self._tasks if t.kind == kind)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def set_capacity(self, capacity: float) -> None:
        """Change the pool's capacity (DVFS throttling, GC pauses).

        Running tasks and flows are immediately re-sized; the old
        capacity is not remembered — callers restore it themselves.
        """
        if capacity <= 0:
            raise SimulationError(f"resource {self.name!r}: capacity must be > 0")
        if capacity != self.capacity:
            self.capacity = capacity
            self._dirty = True
            self.reallocate()

    def request_reallocation(self) -> None:
        """Coalesce multiple same-time reallocation triggers into one."""
        self._dirty = True
        if self._realloc_scheduled:
            return
        self._realloc_scheduled = True
        self.sim._queue.push(self.sim.now, self._deferred_realloc, (), LOW_PRIORITY)

    def _deferred_realloc(self) -> None:
        self._realloc_scheduled = False
        self.reallocate()

    def reallocate(self) -> None:
        """Recompute every consumer's share; reschedule completions.

        Called whenever the consumer set or any demand changes.  Large
        flow populations take the vectorized gather/scatter path; both
        paths produce bitwise-identical state.
        """
        now = self.sim.now
        if not self._dirty and now == self._last_realloc_time:
            return
        self._dirty = False
        self._last_realloc_time = now
        # _sync_tasks(now), inlined (hot: every realloc passes here)
        elapsed = now - self._last_sync
        if elapsed > 0:
            for task in self._tasks:
                task.remaining = max(0.0, task.remaining - task.rate * elapsed)
        self._last_sync = now
        if len(self._flows) >= _VECTOR_MIN_FLOWS:
            used = self._reallocate_vectorized(now)
        else:
            used = self._reallocate_scalar(now)
        # _record_util(now, used), inlined
        used = min(used, self.capacity)
        segments = self.util_segments
        if segments and abs(segments[-1][0] - now) < _EPS:
            segments[-1] = (now, used)
        elif not segments or abs(segments[-1][1] - used) > 1e-6:
            segments.append((now, used))

    def _reallocate_scalar(self, now: float) -> float:
        """Per-flow loop with the fluid formulas inlined.

        Mirrors ``FluidFlow.current_demand`` / ``escalated_demand`` /
        ``apply_allocation`` expression-for-expression (the flow methods
        remain the readable reference, and the vectorized path mirrors
        the same math) — the inlining exists because this runs tens of
        thousands of times per experiment.
        """
        flows = self._flows
        tasks = self._tasks
        task_demand = 0.0
        for task in tasks:
            task_demand += task.demand
        capacity = self.capacity

        if not flows:
            # Task-only pools (flush/compaction storage): no fluid
            # demand fixpoint, just proportional scaling of task rates.
            scale = 1.0 if task_demand <= capacity else capacity / task_demand
            used = 0.0
            for task in tasks:
                task.rate = task.demand * scale
                used += task.rate
            self._rewheel(now)
            return used

        demands = []
        keep_ups = []
        availables = []
        demand_sum = 0.0
        for flow in flows:
            flow.sync(now)
            unblocked = 1.0 - flow.blocked_fraction
            available = flow.max_parallelism * unblocked
            keep_up = (flow.arrival_rate * unblocked) * flow.work_per_message
            availables.append(available)
            keep_ups.append(keep_up)
            if flow._queue > _EPS:
                demand = available
            else:
                demand = min(available, keep_up)
            demands.append(demand)
            demand_sum += demand

        # Fixpoint over flow demand escalation: a flow that would be
        # underserved at its keep-up demand becomes backlogged and raises
        # its demand to its parallelism cap.  Demands only ever increase
        # inside this loop, so it terminates.  ``demand_sum`` is rebuilt
        # sequentially after any change — incremental adjustment would
        # round differently from the reference ``sum(demands)``.
        for _ in range(len(flows) + 1):
            total = task_demand + demand_sum
            scale = 1.0 if total <= capacity else capacity / total
            changed = False
            for i, flow in enumerate(flows):
                if (
                    flow._queue <= _EPS
                    and demands[i] * scale + _EPS < keep_ups[i]
                    and availables[i] > demands[i] + _EPS
                ):
                    demands[i] = availables[i]
                    changed = True
            if not changed:
                break
            demand_sum = 0.0
            for demand in demands:
                demand_sum += demand

        total = task_demand + demand_sum
        scale = 1.0 if total <= capacity else capacity / total

        used = 0.0
        for task in tasks:
            task.rate = task.demand * scale
            used += task.rate
        self._rewheel(now)
        sim = self.sim
        for i, flow in enumerate(flows):
            alloc = demands[i] * scale
            flow._alloc = alloc
            wpm = flow.work_per_message
            arrival = flow.arrival_rate
            capacity_msgs = alloc / wpm
            servable = arrival * (1.0 - flow.blocked_fraction)
            queue = flow._queue  # synced to `now` in the demand pass
            if queue > _EPS:
                serve = capacity_msgs
            else:
                serve = min(servable, capacity_msgs)
            flow._serve_rate = serve

            # FluidFlow._record_segment(now), inlined (the flow methods
            # remain the readable reference; see the docstring above).
            flow._history = None
            segments = flow.segments
            segment = FlowSegment(
                now, arrival, serve, queue, flow.blocked_fraction, alloc
            )
            if segments and abs(segments[-1].time - now) < _EPS:
                segments[-1] = segment
            else:
                segments.append(segment)

            # FluidFlow._schedule_empty_event(now), inlined
            pending = flow._empty_event
            drain = serve - arrival
            if queue > _EPS and drain > _EPS:
                when = now + queue / drain
                if pending is None or pending._cancelled or pending.time != when:
                    if pending is not None:
                        pending.cancel()
                    flow._empty_event = sim._queue.push(when, flow._on_queue_empty)
            elif pending is not None:
                pending.cancel()
                flow._empty_event = None

            # FluidFlow._notify_output(), inlined
            last = flow._last_notified_output
            reference = last if last > 1.0 else 1.0
            if abs(serve - last) / reference > _NOTIFY_TOLERANCE:
                flow._last_notified_output = serve
                for listener in flow.output_listeners:
                    listener(serve)

            used += serve * wpm
        return used

    def _flow_arrays(self) -> tuple:
        static = self._flow_static
        if static is None or static[0] != len(self._flows):
            flows = self._flows
            static = (
                len(flows),
                np.array([f.work_per_message for f in flows], dtype=float),
                np.array([f.max_parallelism for f in flows], dtype=float),
            )
            self._flow_static = static
        return static

    def _reallocate_vectorized(self, now: float) -> float:
        """Batched reallocation: one numpy op per formula, N flows each.

        Mirrors ``FluidFlow.sync`` / ``current_demand`` /
        ``escalated_demand`` / ``apply_allocation`` exactly: every
        elementwise float64 op matches the scalar expression order, and
        totals use sequential Python ``sum`` (numpy's pairwise ``np.sum``
        rounds differently), so results are bitwise identical to the
        scalar path.
        """
        flows = self._flows
        _, wpm, max_par = self._flow_arrays()
        arrival = np.array([f.arrival_rate for f in flows], dtype=float)
        blocked = np.array([f.blocked_fraction for f in flows], dtype=float)
        qv = np.array([f._queue for f in flows], dtype=float)
        serve_prev = np.array([f._serve_rate for f in flows], dtype=float)
        last_sync = np.array([f._last_sync for f in flows], dtype=float)

        # --- batched FluidFlow.sync(now) ---
        elapsed = now - last_sync
        if (elapsed > 0.0).any():
            inflow = arrival * elapsed
            outflow = serve_prev * elapsed
            served = np.minimum(outflow, qv + inflow)
            new_q = np.maximum(0.0, qv + inflow - outflow)
            active_list = (elapsed > 0.0).tolist()
            inflow_list = inflow.tolist()
            served_list = served.tolist()
            new_q_list = new_q.tolist()
            for i, flow in enumerate(flows):
                if active_list[i]:
                    flow.total_arrived += inflow_list[i]
                    flow.total_served += served_list[i]
                    flow._queue = new_q_list[i]
                flow._last_sync = now
            qv = np.where(elapsed > 0.0, new_q, qv)
        else:
            for flow in flows:
                flow._last_sync = now

        # --- batched current_demand / escalation fixpoint ---
        unblocked = 1.0 - blocked
        available = max_par * unblocked
        keep_up_units = (arrival * unblocked) * wpm
        backlogged = qv > _EPS
        demands = np.where(
            backlogged, available, np.minimum(available, keep_up_units)
        )
        task_demand = sum(task.demand for task in self._tasks)
        capacity = self.capacity
        for _ in range(len(flows) + 1):
            total = task_demand + sum(demands.tolist())
            scale = 1.0 if total <= capacity else capacity / total
            escalate = (
                ~backlogged
                & (demands * scale + _EPS < keep_up_units)
                & (available > demands + _EPS)
            )
            if not escalate.any():
                break
            demands = np.where(escalate, available, demands)

        total = task_demand + sum(demands.tolist())
        scale = 1.0 if total <= capacity else capacity / total

        used = 0.0
        for task in self._tasks:
            task.rate = task.demand * scale
            used += task.rate
        self._rewheel(now)

        # --- batched apply_allocation ---
        alloc = demands * scale
        capacity_msgs = alloc / wpm
        servable = arrival * unblocked
        serve = np.where(
            backlogged, capacity_msgs, np.minimum(servable, capacity_msgs)
        )
        alloc_list = alloc.tolist()
        serve_list = serve.tolist()
        used_list = (serve * wpm).tolist()
        for i, flow in enumerate(flows):
            flow._alloc = alloc_list[i]
            flow._serve_rate = serve_list[i]
            flow._record_segment(now)
            flow._schedule_empty_event(now)
            flow._notify_output()
            used += used_list[i]
        return used

    def _sync_tasks(self, now: float) -> None:
        elapsed = now - self._last_sync
        if elapsed > 0:
            for task in self._tasks:
                task.remaining = max(0.0, task.remaining - task.rate * elapsed)
        self._last_sync = now

    def _rewheel(self, now: float) -> None:
        """Re-aim the completion wheel at the earliest task finish.

        Finish times are recomputed as ``now + remaining / rate`` exactly
        as the per-task schedule always did, so the wheel fires at the
        identical float instants; ties keep task-list (submission) order.
        Exact float equality elides the cancel+push when the minimum is
        unchanged — any rounding difference must reschedule (the model's
        tails are sensitive even to last-ulp shifts in completion times,
        so approximate elision is off-limits).
        """
        best = None
        best_task = None
        for task in self._tasks:
            rate = task.rate
            if rate <= 0:
                continue
            finish = now + task.remaining / rate
            if best is None or finish < best:
                best = finish
                best_task = task
        pending = self._wheel_event
        if best_task is None:
            if pending is not None:
                pending.cancel()
                self._wheel_event = None
            self._wheel_task = None
            return
        self._wheel_task = best_task
        if pending is not None:
            if not pending._cancelled and pending.time == best:
                return
            pending.cancel()
        # direct queue push: best >= now by construction, so the
        # schedule() past-time guard is redundant on this path
        self._wheel_event = self.sim._queue.push(best, self._wheel_fire)

    def _wheel_fire(self) -> None:
        task = self._wheel_task
        self._wheel_event = None
        self._wheel_task = None
        self._complete(task)

    def _complete(self, task: ResourceTask) -> None:
        now = self.sim.now
        self._sync_tasks(now)
        task.remaining = 0.0
        task.end_time = now
        task.rate = 0.0
        self._tasks.remove(task)
        self._dirty = True
        for observer in self.task_observers:
            observer(task, "end")
        if task.on_complete is not None:
            task.on_complete(task)
        self.reallocate()

    def _record_util(self, now: float, used: float) -> None:
        used = min(used, self.capacity)
        if self.util_segments and abs(self.util_segments[-1][0] - now) < _EPS:
            self.util_segments[-1] = (now, used)
        elif not self.util_segments or abs(self.util_segments[-1][1] - used) > 1e-6:
            self.util_segments.append((now, used))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def utilization_at(self, time: float) -> float:
        """Units in use at *time* (0 before the first segment)."""
        result = 0.0
        for seg_time, used in self.util_segments:
            if seg_time > time:
                break
            result = used
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProcessorSharingResource {self.name!r} capacity={self.capacity} "
            f"tasks={len(self._tasks)} flows={len(self._flows)}>"
        )
