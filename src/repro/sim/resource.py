"""Processor-sharing resources: the millibottleneck substrate.

A :class:`ProcessorSharingResource` models a pool of identical capacity
units — CPU cores (units = cores) or a storage device (units = MB/s of
bandwidth) — shared by two kinds of consumers:

* **Tasks** (:class:`ResourceTask`): finite jobs with a fixed amount of
  work (CPU-seconds, megabytes) and a parallelism cap (a single
  compaction thread can use at most 1 core).  Flush and compaction jobs
  are tasks.
* **Flows** (:class:`FluidFlow`, see :mod:`repro.sim.fluid`): elastic,
  open-ended consumers representing message processing.  A flow exposes
  a demand (units it could use right now) that depends on its backlog.

Allocation is *proportional fair with caps*, which models an OS
fair-share scheduler across runnable threads: when the sum of demands
exceeds capacity every consumer is scaled by ``capacity / total_demand``.
This is exactly the mechanism behind the paper's millibottlenecks — a
burst of compaction tasks inflates total demand, the message-processing
flow's share collapses below its arrival rate, and queues build within
hundreds of milliseconds even though average utilization is moderate.

The resource keeps a piecewise-constant utilization timeline so
experiments can reproduce the paper's 50 ms point-in-time CPU plots
(Figure 6a).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import SimulationError
from .events import Event, LOW_PRIORITY
from .kernel import Simulator

__all__ = ["ResourceTask", "ProcessorSharingResource"]

#: Queue lengths below this are treated as empty (float hygiene).
_EPS = 1e-9


class ResourceTask:
    """A finite job running on a :class:`ProcessorSharingResource`.

    Parameters
    ----------
    name:
        Human-readable identifier (shows up in activity spans).
    kind:
        Category used by metrics, e.g. ``"flush"`` or ``"compaction"``.
    work:
        Total work in resource units × seconds (CPU-seconds, MB).
    demand:
        Maximum units the task can consume at once (thread count × 1 core).
    """

    __slots__ = (
        "name",
        "kind",
        "work",
        "demand",
        "remaining",
        "rate",
        "on_complete",
        "start_time",
        "end_time",
        "metadata",
        "_completion_event",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        work: float,
        demand: float = 1.0,
        on_complete: Optional[Callable[["ResourceTask"], None]] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        if work <= 0:
            raise SimulationError(f"task {name!r} has non-positive work {work}")
        if demand <= 0:
            raise SimulationError(f"task {name!r} has non-positive demand {demand}")
        self.name = name
        self.kind = kind
        self.work = work
        self.demand = demand
        self.remaining = work
        self.rate = 0.0
        self.on_complete = on_complete
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.metadata = metadata or {}
        self._completion_event: Optional[Event] = None

    @property
    def done(self) -> bool:
        return self.end_time is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResourceTask {self.name!r} kind={self.kind} "
            f"remaining={self.remaining:.4f}/{self.work:.4f}>"
        )


class ProcessorSharingResource:
    """A capacity pool shared proportionally among tasks and flows."""

    def __init__(self, sim: Simulator, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise SimulationError(f"resource {name!r} needs positive capacity")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._tasks: List[ResourceTask] = []
        self._flows: list = []  # List[FluidFlow]; untyped to avoid import cycle
        self._last_sync = sim.now
        #: Piecewise-constant utilization: list of ``(time, used_units)``.
        self.util_segments: List[tuple] = []
        #: Observers called with (task, "start"|"end") for span metrics.
        self.task_observers: List[Callable[[ResourceTask, str], None]] = []
        self._realloc_scheduled = False

    # ------------------------------------------------------------------
    # consumer registration
    # ------------------------------------------------------------------

    def add_flow(self, flow) -> None:
        """Attach a :class:`~repro.sim.fluid.FluidFlow` to this resource."""
        self._flows.append(flow)
        flow._attached(self)
        self.reallocate()

    def submit(self, task: ResourceTask) -> ResourceTask:
        """Start *task* now; its completion callback fires when the
        (contention-dependent) work is done."""
        task.start_time = self.sim.now
        self._tasks.append(task)
        for observer in self.task_observers:
            observer(task, "start")
        self.reallocate()
        return task

    @property
    def running_tasks(self) -> List[ResourceTask]:
        return list(self._tasks)

    def running_count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self._tasks)
        return sum(1 for t in self._tasks if t.kind == kind)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def set_capacity(self, capacity: float) -> None:
        """Change the pool's capacity (DVFS throttling, GC pauses).

        Running tasks and flows are immediately re-sized; the old
        capacity is not remembered — callers restore it themselves.
        """
        if capacity <= 0:
            raise SimulationError(f"resource {self.name!r}: capacity must be > 0")
        if capacity != self.capacity:
            self.capacity = capacity
            self.reallocate()

    def request_reallocation(self) -> None:
        """Coalesce multiple same-time reallocation triggers into one."""
        if self._realloc_scheduled:
            return
        self._realloc_scheduled = True
        self.sim.schedule(self.sim.now, self._deferred_realloc, priority=LOW_PRIORITY)

    def _deferred_realloc(self) -> None:
        self._realloc_scheduled = False
        self.reallocate()

    def reallocate(self) -> None:
        """Recompute every consumer's share; reschedule completions.

        Called whenever the consumer set or any demand changes.
        """
        now = self.sim.now
        self._sync_tasks(now)
        for flow in self._flows:
            flow.sync(now)

        # Fixpoint over flow demand escalation: a flow that would be
        # underserved at its keep-up demand becomes backlogged and raises
        # its demand to its parallelism cap.  Demands only ever increase
        # inside this loop, so it terminates.
        demands = {id(flow): flow.current_demand() for flow in self._flows}
        task_demand = sum(task.demand for task in self._tasks)
        for _ in range(len(self._flows) + 1):
            total = task_demand + sum(demands.values())
            scale = 1.0 if total <= self.capacity else self.capacity / total
            changed = False
            for flow in self._flows:
                alloc = demands[id(flow)] * scale
                escalated = flow.escalated_demand(alloc)
                if escalated is not None and escalated > demands[id(flow)] + _EPS:
                    demands[id(flow)] = escalated
                    changed = True
            if not changed:
                break

        total = task_demand + sum(demands.values())
        scale = 1.0 if total <= self.capacity else self.capacity / total

        used = 0.0
        for task in self._tasks:
            task.rate = task.demand * scale
            used += task.rate
            self._reschedule_completion(task, now)
        for flow in self._flows:
            alloc = demands[id(flow)] * scale
            used += flow.apply_allocation(alloc, now)

        self._record_util(now, used)

    def _sync_tasks(self, now: float) -> None:
        elapsed = now - self._last_sync
        if elapsed > 0:
            for task in self._tasks:
                task.remaining = max(0.0, task.remaining - task.rate * elapsed)
        self._last_sync = now

    def _reschedule_completion(self, task: ResourceTask, now: float) -> None:
        if task._completion_event is not None:
            task._completion_event.cancel()
        if task.rate <= 0:
            task._completion_event = None
            return
        finish = now + task.remaining / task.rate
        task._completion_event = self.sim.schedule(finish, self._complete, task)

    def _complete(self, task: ResourceTask) -> None:
        now = self.sim.now
        self._sync_tasks(now)
        task.remaining = 0.0
        task.end_time = now
        task.rate = 0.0
        task._completion_event = None
        self._tasks.remove(task)
        for observer in self.task_observers:
            observer(task, "end")
        if task.on_complete is not None:
            task.on_complete(task)
        self.reallocate()

    def _record_util(self, now: float, used: float) -> None:
        used = min(used, self.capacity)
        if self.util_segments and abs(self.util_segments[-1][0] - now) < _EPS:
            self.util_segments[-1] = (now, used)
        elif not self.util_segments or abs(self.util_segments[-1][1] - used) > 1e-6:
            self.util_segments.append((now, used))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def utilization_at(self, time: float) -> float:
        """Units in use at *time* (0 before the first segment)."""
        result = 0.0
        for seg_time, used in self.util_segments:
            if seg_time > time:
                break
            result = used
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProcessorSharingResource {self.name!r} capacity={self.capacity} "
            f"tasks={len(self._tasks)} flows={len(self._flows)}>"
        )
