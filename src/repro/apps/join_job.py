"""A windowed ad-attribution join with downstream sessionization.

Two event streams share one Kafka topic — ad *impressions* (~70 % of
the traffic) and ad *clicks* (~30 %) — and meet in a keyed windowed
join that attributes each click to the impression that caused it.  The
join buffers every event for the window duration, so unlike the traffic
job's overwrite-heavy state its working set grows with ``rate ×
window`` *distinct* keys: memtables fill with fresh entries instead of
saturating, flushes are large, and both input branches must align on
the same checkpoint barrier — the two-input topology ShadowSync's
hidden synchronization hits hardest.  A sessionization stage downstream
keeps per-user session aggregates over the attributed stream.

Topology (4 nodes x 16 cores, like the traffic deployment)::

    source (1.0) --0.7--> impressions (32, stateless parse) \
                                                             join (64, windowed state)
    source       --0.3--> clicks      (32, stateless parse) /      |
                                                                sessions (16, keyed state)
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..config import CheckpointConfig, ClusterConfig, CostModel
from ..core.mitigation import MitigationPlan
from ..errors import ConfigurationError
from ..storage.backend import StorageProfile, TMPFS
from ..stream.engine import StreamJob
from ..trace import Tracer
from ..stream.sources import ConstantSource
from ..stream.stage import SOURCE_INPUT, StageSpec
from .tenancy import tenant_initial_l0, tenantize

__all__ = ["JOIN_STAGES", "build_join_job"]

#: The two-input topology.  ``join.distinct_keys`` here corresponds to
#: the default ``rate = 40 000 msg/s`` x ``window_s = 30``; the builder
#: rescales it when either knob changes.
JOIN_STAGES = (
    StageSpec(
        name="impressions",
        parallelism=32,
        selectivity=1.0,
        stateful=False,
        work_multiplier=0.5,
        inputs=(SOURCE_INPUT,),
        source_fraction=0.7,
    ),
    StageSpec(
        name="clicks",
        parallelism=32,
        selectivity=1.0,
        stateful=False,
        work_multiplier=0.5,
        inputs=(SOURCE_INPUT,),
        source_fraction=0.3,
    ),
    StageSpec(
        name="join",
        parallelism=64,
        state_entry_bytes=400.0,
        distinct_keys=1_200_000,
        selectivity=0.3,
        work_multiplier=1.5,
        inputs=("impressions", "clicks"),
    ),
    StageSpec(
        name="sessions",
        parallelism=16,
        state_entry_bytes=800.0,
        distinct_keys=50_000,
        selectivity=0.0,
        work_multiplier=0.5,
        inputs=("join",),
    ),
)


def build_join_job(
    checkpoint_interval_s: float = 8.0,
    mitigation: Optional[MitigationPlan] = None,
    storage: StorageProfile = TMPFS,
    message_rate: float = 40000.0,
    window_s: float = 30.0,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    tracer: Optional[Tracer] = None,
    tie_break: str = "fifo",
    scale: int = 1,
    source=None,
    skew: Sequence = (),
    tenants: int = 1,
) -> StreamJob:
    """Assemble the windowed-join / sessionization job.

    ``window_s`` is the join's buffering horizon: its distinct-key count
    is ``message_rate x window_s`` (every buffered event is a fresh
    key), which is what makes the join's flush pattern append-heavy
    instead of overwrite-saturated.

    ``scale = G`` builds a 1/G slice for sharded execution, exactly as
    the traffic job does: G must divide the node count (4) and every
    stage's parallelism.

    ``source``/``skew``/``tenants`` as in
    :func:`~repro.apps.traffic_job.build_traffic_job` (scenario knobs).
    """
    if scale < 1:
        raise ConfigurationError(f"scale must be >= 1, got {scale}")
    num_nodes = 4
    if num_nodes % scale != 0:
        raise ConfigurationError(
            f"join job: {num_nodes} nodes not divisible into {scale} shards"
        )
    if window_s <= 0:
        raise ConfigurationError(f"window_s must be > 0, got {window_s}")
    stages = tenantize(
        tuple(
            replace(spec, distinct_keys=int(message_rate * window_s))
            if spec.name == "join"
            else spec
            for spec in JOIN_STAGES
        ),
        tenants,
    )
    return StreamJob(
        stages=tuple(spec.scaled(scale) for spec in stages),
        source=source if source is not None else ConstantSource(message_rate / scale),
        cluster=ClusterConfig(
            num_nodes=num_nodes // scale, cores_per_node=16, storage=storage
        ),
        cost=cost or CostModel(),
        checkpoint=CheckpointConfig(
            interval_s=checkpoint_interval_s, first_at_s=checkpoint_interval_s
        ),
        mitigation=mitigation,
        tracer=tracer,
        initial_l0=tenant_initial_l0({"join": 0, "sessions": 0}, tenants),
        seed=seed,
        tie_break=tie_break,
        skew=skew,
    )
