"""Multi-tenant topologies: several jobs sharing one cluster.

A *tenant* is one full copy of an app's stage chain, renamed under a
``t<i>.`` prefix, sliced to ``1/tenants`` of the parallelism and key
space (per-instance load is unchanged, exactly like sharded execution)
and ingesting ``1/tenants`` of the shared source rate.  All copies keep
running on the *same* nodes — that co-residency is the point: every
tenant's flushes and compactions land in the shared per-node background
pools, so one tenant's checkpoint-synchronized LSM maintenance becomes
another tenant's latency tail (the noisy-neighbor variant of
ShadowSync's hidden synchronization).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence, Tuple

from ..errors import ConfigurationError
from ..stream.stage import SOURCE_INPUT, StageSpec

__all__ = ["tenantize", "tenant_initial_l0"]


def tenantize(stages: Sequence[StageSpec], tenants: int) -> Tuple[StageSpec, ...]:
    """Replicate *stages* into *tenants* prefixed copies sharing the nodes.

    Every stage's parallelism and key space shrink by ``tenants`` (via
    :meth:`StageSpec.scaled`, which enforces divisibility), its source
    share shrinks by ``tenants``, and implicit linear-chain wiring is
    made explicit so each tenant's chain stays self-contained.
    """
    if tenants < 1:
        raise ConfigurationError(f"tenants must be >= 1, got {tenants}")
    if tenants == 1:
        return tuple(stages)
    out = []
    for tenant in range(tenants):
        prefix = f"t{tenant}."
        previous = None
        for spec in stages:
            if spec.inputs is None:
                inputs = (SOURCE_INPUT,) if previous is None else (previous,)
            else:
                inputs = tuple(
                    name if name == SOURCE_INPUT else prefix + name
                    for name in spec.inputs
                )
            out.append(
                replace(
                    spec.scaled(tenants),
                    name=prefix + spec.name,
                    inputs=inputs,
                    source_fraction=spec.source_fraction / tenants,
                )
            )
            previous = prefix + spec.name
    return tuple(out)


def tenant_initial_l0(initial_l0: dict, tenants: int) -> dict:
    """Remap per-stage initial L0 counters onto the prefixed copies."""
    if tenants == 1:
        return initial_l0
    return {
        f"t{tenant}.{stage}": phase
        for tenant in range(tenants)
        for stage, phase in initial_l0.items()
    }
