"""The real-time traffic-jam-ranking benchmark (Figure 4).

Three stages over connected-car events in metropolitan Tokyo:

* ``s0`` — 64 car-object instances: update each car's state from its
  sensor message (heavy keyed state: one entry per car);
* ``s1`` — 64 street-object instances: aggregate cars per street and
  compute the street's jam degree (medium state), emitting periodic
  ranking updates;
* ``s2`` — 1 ranking instance aggregating the city-wide top-K (small
  state, light work).

The builder mirrors the paper's deployment: 4 worker nodes × 16 cores,
60 k msg/s, RocksDB state on tmpfs (or NVMe for §5.3), checkpoint
interval 16 s (§3.2) or 8 s (§3.3/§5).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from ..config import CheckpointConfig, ClusterConfig, CostModel
from ..core.mitigation import MitigationPlan
from ..errors import ConfigurationError
from ..storage.backend import StorageProfile, TMPFS
from ..stream.engine import StreamJob
from ..trace import Tracer
from ..stream.sources import ConstantSource
from ..stream.stage import StageSpec
from .tenancy import tenant_initial_l0, tenantize

__all__ = ["TRAFFIC_STAGES", "build_traffic_job", "INITIAL_L0_PRESETS"]

#: The paper's three-stage pipeline (64 / 64 / 1 instances).  60 000
#: connected cars (one ~1 kB state object each, updated every second)
#: and ~10 000 streets (a ~2.5 kB aggregate of the cars currently on the
#: street); the ranking stage keeps a small top-K summary.
TRAFFIC_STAGES = (
    StageSpec(
        name="s0",
        parallelism=64,
        state_entry_bytes=1000.0,
        distinct_keys=60000,
        selectivity=1.0,
    ),
    StageSpec(
        name="s1",
        parallelism=64,
        state_entry_bytes=2500.0,
        distinct_keys=10000,
        selectivity=0.01,
    ),
    StageSpec(
        name="s2",
        parallelism=1,
        state_entry_bytes=200.0,
        distinct_keys=1000,
        selectivity=0.0,
        work_multiplier=0.5,
    ),
)

#: Initial L0-counter conditions (§3.3): "aligned" puts every stage on
#: the same phase — the statistical ShadowSync worst case — while
#: "staggered" offsets s0 by half a cycle, producing the alternating
#: per-stage bursts of §3.2 (Figure 6(d)).
INITIAL_L0_PRESETS: Dict[str, Dict[str, int]] = {
    "aligned": {"s0": 0, "s1": 0, "s2": 0},
    "staggered": {"s0": 2, "s1": 0, "s2": 0},
}


def build_traffic_job(
    checkpoint_interval_s: float = 8.0,
    mitigation: Optional[MitigationPlan] = None,
    storage: StorageProfile = TMPFS,
    message_rate: float = 60000.0,
    initial_l0: Union[str, Dict[str, int]] = "aligned",
    seed: int = 0,
    cost: Optional[CostModel] = None,
    tracer: Optional[Tracer] = None,
    tie_break: str = "fifo",
    scale: int = 1,
    source=None,
    skew: Sequence = (),
    tenants: int = 1,
) -> StreamJob:
    """Assemble the traffic-jam job with the paper's deployment shape.

    ``scale = G`` builds a 1/G slice of the deployment for sharded
    execution (:mod:`repro.experiments.shard`): nodes, stage
    parallelism, key spaces and the source rate all shrink by G, so
    per-node and per-instance load match the full cluster exactly.
    G must divide the node count (4) and every stage's parallelism
    (singleton stages are replicated, see :meth:`StageSpec.scaled`).

    ``source`` overrides the default constant-rate source (scenario
    workloads pass diurnal or closed-loop sources, already scaled);
    ``skew`` is a hot-key schedule of ``(at_s, hot_fraction, hot_node)``
    entries; ``tenants`` replicates the chain into that many copies
    sharing the nodes (see :mod:`repro.apps.tenancy`).
    """
    if scale < 1:
        raise ConfigurationError(f"scale must be >= 1, got {scale}")
    num_nodes = 4
    if num_nodes % scale != 0:
        raise ConfigurationError(
            f"traffic job: {num_nodes} nodes not divisible into {scale} shards"
        )
    if isinstance(initial_l0, str):
        try:
            initial_l0 = INITIAL_L0_PRESETS[initial_l0]
        except KeyError:
            raise ConfigurationError(
                f"unknown initial_l0 preset {initial_l0!r}; "
                f"available: {sorted(INITIAL_L0_PRESETS)}"
            ) from None
    stages = tenantize(TRAFFIC_STAGES, tenants)
    return StreamJob(
        stages=tuple(spec.scaled(scale) for spec in stages),
        source=source if source is not None else ConstantSource(message_rate / scale),
        cluster=ClusterConfig(
            num_nodes=num_nodes // scale, cores_per_node=16, storage=storage
        ),
        cost=cost or CostModel(),
        checkpoint=CheckpointConfig(
            interval_s=checkpoint_interval_s, first_at_s=checkpoint_interval_s
        ),
        mitigation=mitigation,
        tracer=tracer,
        initial_l0=tenant_initial_l0(initial_l0, tenants),
        seed=seed,
        tie_break=tie_break,
        skew=skew,
    )
