"""The Kafka Streams WordCount benchmark (§5.2).

A stateful word-count topology on a *single* dedicated node (two
octa-core processors = 16 cores), 64 partitions to use every core, with
RocksDB keeping each counter partition's state.  Sentences arrive at
~25 k/s, splitting is stateless, and the `count` step updates one keyed
counter per word — so its RocksDB instances see exactly the
flush/compaction pattern that produces ShadowSync, just on one machine.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import CheckpointConfig, ClusterConfig, CostModel
from ..core.mitigation import MitigationPlan
from ..errors import ConfigurationError
from ..storage.backend import StorageProfile, TMPFS
from ..stream.engine import StreamJob
from ..trace import Tracer
from ..stream.sources import ConstantSource
from ..stream.stage import StageSpec
from .tenancy import tenant_initial_l0, tenantize

__all__ = ["WORDCOUNT_STAGES", "build_wordcount_job"]

#: split (stateless flatMap) → count (keyed counters in RocksDB).
#: ~60 k effective vocabulary at ~200 B of state per word (count plus
#: changelog bookkeeping).
WORDCOUNT_STAGES = (
    StageSpec(
        name="split",
        parallelism=64,
        state_entry_bytes=0.0,
        selectivity=1.0,
        stateful=False,
    ),
    StageSpec(
        name="count",
        parallelism=64,
        state_entry_bytes=200.0,
        distinct_keys=60000,
        selectivity=0.0,
    ),
)


def build_wordcount_job(
    commit_interval_s: float = 8.0,
    mitigation: Optional[MitigationPlan] = None,
    storage: StorageProfile = TMPFS,
    sentence_rate: float = 25000.0,
    seed: int = 0,
    cost: Optional[CostModel] = None,
    tracer: Optional[Tracer] = None,
    tie_break: str = "fifo",
    scale: int = 1,
    source=None,
    skew: Sequence = (),
    tenants: int = 1,
) -> StreamJob:
    """Assemble the single-node WordCount job.

    ``commit_interval_s`` plays Flink's checkpoint-interval role: Kafka
    Streams flushes its RocksDB stores on each commit.

    ``scale = G`` builds a 1/G slice for sharded execution: the single
    node is sliced by *cores* (16/G cores, 64/G partitions, 1/G of the
    sentence rate), keeping per-core load identical.  The per-message
    CPU cost is intensive and does not scale.

    ``source``/``skew``/``tenants`` as in
    :func:`~repro.apps.traffic_job.build_traffic_job` (scenario knobs).
    """
    cores_per_node = 16
    if scale < 1:
        raise ConfigurationError(f"scale must be >= 1, got {scale}")
    if cores_per_node % scale != 0:
        raise ConfigurationError(
            f"wordcount job: {cores_per_node} cores not divisible into "
            f"{scale} shards"
        )
    if cost is None:
        # 25 k msg/s through two steps on 16 cores at ~70 % average CPU
        # (the paper's reported Kafka-node utilization).
        cost = CostModel(cpu_seconds_per_message=16 * 0.70 / (2 * 25000.0))
    stages = tenantize(WORDCOUNT_STAGES, tenants)
    return StreamJob(
        stages=tuple(spec.scaled(scale) for spec in stages),
        source=source if source is not None else ConstantSource(sentence_rate / scale),
        cluster=ClusterConfig(
            num_nodes=1, cores_per_node=cores_per_node // scale, storage=storage
        ),
        cost=cost,
        checkpoint=CheckpointConfig(
            interval_s=commit_interval_s, first_at_s=commit_interval_s
        ),
        mitigation=mitigation,
        tracer=tracer,
        initial_l0=tenant_initial_l0({"count": 0}, tenants),
        seed=seed,
        tie_break=tie_break,
        skew=skew,
    )
