"""Benchmark applications built on the public engine API."""

from .join_job import JOIN_STAGES, build_join_job
from .traffic_job import INITIAL_L0_PRESETS, TRAFFIC_STAGES, build_traffic_job
from .wordcount_job import WORDCOUNT_STAGES, build_wordcount_job

__all__ = [
    "INITIAL_L0_PRESETS",
    "TRAFFIC_STAGES",
    "build_traffic_job",
    "WORDCOUNT_STAGES",
    "build_wordcount_job",
    "JOIN_STAGES",
    "build_join_job",
]
