"""The stable public facade of the reproduction.

``repro.api`` is the one import surface scripts, notebooks and examples
should use.  Everything here is re-exported from its implementation
module and covered by the schema/round-trip tests; internal module
paths (``repro.experiments.runner`` etc.) may reorganize between
releases, this namespace will not.

Quickstart::

    from repro import api

    result = api.run_scenario(
        "diurnal_flash",                       # or a custom ScenarioSpec
        settings=api.ExperimentSettings(
            duration_s=104.0, warmup_s=32.0, trace=True))
    print(result.tail_summary(start=32.0))
    report = result.millibottleneck_report(start=32.0)
    print(report.attributed_fraction, report.classification)
    result.export_trace("run.trace.json", format="chrome")  # → Perfetto

:func:`run_scenario` is the canonical entry point; ``run_traffic`` and
``run_wordcount`` remain as deprecated wrappers over it.
"""

from __future__ import annotations

from .analysis.millibottleneck import (
    MillibottleneckReport,
    SpikeAttribution,
    analyze_result,
    analyze_summary,
    analyze_trace,
)
from .apps.join_job import build_join_job
from .apps.traffic_job import build_traffic_job
from .apps.wordcount_job import build_wordcount_job
from .cluster import (
    ClusterManager,
    ClusterSpec,
    MembershipEvent,
    NodeSpec,
    PhiAccrualDetector,
    install_cluster,
)
from .config import CheckpointConfig, ClusterConfig, CostModel
from .core import (
    MitigationPlan,
    OnlineAutoTuner,
    ShadowSyncDetector,
    TunedConfig,
    TuneReport,
    estimate_drain_time,
    recommend_compaction_threads,
    recommend_flush_threads,
    tune,
)
from .experiments.parallel import RunSpec, run_grid, sweep
from .experiments.profile import ProfileReport, profile_run
from .experiments.shard import (
    ShardPlan,
    ShardedResult,
    execute_spec_sharded,
    merge_summaries,
    plan_shards,
)
from .experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    run_traffic,
    run_wordcount,
)
from .errors import OverloadError, RetryExhaustedError, WatchdogError
from .experiments.report import render_series, render_table, render_tails
from .experiments.summary import RunSummary, summarize_run
from .faults import (
    ALL_FAULT_KINDS,
    CLUSTER_FAULT_KINDS,
    FAULT_KINDS,
    CheckpointedWordCount,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InvariantChecker,
    InvariantViolation,
    inject_faults,
    load_fault_plan,
    preset_plan,
)
from .lsm import (
    CompactionPolicy,
    LSMOptions,
    LSMStore,
    make_policy,
    policy_names,
    register_policy,
)
from .resilience import (
    CircuitBreaker,
    Deadline,
    LoadShedder,
    OverloadController,
    ResilienceConfig,
    ResilientKafkaCommitter,
    ResilientUploader,
    RetryPolicy,
    SLOGuard,
    Watchdog,
    install_resilience,
)
from .resilience.soak import SoakReport, run_soak
from .scenarios import (
    SCENARIOS,
    SOAK_POOL,
    ScenarioSpec,
    WorkloadSpec,
    build_scenario_job,
    run_scenario,
    sample_scenario,
    sample_scenarios,
    scenario,
    scenario_names,
)
from .sanitize import (
    Finding,
    OrderingReport,
    RaceReport,
    SanitizeReport,
    check_ordering,
    SyncAuditReport,
    SyncEdge,
    SyncPrimitive,
    SYNC_CATALOG,
    analyze_sync,
    detect_races,
    findings_json,
    findings_sarif,
    lint_paths,
    render_findings,
    sanitize_experiment,
)
from .serialize import from_dict, to_dict
from .sim import Simulator
from .storage.backend import HDD, NVME_SSD, TMPFS, StorageProfile
from .stream.engine import StreamJob, StreamJobResult
from .stream.sources import ConstantSource
from .stream.stage import StageSpec
from .trace import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    TraceEvent,
    Tracer,
    read_jsonl,
)

__all__ = [
    # scenarios (the canonical entry point)
    "run_scenario",
    "ScenarioSpec",
    "WorkloadSpec",
    "SCENARIOS",
    "SOAK_POOL",
    "scenario",
    "scenario_names",
    "sample_scenario",
    "sample_scenarios",
    "build_scenario_job",
    # runs (run_traffic / run_wordcount are deprecated wrappers)
    "run_traffic",
    "run_wordcount",
    "sweep",
    "run_grid",
    "summarize_run",
    "ExperimentSettings",
    "DEFAULT_SETTINGS",
    "RunSpec",
    "RunSummary",
    # sharded execution
    "ShardPlan",
    "ShardedResult",
    "plan_shards",
    "execute_spec_sharded",
    "merge_summaries",
    # profiling
    "profile",
    "profile_run",
    "ProfileReport",
    # jobs
    "build_traffic_job",
    "build_wordcount_job",
    "build_join_job",
    "StreamJob",
    "StreamJobResult",
    "StageSpec",
    "ConstantSource",
    "Simulator",
    "MitigationPlan",
    "CheckpointConfig",
    "ClusterConfig",
    "CostModel",
    "StorageProfile",
    "TMPFS",
    "NVME_SSD",
    "HDD",
    "LSMOptions",
    "LSMStore",
    # mitigation zoo (pluggable compaction/scheduling policies)
    "CompactionPolicy",
    "make_policy",
    "policy_names",
    "register_policy",
    # diagnosis & tuning
    "ShadowSyncDetector",
    "OnlineAutoTuner",
    "estimate_drain_time",
    "recommend_flush_threads",
    "recommend_compaction_threads",
    "tune",
    "TunedConfig",
    "TuneReport",
    # elastic cluster layer (membership, failover, migration)
    "ClusterSpec",
    "NodeSpec",
    "MembershipEvent",
    "ClusterManager",
    "PhiAccrualDetector",
    "install_cluster",
    # fault injection & recovery
    "FAULT_KINDS",
    "CLUSTER_FAULT_KINDS",
    "ALL_FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "InvariantChecker",
    "InvariantViolation",
    "CheckpointedWordCount",
    "inject_faults",
    "load_fault_plan",
    "preset_plan",
    # overload protection & chaos soak
    "ResilienceConfig",
    "SLOGuard",
    "OverloadController",
    "LoadShedder",
    "RetryPolicy",
    "Deadline",
    "CircuitBreaker",
    "ResilientUploader",
    "ResilientKafkaCommitter",
    "Watchdog",
    "install_resilience",
    "run_soak",
    "SoakReport",
    "OverloadError",
    "RetryExhaustedError",
    "WatchdogError",
    # reporting
    "render_tails",
    "render_series",
    "render_table",
    # tracing
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "TRACE_SCHEMA_VERSION",
    "read_jsonl",
    # analysis
    "MillibottleneckReport",
    "SpikeAttribution",
    "analyze_result",
    "analyze_summary",
    "analyze_trace",
    # serialization
    "to_dict",
    "from_dict",
    # static analysis & sanitizers
    "lint",
    "sanitize",
    "lint_paths",
    "render_findings",
    "findings_json",
    "findings_sarif",
    "detect_races",
    "check_ordering",
    "sanitize_experiment",
    "Finding",
    "RaceReport",
    "OrderingReport",
    "SanitizeReport",
    # hidden-synchronization analyzer
    "analyze_sync",
    "SyncAuditReport",
    "SyncEdge",
    "SyncPrimitive",
    "SYNC_CATALOG",
]


def lint(*paths):
    """Determinism-lint *paths* (default: this installed package).

    Returns the list of :class:`~repro.sanitize.Finding` — empty means
    clean.  Equivalent to the ``repro lint`` CLI subcommand.
    """
    from pathlib import Path

    targets = [Path(p) for p in paths]
    if not targets:
        targets = [Path(__file__).resolve().parent]
    return lint_paths(targets)


def profile(**kwargs) -> ProfileReport:
    """Profile one benchmark run: kernel dispatch histogram plus an
    optional cProfile pass; see
    :func:`repro.experiments.profile.profile_run` for the keyword
    arguments.  Equivalent to ``repro profile``.
    """
    return profile_run(**kwargs)


def sanitize(**kwargs) -> SanitizeReport:
    """Run the runtime sanitizers (race detector + ordering checks) on
    one benchmark; see :func:`repro.sanitize.sanitize_experiment` for
    the keyword arguments.  Equivalent to ``repro sanitize``.
    """
    return sanitize_experiment(**kwargs)
