"""Latency recovery and percentile math.

The fluid flows record piecewise-constant arrival and service rates
(:class:`~repro.sim.fluid.FlowSegment`).  Because the queue is FIFO, the
latency of a message arriving at time ``t`` is exactly

    L(t) = D⁻¹(A(t)) − t

where ``A`` and ``D`` are the cumulative arrival and departure curves.
This module evaluates that inversion on a uniform grid (numpy), composes
latencies across pipeline stages, and provides weighted and windowed
quantiles used throughout the evaluation (p95 / p99 / p99.9 per 50 ms
window, as in the paper's figures).
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError

__all__ = [
    "rates_on_grid",
    "latency_from_segments",
    "compose_latencies",
    "weighted_quantile",
    "windowed_quantile",
    "tail_summary",
]


def rates_on_grid(
    segments: Sequence,
    start: float,
    end: float,
    dt: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sample a flow's recorded history on a uniform grid.

    *segments* is either a sequence of
    :class:`~repro.sim.fluid.FlowSegment` or a pre-extracted
    :class:`~repro.sim.fluid.FlowHistory` (cached arrays — the fast
    path used by :class:`~repro.stream.engine.StreamJobResult`).

    Returns ``(times, arrival_rate, serve_rate, queue)`` arrays.  Each
    grid point takes the value of the segment in force at that time.
    """
    if hasattr(segments, "times"):  # FlowHistory: already arrays
        seg_times = segments.times
        lam = segments.arrival
        mu = segments.serve
        queue0 = segments.queue
    else:
        seg_times = np.array([s.time for s in segments])
        lam = np.array([s.arrival_rate for s in segments])
        mu = np.array([s.serve_rate for s in segments])
        queue0 = np.array([s.queue for s in segments])
    if len(seg_times) == 0:
        raise AnalysisError("flow recorded no segments")
    if end <= start:
        raise AnalysisError(f"empty grid interval [{start}, {end}]")
    times = np.arange(start, end, dt)
    idx = np.clip(np.searchsorted(seg_times, times, side="right") - 1, 0, None)
    before_first = times < seg_times[0]
    arrival = np.where(before_first, 0.0, lam[idx])
    serve = np.where(before_first, 0.0, mu[idx])
    queue = np.where(
        before_first,
        0.0,
        np.maximum(0.0, queue0[idx] + (lam[idx] - mu[idx]) * (times - seg_times[idx])),
    )
    return times, arrival, serve, queue


def latency_from_segments(
    segments: Sequence,
    start: float,
    end: float,
    dt: float = 0.01,
    base_latency: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact FIFO latency for arrivals on a uniform grid.

    Parameters
    ----------
    segments:
        A flow's :attr:`~repro.sim.fluid.FluidFlow.segments`.
    start, end, dt:
        Grid over which to evaluate arrivals.
    base_latency:
        Constant added to every message (processing + framework
        overhead outside the queue).

    Returns
    -------
    (times, latency, arrival_rate):
        Arrival times, per-arrival latency in seconds, and the arrival
        rate at each grid point (used as a weight for run-level
        percentiles).  Arrivals whose departure falls past the recorded
        history are right-censored at the history's end.
    """
    times, arrival, serve, _queue = rates_on_grid(segments, start, end, dt)
    cum_arrivals = np.cumsum(arrival) * dt
    cum_departures = np.cumsum(serve) * dt
    # D must never exceed A (service of fluid that has not arrived);
    # numerical integration can introduce tiny violations.
    cum_departures = np.minimum(cum_departures, cum_arrivals)

    idx = np.searchsorted(cum_departures, cum_arrivals, side="left")
    latency = np.empty_like(times)
    censored = idx >= len(times)
    idx_clamped = np.minimum(idx, len(times) - 1)

    # Linear interpolation inside the departure step for sub-dt accuracy.
    dep_hi = cum_departures[idx_clamped]
    dep_lo = np.where(idx_clamped > 0, cum_departures[idx_clamped - 1], 0.0)
    step = np.maximum(dep_hi - dep_lo, 1e-12)
    frac = np.clip((cum_arrivals - dep_lo) / step, 0.0, 1.0)
    depart_time = times[idx_clamped] - dt + frac * dt
    latency = np.maximum(0.0, depart_time - times)
    latency[censored] = end - times[censored]
    return times, latency + base_latency, arrival


def compose_latencies(
    times: np.ndarray,
    stage_latencies: Iterable[np.ndarray],
) -> np.ndarray:
    """End-to-end latency of a pipeline from per-stage latencies.

    A message entering stage 1 at time ``t`` enters stage 2 at
    ``t + L1(t)``, so the composition is
    ``L(t) = L1(t) + L2(t + L1(t)) + ...`` with interpolation between
    grid points.
    """
    stage_list: List[np.ndarray] = list(stage_latencies)
    if not stage_list:
        raise AnalysisError("no stage latencies to compose")
    total = np.zeros_like(times)
    entry = times.astype(float).copy()
    for latency in stage_list:
        this = np.interp(entry, times, latency)
        total += this
        entry = entry + this
    return total


def weighted_quantile(
    values: np.ndarray, quantile: float, weights: np.ndarray = None
) -> float:
    """Quantile of *values* with optional non-negative *weights*."""
    if not 0.0 <= quantile <= 1.0:
        raise AnalysisError(f"quantile {quantile} outside [0, 1]")
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise AnalysisError("weighted_quantile of empty array")
    if weights is None:
        return float(np.quantile(values, quantile))
    weights = np.asarray(weights, dtype=float)
    if weights.shape != values.shape:
        raise AnalysisError("weights shape mismatch")
    order = np.argsort(values)
    values = values[order]
    weights = weights[order]
    total = weights.sum()
    if total <= 0:
        raise AnalysisError("weights sum to zero")
    cumulative = np.cumsum(weights) - 0.5 * weights
    return float(np.interp(quantile * total, cumulative, values))


def windowed_quantile(
    times: np.ndarray,
    values: np.ndarray,
    window: float,
    quantile: float,
    weights: np.ndarray = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-window quantile series (the paper's 50 ms timeline plots).

    Returns ``(window_start_times, quantile_values)``; empty windows
    are dropped.
    """
    if window <= 0:
        raise AnalysisError("window must be positive")
    if not 0.0 <= quantile <= 1.0:
        raise AnalysisError(f"quantile {quantile} outside [0, 1]")
    start = float(times[0])
    bins = np.floor((times - start) / window).astype(int)
    # One global sort by (bin, value) replaces a per-window argsort —
    # the fine 50 ms timelines have thousands of windows.
    order = np.lexsort((values, bins))
    bins_sorted = bins[order]
    values_sorted = np.asarray(values, dtype=float)[order]
    weights_sorted = (
        None if weights is None else np.asarray(weights, dtype=float)[order]
    )
    unique_bins, first = np.unique(bins_sorted, return_index=True)
    boundaries = np.append(first, len(bins_sorted))
    out_times: List[float] = []
    out_values: List[float] = []
    bins_list = unique_bins.tolist()
    lo_list = boundaries[:-1].tolist()
    hi_list = boundaries[1:].tolist()
    # The fine 50 ms timelines have thousands of windows holding only a
    # handful of points each, where per-window numpy calls cost more
    # than the arithmetic.  Sequential Python float math is bit-equal
    # to numpy for fewer than 8 addends (pairwise summation starts at
    # 8), so small weighted windows take a list-based path replicating
    # np.cumsum / ndarray.sum / np.interp op-for-op; larger windows
    # keep the original numpy expressions.
    vals = values_sorted.tolist() if weights_sorted is not None else None
    wts = weights_sorted.tolist() if weights_sorted is not None else None
    for b, lo, hi in zip(bins_list, lo_list, hi_list):
        if weights_sorted is None:
            out_times.append(start + b * window)
            out_values.append(float(np.quantile(values_sorted[lo:hi], quantile)))
            continue
        if hi - lo < 8:
            total = 0.0
            for i in range(lo, hi):
                total += wts[i]
            if total <= 0:
                continue
            x = quantile * total
            running = 0.0
            cum = []
            for i in range(lo, hi):
                wv = wts[i]
                running += wv
                cum.append(running - 0.5 * wv)
            if x <= cum[0]:
                res = vals[lo]
            elif x >= cum[-1]:
                res = vals[hi - 1]
            else:
                j = bisect.bisect_right(cum, x) - 1
                cj = cum[j]
                if cj == x:
                    res = vals[lo + j]
                else:
                    slope = (vals[lo + j + 1] - vals[lo + j]) / (cum[j + 1] - cj)
                    res = slope * (x - cj) + vals[lo + j]
            out_times.append(start + b * window)
            out_values.append(res)
            continue
        w = weights_sorted[lo:hi]
        total = w.sum()
        if total <= 0:
            continue
        cumulative = np.cumsum(w) - 0.5 * w
        out_times.append(start + b * window)
        out_values.append(
            float(np.interp(quantile * total, cumulative, values_sorted[lo:hi]))
        )
    return np.array(out_times), np.array(out_values)


def tail_summary(
    values: np.ndarray, weights: np.ndarray = None
) -> dict:
    """Standard latency summary: p50/p95/p99/p99.9/max (seconds).

    All quantiles share one sort of *values* (the run-level arrays are
    ~10⁴ points; four independent :func:`weighted_quantile` calls would
    sort four times).
    """
    quantiles = np.array([0.50, 0.95, 0.99, 0.999])
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise AnalysisError("tail_summary of empty array")
    if weights is None:
        p50, p95, p99, p999 = (float(q) for q in np.quantile(values, quantiles))
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != values.shape:
            raise AnalysisError("weights shape mismatch")
        order = np.argsort(values)
        sorted_values = values[order]
        sorted_weights = weights[order]
        total = sorted_weights.sum()
        if total <= 0:
            raise AnalysisError("weights sum to zero")
        cumulative = np.cumsum(sorted_weights) - 0.5 * sorted_weights
        p50, p95, p99, p999 = (
            float(q)
            for q in np.interp(quantiles * total, cumulative, sorted_values)
        )
    return {
        "p50": p50,
        "p95": p95,
        "p99": p99,
        "p999": p999,
        "max": float(np.max(values)),
    }
