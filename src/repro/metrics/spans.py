"""Activity spans: the start/end intervals of flush and compaction jobs.

Figure 7 of the paper plots each flush/compaction activity as a line
segment from its start to its end; Figures 6(c)/(d) plot the resulting
*concurrency* (how many activities of a kind are in flight at each
moment).  :class:`SpanLog` records spans and derives both views, plus
the pairwise-overlap measure used by the ShadowSync detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ActivitySpan", "SpanLog"]


@dataclass(frozen=True)
class ActivitySpan:
    """One completed background activity."""

    kind: str  # "flush" | "compaction"
    name: str
    stage: str
    instance: int
    node: str
    start: float
    end: float
    #: Bytes processed (memtable size for flush, input size for compaction).
    input_bytes: int = 0
    submit: Optional[float] = None
    #: Compaction/scheduling policy that produced the job ("" for
    #: flushes and pre-policy traces).
    policy: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: ActivitySpan) -> bool:
        """True when the two spans share any positive-length interval."""
        return self.start < other.end and other.start < self.end

    def overlap_duration(self, other: ActivitySpan) -> float:
        return max(0.0, min(self.end, other.end) - max(self.start, other.start))


class SpanLog:
    """An append-only log of :class:`ActivitySpan` records."""

    def __init__(self) -> None:
        self._spans: List[ActivitySpan] = []

    def add(self, span: ActivitySpan) -> None:
        self._spans.append(span)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self):
        return iter(self._spans)

    def spans(
        self,
        kind: Optional[str] = None,
        stage: Optional[str] = None,
        node: Optional[str] = None,
        window: Optional[Tuple[float, float]] = None,
    ) -> List[ActivitySpan]:
        """Spans filtered by kind / stage / node / time window.

        A *window* ``(t0, t1)`` selects spans intersecting the interval.
        """
        result = self._spans
        if kind is not None:
            result = [s for s in result if s.kind == kind]
        if stage is not None:
            result = [s for s in result if s.stage == stage]
        if node is not None:
            result = [s for s in result if s.node == node]
        if window is not None:
            t0, t1 = window
            result = [s for s in result if s.end > t0 and s.start < t1]
        return list(result)

    def count(self, **filters) -> int:
        return len(self.spans(**filters))

    def total_input_bytes(self, **filters) -> int:
        return sum(s.input_bytes for s in self.spans(**filters))

    def mean_duration(self, **filters) -> float:
        selected = self.spans(**filters)
        if not selected:
            return 0.0
        return sum(s.duration for s in selected) / len(selected)

    # ------------------------------------------------------------------
    # derived timelines
    # ------------------------------------------------------------------

    def concurrency_series(
        self,
        start: float,
        end: float,
        dt: float = 0.05,
        kind: Optional[str] = None,
        stage: Optional[str] = None,
        node: Optional[str] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Number of in-flight activities per *dt* window.

        This regenerates the concurrency plots of Figures 6(c)/(d),
        8(c)/(d), 16(c)–(f) and 18(c)–(f).
        """
        times = np.arange(start, end, dt)
        counts = np.zeros(len(times))
        selected = self.spans(kind=kind, stage=stage, node=node,
                              window=(start, end))
        if selected:
            # Difference-array formulation of the interval stabbing:
            # +1 at each span's first bin, -1 past its last, then a
            # cumulative sum — O(spans + grid) instead of O(spans × grid).
            lo = np.floor(
                (np.array([s.start for s in selected]) - start) / dt
            ).astype(int)
            hi = np.ceil(
                (np.array([s.end for s in selected]) - start) / dt
            ).astype(int)
            lo = np.maximum(lo, 0)
            hi = np.minimum(hi, len(times))
            valid = hi > lo
            delta = np.zeros(len(times) + 1)
            np.add.at(delta, lo[valid], 1.0)
            np.add.at(delta, hi[valid], -1.0)
            counts = np.cumsum(delta[:-1])
        return times, counts

    def peak_concurrency(self, start: float, end: float, **filters) -> int:
        _times, counts = self.concurrency_series(start, end, kind=filters.get("kind"),
                                                 stage=filters.get("stage"),
                                                 node=filters.get("node"))
        return int(counts.max()) if len(counts) else 0

    def overlap_seconds(
        self, kind_a: str, kind_b: str, start: float, end: float, dt: float = 0.01
    ) -> float:
        """Seconds in [start, end) during which at least one activity of
        *kind_a* and one of *kind_b* run simultaneously — the direct
        measure of ShadowSync exposure."""
        _t, count_a = self.concurrency_series(start, end, dt=dt, kind=kind_a)
        _t, count_b = self.concurrency_series(start, end, dt=dt, kind=kind_b)
        return float(np.sum((count_a > 0) & (count_b > 0)) * dt)

    def per_cycle_counts(
        self,
        cycle_starts: Sequence[float],
        kind: str,
        stage: Optional[str] = None,
        by: str = "start",
    ) -> Dict[int, int]:
        """Count spans within each ``[cycle_starts[i], cycle_starts[i+1])``
        interval — Table 1's per-checkpoint rows.

        ``by="start"`` buckets by execution start (what actually ran
        when); ``by="submit"`` buckets by submission time (what the
        *trigger* logic scheduled when — the right view when a small
        pool queues jobs across checkpoint boundaries).
        """
        if by not in ("start", "submit"):
            raise ValueError(f"by must be 'start' or 'submit', got {by!r}")
        edges = list(cycle_starts)
        counts: Dict[int, int] = {i: 0 for i in range(len(edges))}
        spans = self.spans(kind=kind, stage=stage)
        if not spans or not edges:
            return counts
        whens = np.array([
            span.start if by == "start" else (
                span.submit if span.submit is not None else span.start
            )
            for span in spans
        ])
        periods = np.searchsorted(np.asarray(edges), whens, side="right") - 1
        tallies = np.bincount(periods[periods >= 0], minlength=len(edges))
        for i, tally in enumerate(tallies.tolist()):
            counts[i] = tally
        return counts
