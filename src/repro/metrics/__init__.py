"""Measurement: spans, timelines, latency math, run-level collection."""

from .collector import CheckpointStats, MetricsCollector
from .percentiles import (
    compose_latencies,
    latency_from_segments,
    rates_on_grid,
    tail_summary,
    weighted_quantile,
    windowed_quantile,
)
from .spans import ActivitySpan, SpanLog
from .timeline import StepSeries, millibottleneck_windows

__all__ = [
    "CheckpointStats",
    "MetricsCollector",
    "compose_latencies",
    "latency_from_segments",
    "rates_on_grid",
    "tail_summary",
    "weighted_quantile",
    "windowed_quantile",
    "ActivitySpan",
    "SpanLog",
    "StepSeries",
    "millibottleneck_windows",
]
