"""Step-series timelines (CPU utilization, queue length, rates).

Simulation components record piecewise-constant histories as sparse
``(time, value)`` breakpoints.  :class:`StepSeries` turns those into the
uniform 50 ms grids the paper's point-in-time analysis uses (Figure 6),
with helpers for means, maxima and saturation detection.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from ..errors import AnalysisError

__all__ = ["StepSeries", "millibottleneck_windows"]


class StepSeries:
    """A piecewise-constant series defined by ``(time, value)`` points.

    The value at time ``t`` is the value of the latest breakpoint with
    ``time <= t`` (0 before the first breakpoint).
    """

    def __init__(self, points: Iterable[Tuple[float, float]]) -> None:
        pts = sorted(points)
        self._times = np.array([p[0] for p in pts], dtype=float)
        self._values = np.array([p[1] for p in pts], dtype=float)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def breakpoints(self) -> List[Tuple[float, float]]:
        return list(zip(self._times.tolist(), self._values.tolist()))

    @property
    def times(self) -> np.ndarray:
        """Breakpoint times (read-only view)."""
        return self._times

    def value_at(self, time: float) -> float:
        idx = np.searchsorted(self._times, time, side="right") - 1
        if idx < 0:
            return 0.0
        return float(self._values[idx])

    def values_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`value_at` for an array of query times."""
        times = np.asarray(times, dtype=float)
        if len(self._times) == 0:
            return np.zeros(len(times))
        idx = np.searchsorted(self._times, times, side="right") - 1
        return np.where(idx >= 0, self._values[np.clip(idx, 0, None)], 0.0)

    def on_grid(self, start: float, end: float, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """Sample on a uniform grid; returns ``(times, values)``."""
        if end <= start:
            raise AnalysisError(f"empty grid interval [{start}, {end}]")
        times = np.arange(start, end, dt)
        return times, self.values_at(times)

    def _stepwise(self, start: float, end: float) -> Tuple[np.ndarray, np.ndarray]:
        """``(durations, values)`` of the constant pieces covering
        ``[start, end]`` — the common core of the exact integrals."""
        inside = (self._times > start) & (self._times < end)
        edges = np.concatenate(([start], self._times[inside], [end]))
        piece_values = np.concatenate(
            ([self.value_at(start)], self._values[inside])
        )
        return np.diff(edges), piece_values

    def time_average(self, start: float, end: float) -> float:
        """Exact time-weighted mean over ``[start, end]``."""
        if end <= start:
            raise AnalysisError("time_average over empty interval")
        durations, piece_values = self._stepwise(start, end)
        return float(np.dot(durations, piece_values)) / (end - start)

    def maximum(self, start: float, end: float) -> float:
        value = self.value_at(start)
        inside = self._values[(self._times > start) & (self._times < end)]
        if len(inside):
            value = max(value, float(inside.max()))
        return value

    def fraction_above(self, threshold: float, start: float, end: float) -> float:
        """Fraction of ``[start, end]`` spent strictly above *threshold*."""
        if end <= start:
            raise AnalysisError("fraction_above over empty interval")
        durations, piece_values = self._stepwise(start, end)
        return float(durations[piece_values > threshold].sum()) / (end - start)


def millibottleneck_windows(
    series: StepSeries,
    capacity: float,
    start: float,
    end: float,
    dt: float = 0.05,
    saturation: float = 0.95,
    min_duration: float = 0.05,
    max_duration: float = 2.0,
) -> List[Tuple[float, float]]:
    """Find millibottlenecks: short full-saturation intervals.

    Following the millibottleneck theory the paper builds on [38, 50],
    a millibottleneck is a period where a resource is (nearly) 100 %
    utilized for a fraction of a second — long enough to queue work,
    too short to move average utilization.  Returns ``(start, end)``
    windows where utilization ≥ ``saturation × capacity`` for between
    *min_duration* and *max_duration* seconds.
    """
    times, values = series.on_grid(start, end, dt)
    hot = values >= saturation * capacity
    windows: List[Tuple[float, float]] = []
    i = 0
    n = len(hot)
    while i < n:
        if hot[i]:
            j = i
            while j < n and hot[j]:
                j += 1
            duration = (j - i) * dt
            if min_duration <= duration <= max_duration:
                windows.append((float(times[i]), float(times[i] + duration)))
            i = j
        else:
            i += 1
    return windows
