"""The run-level metrics collector.

One :class:`MetricsCollector` is attached to a
:class:`~repro.stream.engine.StreamJob` and aggregates everything the
paper's evaluation needs:

* flush / compaction activity spans (via thread-pool observers),
* per-node CPU utilization step series,
* per-flow queue/rate histories (kept on the flows themselves),
* checkpoint trigger times,
* per-checkpoint statistics (Table 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..serialize import register
from .spans import ActivitySpan, SpanLog
from .timeline import StepSeries

__all__ = ["CheckpointStats", "MetricsCollector"]


@register
class CheckpointStats:
    """Statistics of one checkpoint period, one row-group of Table 1."""

    __slots__ = (
        "index",
        "time",
        "flush_count",
        "flush_ms",
        "compaction_count",
        "compaction_ms",
        "compaction_input_mb",
    )

    def __init__(self, index: int, time: float) -> None:
        self.index = index
        self.time = time
        self.flush_count: Dict[str, int] = {}
        self.flush_ms: Dict[str, float] = {}
        self.compaction_count: Dict[str, int] = {}
        self.compaction_ms: Dict[str, float] = {}
        self.compaction_input_mb: float = 0.0

    def to_dict(self) -> dict:
        return {
            "checkpoint": self.index,
            "time": self.time,
            "flush_count": dict(self.flush_count),
            "avg_flush_ms": dict(self.flush_ms),
            "compaction_count": dict(self.compaction_count),
            "avg_compaction_ms": dict(self.compaction_ms),
            "compaction_input_mb": self.compaction_input_mb,
        }

    #: Deprecated alias of :meth:`to_dict`.
    as_dict = to_dict

    @classmethod
    def from_dict(cls, data: dict) -> CheckpointStats:
        stats = cls(data["checkpoint"], data["time"])
        stats.flush_count = dict(data.get("flush_count", {}))
        stats.flush_ms = dict(data.get("avg_flush_ms", {}))
        stats.compaction_count = dict(data.get("compaction_count", {}))
        stats.compaction_ms = dict(data.get("avg_compaction_ms", {}))
        stats.compaction_input_mb = data.get("compaction_input_mb", 0.0)
        return stats


class MetricsCollector:
    """Aggregates spans, utilization and checkpoint bookkeeping."""

    def __init__(self) -> None:
        self.spans = SpanLog()
        self.checkpoint_times: List[float] = []
        self._resources: List = []

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def watch_pool(self, pool, node: str) -> None:
        """Subscribe to a thread pool's job lifecycle."""

        def observer(job, what: str, node=node) -> None:
            if what != "end":
                return
            meta = job.metadata
            self.spans.add(
                ActivitySpan(
                    kind=job.kind,
                    name=job.name,
                    stage=meta.get("stage", ""),
                    instance=meta.get("instance", -1),
                    node=node,
                    start=job.start_time,
                    end=job.end_time,
                    input_bytes=meta.get("input_bytes", 0),
                    submit=job.submit_time,
                    policy=meta.get("policy", ""),
                )
            )

        pool.observers.append(observer)

    def watch_resource(self, resource) -> None:
        self._resources.append(resource)

    def note_checkpoint(self, time: float) -> None:
        self.checkpoint_times.append(time)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def cpu_series(self, node: Optional[str] = None) -> StepSeries:
        """Utilization (cores in use) of one node, or the mean across
        nodes when *node* is ``None``."""
        resources = [
            r for r in self._resources if node is None or r.name == node
        ]
        if node is not None:
            if not resources:
                raise KeyError(f"no resource named {node!r}")
            return StepSeries(resources[0].util_segments)
        # mean across nodes: merge breakpoints and sample every series
        # at every merged time (vectorized — the per-node histories hold
        # tens of thousands of breakpoints over a 200 s run).
        count = max(len(resources), 1)
        series_list = [StepSeries(r.util_segments) for r in resources]
        nonempty = [s.times for s in series_list if len(s)]
        if not nonempty:
            return StepSeries([])
        all_times = np.unique(np.concatenate(nonempty))
        total = np.zeros(len(all_times))
        for series in series_list:
            total += series.values_at(all_times)
        return StepSeries(zip(all_times.tolist(), (total / count).tolist()))

    def node_names(self) -> List[str]:
        return [r.name for r in self._resources]

    def checkpoint_stats(self, durations: bool = True) -> List[CheckpointStats]:
        """Per-checkpoint flush/compaction statistics (Table 1).

        An activity belongs to the checkpoint period in which it
        *started*.
        """
        edges = list(self.checkpoint_times)
        stats = [CheckpointStats(i + 1, t) for i, t in enumerate(edges)]
        if not stats:
            return []

        # A span belongs to period i when edges[i] <= start < edges[i+1]
        # (last period open-ended); one searchsorted replaces the
        # O(spans × checkpoints) scan.
        spans_list = list(self.spans)
        if not spans_list:
            return stats
        starts = np.array([span.start for span in spans_list])
        periods = np.searchsorted(np.asarray(edges), starts, side="right") - 1

        flush_durations: Dict[Tuple[int, str], List[float]] = {}
        comp_durations: Dict[Tuple[int, str], List[float]] = {}
        for span, period in zip(spans_list, periods):
            if period < 0:
                continue
            row = stats[period]
            stage = span.stage
            if span.kind == "flush":
                row.flush_count[stage] = row.flush_count.get(stage, 0) + 1
                flush_durations.setdefault((period, stage), []).append(span.duration)
            elif span.kind == "compaction":
                row.compaction_count[stage] = row.compaction_count.get(stage, 0) + 1
                comp_durations.setdefault((period, stage), []).append(span.duration)
                row.compaction_input_mb += span.input_bytes / 1e6

        if durations:
            for (period, stage), values in flush_durations.items():
                stats[period].flush_ms[stage] = 1000.0 * float(np.mean(values))
            for (period, stage), values in comp_durations.items():
                stats[period].compaction_ms[stage] = 1000.0 * float(np.mean(values))
        return stats
