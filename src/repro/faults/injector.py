"""The fault injector: schedules a :class:`FaultPlan` onto a built job.

Every fault is two kernel events — a high-priority *begin* at ``at_s``
and a matching *end* ``duration_s`` later — so injection is exactly as
deterministic as the rest of the simulation: the same seed and plan
produce the same event sequence, byte for byte.

Fault semantics
---------------

``worker_crash``
    The node goes down: hosted instances freeze, background pools stop
    starting jobs, queued inputs on the node are dropped, and every
    in-flight checkpoint is aborted (its barrier is lost).  At the end
    of the downtime each store is rewound **in place** to its newest
    completed checkpoint snapshot and the source backlog since that
    snapshot is replayed into the node's stage-0 flow — Flink's
    restart-from-checkpoint in fluid form.
``flush_stall`` / ``compaction_stall``
    The node's background pool stops starting jobs (a hung thread);
    running jobs finish, queued work piles up.
``slow_disk``
    The node's device capacity dips to ``factor`` of its profile
    bandwidth (see :func:`repro.faults.capacity.capacity_dip`).
``checkpoint_timeout``
    The coordinator's checkpoint timeout is set to ``factor`` seconds
    for the window; checkpoints that cannot finish in time abort.
``kafka_backpressure``
    The source rate is multiplied by ``factor`` (a throttled broker).
``node_crash``
    The cluster-layer crash: with a :class:`~repro.cluster.ClusterManager`
    installed, the manager fences the node, the failure detector accrues
    suspicion, and stateful partitions fail over to healthy nodes via
    checkpoint transfer; without one, degrades to ``worker_crash``.
``node_flap``
    ``factor`` down/up cycles packed into the window — the pathological
    membership churn case for the failure detector.
``network_partition``
    The node keeps running but its heartbeats (and any transfers
    touching it) are cut off; a recorded no-op without a cluster layer.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError
from ..sim.events import HIGH_PRIORITY
from ..sim.process import spawn
from .capacity import capacity_dip
from .plan import ALL_NODES, GLOBAL_KINDS, FaultPlan, FaultSpec

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules and executes one :class:`FaultPlan` against one job."""

    def __init__(self, job, plan: FaultPlan) -> None:
        self.job = job
        self.sim = job.sim
        self.plan = plan
        #: One dict per (fault, target-node): kind/node/start/end/....
        self.events: List[dict] = []
        #: ``(label, start, end)`` windows for spike attribution.
        self.windows: List[Tuple[str, float, float]] = []
        self._installed = False
        # stacks for overlapping global faults
        self._backpressure: List[float] = []
        self._base_timeout = job.coordinator.timeout_s
        self._timeouts: List[float] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def install(self) -> FaultInjector:
        if self._installed:
            raise SimulationError("fault injector already installed")
        self._installed = True
        for spec in self.plan.faults:
            for node in self._targets(spec):
                self.sim.schedule(
                    spec.at_s, self._begin, spec, node, priority=HIGH_PRIORITY
                )
        return self

    def _targets(self, spec: FaultSpec) -> list:
        if spec.kind in GLOBAL_KINDS:
            return [None]
        nodes = self.job.nodes
        if spec.node == ALL_NODES:
            return list(nodes)
        return [nodes[spec.node % len(nodes)]]

    def _begin(self, spec: FaultSpec, node) -> None:
        label = node.name if node is not None else "cluster"
        event = {
            "kind": spec.kind,
            "node": label,
            "at_s": spec.at_s,
            "duration_s": spec.duration_s,
            "factor": spec.factor,
            "start": self.sim.now,
            "end": None,
        }
        self.events.append(event)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "fault-inject", "fault", self.sim.now, tid=label,
                kind=spec.kind, duration_s=spec.duration_s, factor=spec.factor,
            )
        cleanup = getattr(self, "_begin_" + spec.kind)(spec, node, event)
        self.sim.schedule(
            self.sim.now + spec.duration_s,
            self._end, spec, node, event, cleanup,
            priority=HIGH_PRIORITY,
        )

    def _end(self, spec: FaultSpec, node, event: dict,
             cleanup: Optional[Callable[[], None]]) -> None:
        if cleanup is not None:
            cleanup()
        event["end"] = self.sim.now
        self.windows.append(
            (f"{spec.kind}@{event['node']}", event["start"], self.sim.now)
        )
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "fault-clear", "fault", self.sim.now,
                tid=event["node"], kind=spec.kind,
            )

    # ------------------------------------------------------------------
    # per-kind begin handlers; each returns the cleanup for _end
    # ------------------------------------------------------------------

    def _begin_flush_stall(self, spec: FaultSpec, node, event: dict):
        node.flush_pool.pause()
        return node.flush_pool.resume

    def _begin_compaction_stall(self, spec: FaultSpec, node, event: dict):
        node.compaction_pool.pause()
        return node.compaction_pool.resume

    def _begin_slow_disk(self, spec: FaultSpec, node, event: dict):
        degraded = node.storage.degraded(spec.factor)
        scale = degraded.device_capacity / node.storage.device_capacity
        spawn(
            self.sim,
            capacity_dip(self.sim, node.device, scale, spec.duration_s),
            name=f"slow-disk-{node.name}",
        )
        return None  # the dip restores itself

    def _begin_kafka_backpressure(self, spec: FaultSpec, node, event: dict):
        self._backpressure.append(spec.factor)
        self._apply_backpressure()

        def clear() -> None:
            self._backpressure.remove(spec.factor)
            self._apply_backpressure()

        return clear

    def _apply_backpressure(self) -> None:
        rate = self.job.source.steady_rate()
        for factor in self._backpressure:
            rate *= factor
        self.job.set_source_rate(rate)

    def _begin_checkpoint_timeout(self, spec: FaultSpec, node, event: dict):
        self._timeouts.append(spec.factor)
        self.job.coordinator.timeout_s = spec.factor

        def clear() -> None:
            self._timeouts.remove(spec.factor)
            self.job.coordinator.timeout_s = (
                self._timeouts[-1] if self._timeouts else self._base_timeout
            )

        return clear

    def _begin_worker_crash(self, spec: FaultSpec, node, event: dict):
        coordinator = self.job.coordinator
        # the crash tears down this node's barrier participants, so any
        # checkpoint still collecting acks can never complete
        aborted = coordinator.abort_in_flight(reason=f"crash:{node.name}")
        event["aborted_checkpoints"] = [r.checkpoint_id for r in aborted]
        node.begin_crash()
        dropped = 0.0
        for stage in self.job.stages:
            flow = stage.flows.get(node.name)
            if flow is not None:
                dropped += flow.drop_backlog()
            stage.update_blocked(node.name)
        event["dropped_messages"] = dropped

        def recover() -> None:
            self._recover(node, event)

        return recover

    # ------------------------------------------------------------------
    # cluster-layer faults (repro.cluster)
    # ------------------------------------------------------------------

    def _begin_node_crash(self, spec: FaultSpec, node, event: dict):
        manager = getattr(self.job, "cluster_manager", None)
        if manager is None:
            # no cluster layer: classic crash-and-restore semantics
            return self._begin_worker_crash(spec, node, event)
        manager.begin_node_crash(node, event)

        def recover() -> None:
            manager.end_node_crash(node, event)

        return recover

    def _begin_node_flap(self, spec: FaultSpec, node, event: dict):
        manager = getattr(self.job, "cluster_manager", None)
        cycles = max(1, int(round(spec.factor)))
        event["cycles"] = cycles
        event["flaps"] = []
        spawn(
            self.sim,
            self._flap_loop(spec, node, event, manager, cycles),
            name=f"flap-{node.name}",
        )
        return None  # each cycle restores itself inside the window

    def _flap_loop(self, spec: FaultSpec, node, event: dict,
                   manager, cycles: int):
        phase = spec.duration_s / (2 * cycles)
        for cycle in range(cycles):
            sub = {
                "kind": "node_crash", "node": node.name, "cycle": cycle,
                "start": self.sim.now, "end": None,
            }
            event["flaps"].append(sub)
            if manager is not None:
                manager.begin_node_crash(node, sub)
                yield phase
                manager.end_node_crash(node, sub)
            else:
                recover = self._begin_worker_crash(spec, node, sub)
                yield phase
                recover()
            sub["end"] = self.sim.now
            yield phase

    def _begin_network_partition(self, spec: FaultSpec, node, event: dict):
        manager = getattr(self.job, "cluster_manager", None)
        if manager is None:
            # heartbeats only exist in the cluster layer; nothing to cut
            event["ignored"] = "no cluster layer installed"
            return None
        manager.begin_partition(node, event)

        def heal() -> None:
            manager.end_partition(node, event)

        return heal

    def _recover(self, node, event: dict) -> None:
        coordinator = self.job.coordinator
        restores = []
        snapshot_times = []
        for instance in node.instances:
            if instance.store is None:
                continue
            info = coordinator.restore_instance(instance)
            restores.append(info)
            snapshot_times.append(info["snapshot_time"])
            # the restore rewrote the level structure; recompute the
            # L0-driven stall level the same way the state backend does
            options = instance.store.options
            l0 = instance.store.l0_file_count
            if l0 >= options.l0_stop_trigger:
                instance.stall_level = 1.0
            elif l0 >= options.l0_slowdown_trigger:
                instance.stall_level = 0.5
            else:
                instance.stall_level = 0.0
        event["restores"] = restores
        node.end_crash()
        # replay: everything the source delivered to this node between the
        # restored snapshot and the crash must be processed again (stage 0
        # re-reads it from the durable source).  Deliveries *during* the
        # downtime already sit in the flow's queue — Kafka kept them — so
        # the replay window ends at the crash, not at recovery.
        rewind_to = min(snapshot_times) if snapshot_times else event["start"]
        stage0 = self.job.stages[0]
        flow = stage0.flows.get(node.name)
        replayed = 0.0
        if flow is not None:
            replayed = flow.arrival_rate * max(0.0, event["start"] - rewind_to)
            flow.add_backlog(replayed)
        event["replayed_messages"] = replayed
        event["rewound_to_s"] = rewind_to
        for stage in self.job.stages:
            stage.update_blocked(node.name)
