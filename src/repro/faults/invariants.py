"""Runtime invariant checking under fault injection.

A registry of named invariant functions is sampled on a fixed cadence
while the job runs (plus once at the end).  Each invariant inspects the
live job and yields ``(message, details)`` for every violation it finds;
violations are recorded, emitted as ``invariant-violation`` trace
instants (category ``"invariant"``) so Perfetto and the millibottleneck
detector can line them up with latency spikes, and — in
``halt_on_violation`` mode — abort the simulation.

Registered invariants:

``record-accounting``
    Exactly-once conservation per flow: arrived + replayed records equal
    served + dropped + queued, up to float rounding.
``watermark-monotonic``
    Each flow's cumulative served count (its processing watermark) never
    moves backwards between samples.
``checkpoint-barriers``
    No lost barriers: checkpoint ids strictly increase, every record is
    in a legal state with consistent timestamps, and the coordinator's
    in-flight counter matches the records.
``lsm-consistency``
    Every store's level structure is valid (level claims, L1+
    non-overlap) and no deep level has run away past 50× its size
    target.  Deliberately *structural* only: L0 counts are allowed to
    pile up under a compaction stall — that is the scenario under test,
    not a bug.
``single-owner-per-partition``
    Every stage instance is hosted on exactly one node at every sample
    time, its node pointer agrees with the host maps, and — when the
    elastic cluster layer is installed — the coordinator's ownership
    map matches reality and its ownership log is contiguous (each
    flip's ``from`` is the previous flip's ``to``).
``migration-no-lost-state``
    Every completed state migration restored exactly the level
    structure it shipped (shape digests match), and no transfer is
    stuck past its deadline.  A no-op without the cluster layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import LSMError, SimulationError
from ..serialize import register
from ..sim.process import spawn

__all__ = [
    "INVARIANTS",
    "InvariantChecker",
    "InvariantViolation",
    "invariant",
]


@register
@dataclass
class InvariantViolation:
    """One recorded invariant violation."""

    invariant: str
    time: float
    message: str
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "time": self.time,
            "message": self.message,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: dict) -> InvariantViolation:
        return cls(
            invariant=data["invariant"],
            time=data["time"],
            message=data["message"],
            details=dict(data.get("details") or {}),
        )


#: name -> function(checker, job) yielding (message, details) pairs.
INVARIANTS: Dict[str, Callable] = {}


def invariant(name: str):
    """Register an invariant function under *name*."""

    def decorate(fn):
        INVARIANTS[name] = fn
        return fn

    return decorate


class InvariantChecker:
    """Samples the registered invariants over a running job."""

    def __init__(
        self,
        sample_interval_s: float = 1.0,
        names: Optional[Iterable[str]] = None,
        halt_on_violation: bool = False,
    ) -> None:
        if sample_interval_s <= 0:
            raise SimulationError("sample interval must be positive")
        self.sample_interval_s = sample_interval_s
        self.names: Optional[Tuple[str, ...]] = None
        if names is not None:
            selected = tuple(names)
            for name in selected:
                if name not in INVARIANTS:
                    raise SimulationError(
                        f"unknown invariant {name!r}; registered: "
                        f"{sorted(INVARIANTS)}"
                    )
            self.names = selected
        self.halt_on_violation = halt_on_violation
        self.violations: List[InvariantViolation] = []
        self.samples = 0
        self.job = None
        #: flow name -> last observed cumulative served count.
        self._watermarks: Dict[str, float] = {}

    def install(self, job) -> InvariantChecker:
        if self.job is not None:
            raise SimulationError("invariant checker is already installed")
        self.job = job
        spawn(job.sim, self._loop(), name="invariant-checker")
        return self

    def _loop(self):
        while True:
            yield self.sample_interval_s
            self.check_now()

    def _selected(self):
        if self.names is None:
            return list(INVARIANTS.items())
        return [(name, INVARIANTS[name]) for name in self.names]

    def check_now(self) -> List[InvariantViolation]:
        """Run every selected invariant once; returns new violations."""
        if self.job is None:
            raise SimulationError("invariant checker is not installed")
        self.samples += 1
        found = []
        for name, fn in self._selected():
            for message, details in fn(self, self.job):
                found.append(self._record(name, message, details))
        return found

    def _record(self, name: str, message: str, details: dict) -> InvariantViolation:
        violation = InvariantViolation(
            invariant=name, time=self.job.sim.now, message=message, details=details
        )
        self.violations.append(violation)
        tracer = self.job.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "invariant-violation", "invariant", self.job.sim.now,
                tid="invariants", invariant=name, message=message,
            )
        if self.halt_on_violation:
            self.job.sim.abort(f"invariant {name}: {message}")
        return violation

    def finalize(self) -> List[InvariantViolation]:
        """One last full check at end of run (called by the engine)."""
        return self.check_now()

    def to_dicts(self) -> List[dict]:
        return [violation.to_dict() for violation in self.violations]


# ----------------------------------------------------------------------
# registered invariants
# ----------------------------------------------------------------------


@invariant("record-accounting")
def _record_accounting(checker: InvariantChecker, job):
    for stage in job.stages:
        for flow in stage.flows.values():
            balance = flow.accounting_balance()
            volume = flow.total_arrived + flow.replayed_messages
            tolerance = max(1e-3, 1e-7 * volume)
            if abs(balance) > tolerance:
                yield (
                    f"flow {flow.name} leaks records: balance "
                    f"{balance:.6f} of {volume:.1f} arrived",
                    {"flow": flow.name, "balance": balance,
                     "arrived": flow.total_arrived,
                     "served": flow.total_served,
                     "dropped": flow.dropped_messages,
                     "replayed": flow.replayed_messages},
                )


@invariant("watermark-monotonic")
def _watermark_monotonic(checker: InvariantChecker, job):
    now = job.sim.now
    for stage in job.stages:
        for flow in stage.flows.values():
            flow.sync(now)
            last = checker._watermarks.get(flow.name)
            if last is not None and flow.total_served < last - 1e-6:
                yield (
                    f"flow {flow.name} watermark went backwards: "
                    f"{flow.total_served:.3f} < {last:.3f}",
                    {"flow": flow.name, "watermark": flow.total_served,
                     "previous": last},
                )
            checker._watermarks[flow.name] = flow.total_served


@invariant("checkpoint-barriers")
def _checkpoint_barriers(checker: InvariantChecker, job):
    coordinator = job.coordinator
    records = coordinator.records
    ids = [record.checkpoint_id for record in records]
    if ids != sorted(ids) or len(set(ids)) != len(ids):
        yield ("checkpoint ids are not strictly increasing", {"ids": ids})
    in_flight = 0
    for record in records:
        if record.state == "in-flight":
            in_flight += 1
        elif record.state == "completed":
            if record.completed_at is None or record.completed_at < record.triggered_at:
                yield (
                    f"checkpoint #{record.checkpoint_id} completed before "
                    "its trigger",
                    {"checkpoint_id": record.checkpoint_id,
                     "triggered_at": record.triggered_at,
                     "completed_at": record.completed_at},
                )
        elif record.state == "aborted":
            if record.aborted_at is None:
                yield (
                    f"checkpoint #{record.checkpoint_id} aborted without "
                    "a timestamp",
                    {"checkpoint_id": record.checkpoint_id},
                )
        else:
            yield (
                f"checkpoint #{record.checkpoint_id} in unknown state "
                f"{record.state!r}",
                {"checkpoint_id": record.checkpoint_id,
                 "state": record.state},
            )
    if in_flight != coordinator.in_flight:
        yield (
            f"lost checkpoint barrier: {in_flight} records in flight but "
            f"the coordinator tracks {coordinator.in_flight}",
            {"records_in_flight": in_flight,
             "coordinator_in_flight": coordinator.in_flight},
        )


@invariant("lsm-consistency")
def _lsm_consistency(checker: InvariantChecker, job):
    for stage in job.stages:
        for instance in stage.instances:
            store = instance.store
            if store is None:
                continue
            try:
                store.check_invariants()
            except LSMError as exc:
                yield (f"store {store.name}: {exc}", {"store": store.name})
            if store.memtable_bytes < 0:
                yield (
                    f"store {store.name}: negative memtable size "
                    f"{store.memtable_bytes}",
                    {"store": store.name, "bytes": store.memtable_bytes},
                )
            options = store.options
            for index in range(2, store.levels.num_levels):
                limit = options.max_bytes_for_level(index)
                size = store.levels.level_bytes(index)
                if limit and size > 50 * limit:
                    yield (
                        f"store {store.name}: L{index} holds {size} bytes, "
                        f"over 50x its {limit:.0f}-byte target",
                        {"store": store.name, "level": index,
                         "bytes": size, "limit": limit},
                    )


@invariant("single-owner-per-partition")
def _single_owner_per_partition(checker: InvariantChecker, job):
    hosts: Dict[str, str] = {}
    for stage in job.stages:
        for node_name in sorted(stage.instances_by_node):
            for instance in stage.instances_by_node[node_name]:
                previous = hosts.get(instance.name)
                if previous is not None:
                    yield (
                        f"partition {instance.name} hosted on both "
                        f"{previous} and {node_name}",
                        {"partition": instance.name,
                         "hosts": [previous, node_name]},
                    )
                hosts[instance.name] = node_name
                if instance.node.name != node_name:
                    yield (
                        f"partition {instance.name} host map says "
                        f"{node_name} but the instance points at "
                        f"{instance.node.name}",
                        {"partition": instance.name, "host_map": node_name,
                         "instance_node": instance.node.name},
                    )
        for instance in stage.instances:
            if instance.name not in hosts:
                yield (
                    f"partition {instance.name} is hosted nowhere",
                    {"partition": instance.name},
                )
    manager = getattr(job, "cluster_manager", None)
    if manager is None:
        return
    for name in sorted(manager.owner):
        host = hosts.get(name)
        if host is not None and manager.owner[name] != host:
            yield (
                f"ownership map says {manager.owner[name]} owns {name} "
                f"but it is hosted on {host}",
                {"partition": name, "owner": manager.owner[name],
                 "host": host},
            )
    last_to: Dict[str, str] = {}
    for entry in manager.ownership_log:
        partition = entry["partition"]
        previous = last_to.get(partition)
        if previous is not None and entry["from"] != previous:
            yield (
                f"ownership log for {partition} is discontiguous: flip "
                f"from {entry['from']} but the previous owner was "
                f"{previous}",
                {"partition": partition, "from": entry["from"],
                 "previous": previous, "time": entry["time"]},
            )
        last_to[partition] = entry["to"]


@invariant("migration-no-lost-state")
def _migration_no_lost_state(checker: InvariantChecker, job):
    manager = getattr(job, "cluster_manager", None)
    if manager is None:
        return
    now = job.sim.now
    for record in manager.migrations:
        shipped = record.get("digest_source")
        restored = record.get("digest_restored")
        intact = shipped == restored
        if shipped == "cold":
            # failover before the first checkpoint completed: nothing
            # durable existed, so restoring an empty store IS lossless
            intact = restored is None or restored == "empty" or (
                set(restored.split("|")) <= {"0/0"}
            )
        if (record["status"] == "completed" and shipped is not None
                and not intact):
            yield (
                f"migration #{record['id']} of {record['partition']} lost "
                f"state: shipped {record['digest_source']} but restored "
                f"{record.get('digest_restored')}",
                {"migration": record["id"],
                 "partition": record["partition"],
                 "shipped": record["digest_source"],
                 "restored": record.get("digest_restored")},
            )
        deadline = record.get("deadline")
        if (record["status"] == "transferring" and deadline is not None
                and now > deadline + 10.0):
            yield (
                f"migration #{record['id']} of {record['partition']} stuck "
                f"in transfer {now - deadline:.1f}s past its deadline",
                {"migration": record["id"],
                 "partition": record["partition"], "deadline": deadline},
            )
