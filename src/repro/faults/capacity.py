"""Capacity dips: the shared mechanism behind slow-disk faults and the
§6 capacity disturbances (GC pauses, DVFS throttling, co-location
interference — describe them as :class:`repro.faults.FaultPlan`
scenarios, or spawn a dip directly for one-off experiments).

A dip scales a processor-sharing resource's capacity by a factor for a
fixed window, then restores it.  Overlapping dips on the same resource
do **not** compound: the first dip to arrive records the undisturbed
capacity, nested dips each apply their factor to that original value,
and the capacity is restored only when the last dip ends.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

__all__ = ["capacity_dip"]

#: Capacity floor during a full stop — PS resources reject zero capacity.
_STOPPED_CAPACITY = 1e-3


def capacity_dip(
    sim,
    resource,
    factor: float,
    duration: float,
    windows: Optional[List[Tuple[str, float, float]]] = None,
) -> Generator[float, None, None]:
    """Process generator: scale *resource* to ``original * factor`` for
    *duration* simulated seconds.  Appends ``(name, start, end)`` to
    *windows* when the dip ends, if a list is given."""
    name = resource.name
    start = sim.now
    depth = getattr(resource, "_disturbance_depth", 0)
    if depth == 0:
        resource._undisturbed_capacity = resource.capacity
    resource._disturbance_depth = depth + 1
    original = resource._undisturbed_capacity
    resource.set_capacity(max(original * factor, _STOPPED_CAPACITY))
    yield duration
    resource._disturbance_depth -= 1
    if resource._disturbance_depth == 0:
        resource.set_capacity(resource._undisturbed_capacity)
    if windows is not None:
        windows.append((name, start, sim.now))
