"""Deterministic fault injection with checkpoint recovery.

The subsystem has four parts:

* :mod:`repro.faults.plan` — declarative, serializable
  :class:`FaultPlan`/:class:`FaultSpec` descriptions (plus seeded random
  plans and shrinking for property tests);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which schedules
  a plan onto a built job as ordinary kernel events;
* :mod:`repro.faults.invariants` — :class:`InvariantChecker`, sampling
  exactly-once accounting, watermark monotonicity, checkpoint-barrier
  and LSM-structure invariants while faults fire;
* :mod:`repro.faults.pipeline` — :class:`CheckpointedWordCount`, the
  record-level data plane used by the recovery-equivalence tests.

Most callers only need :func:`inject_faults`::

    job = build_traffic_job(seed=7)
    inject_faults(job, "crash")          # preset name, dict, file, ...
    result = job.run(120.0)
    result.fault_events, result.invariant_violations
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import SimulationError
from .capacity import capacity_dip
from .injector import FaultInjector
from .invariants import INVARIANTS, InvariantChecker, InvariantViolation, invariant
from .pipeline import CheckpointedWordCount
from .plan import (
    ALL_FAULT_KINDS,
    ALL_NODES,
    CLUSTER_FAULT_KINDS,
    FAULT_KINDS,
    GLOBAL_KINDS,
    PRESET_PLANS,
    FaultPlan,
    FaultSpec,
    load_fault_plan,
    preset_plan,
    shrink_failing,
)

__all__ = [
    "ALL_FAULT_KINDS",
    "ALL_NODES",
    "CLUSTER_FAULT_KINDS",
    "FAULT_KINDS",
    "GLOBAL_KINDS",
    "INVARIANTS",
    "PRESET_PLANS",
    "CheckpointedWordCount",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InvariantChecker",
    "InvariantViolation",
    "capacity_dip",
    "inject_faults",
    "invariant",
    "load_fault_plan",
    "preset_plan",
    "shrink_failing",
]


def inject_faults(
    job,
    plan: Union[FaultPlan, dict, str],
    invariants: bool = True,
    sample_interval_s: float = 1.0,
    halt_on_violation: bool = False,
) -> FaultInjector:
    """Install *plan* (a :class:`FaultPlan`, dict, preset name, JSON
    string, or JSON file path) on a built-but-not-yet-run job, plus an
    :class:`InvariantChecker` unless ``invariants=False``.

    Returns the installed :class:`FaultInjector`; the job gains
    ``fault_plan`` / ``fault_injector`` / ``invariant_checker``
    attributes that the result and summary layers read.
    """
    resolved = load_fault_plan(plan)
    if getattr(job, "fault_injector", None) is not None:
        raise SimulationError("job already has a fault injector installed")
    injector = FaultInjector(job, resolved).install()
    job.fault_plan = resolved
    job.fault_injector = injector
    if invariants:
        checker = InvariantChecker(
            sample_interval_s=sample_interval_s,
            halt_on_violation=halt_on_violation,
        )
        checker.install(job)
        job.invariant_checker = checker
    return injector
