"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is the unit of fault injection: a named, frozen,
serializable list of :class:`FaultSpec` entries, each saying *what*
breaks (``kind``), *where* (``node``), *when* (``at_s``), for *how long*
(``duration_s``) and *how hard* (``factor``).  Plans are plain data —
they contain no simulator references — so they round-trip through
:mod:`repro.serialize`, participate in the experiment cache key, and can
be generated from a seed (:meth:`FaultPlan.random`) for property-based
testing.  :meth:`FaultPlan.shrink` yields strictly-simpler candidate
plans so a failing random plan can be minimised before it is reported.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Sequence, Tuple

from ..compat import keyword_only
from ..errors import ConfigurationError
from ..serialize import register

__all__ = [
    "ALL_FAULT_KINDS",
    "ALL_NODES",
    "CLUSTER_FAULT_KINDS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "PRESET_PLANS",
    "load_fault_plan",
    "preset_plan",
    "shrink_failing",
]

#: The classic single-job fault kinds.  Kept stable on purpose: random
#: plans draw from this tuple by default, so existing seeds keep
#: producing byte-identical plans.
FAULT_KINDS = (
    "worker_crash",
    "flush_stall",
    "compaction_stall",
    "slow_disk",
    "checkpoint_timeout",
    "kafka_backpressure",
)

#: Fault kinds targeting the elastic cluster layer (repro.cluster).
#: Without an installed ClusterManager, ``node_crash``/``node_flap``
#: degrade to classic worker-crash semantics and
#: ``network_partition`` is a recorded no-op.
CLUSTER_FAULT_KINDS = (
    "node_crash",
    "node_flap",
    "network_partition",
)

#: Every fault kind the injector knows how to begin and end.
ALL_FAULT_KINDS = FAULT_KINDS + CLUSTER_FAULT_KINDS

#: Sentinel ``node`` value: the fault hits every node in the cluster.
ALL_NODES = -1

#: Fault kinds that act on the whole job rather than a single node.
GLOBAL_KINDS = ("checkpoint_timeout", "kafka_backpressure")


@register
@keyword_only
@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: kind, target, window, and intensity."""

    kind: str = "worker_crash"
    #: Simulated time the fault begins.
    at_s: float = 10.0
    #: How long the fault lasts (crash downtime, stall length, ...).
    duration_s: float = 2.0
    #: Target node index, taken modulo the cluster size so random plans
    #: stay valid on any cluster; :data:`ALL_NODES` hits every node.
    #: Ignored by the global kinds (:data:`GLOBAL_KINDS`).
    node: int = 0
    #: Kind-specific intensity: bandwidth fraction for ``slow_disk``,
    #: source-rate multiplier for ``kafka_backpressure``, the timeout in
    #: seconds for ``checkpoint_timeout``, the down/up cycle count for
    #: ``node_flap``; unused by the other kinds.
    factor: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(ALL_FAULT_KINDS)}"
            )
        if self.at_s < 0:
            raise ConfigurationError(f"fault at_s must be >= 0, got {self.at_s}")
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"fault duration_s must be > 0, got {self.duration_s}"
            )
        if self.factor <= 0:
            raise ConfigurationError(f"fault factor must be > 0, got {self.factor}")
        if self.kind == "slow_disk" and self.factor > 1.0:
            raise ConfigurationError(
                "slow_disk factor is a remaining-bandwidth fraction in (0, 1], "
                f"got {self.factor}"
            )

    @property
    def end_s(self) -> float:
        return self.at_s + self.duration_s


@register
@keyword_only
@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered collection of faults to inject into one run."""

    name: str = "plan"
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        coerced = tuple(
            fault if isinstance(fault, FaultSpec) else FaultSpec(**dict(fault))
            for fault in self.faults
        )
        object.__setattr__(self, "faults", coerced)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "faults": [dataclasses.asdict(fault) for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> FaultPlan:
        return cls(name=data.get("name", "plan"),
                   faults=tuple(data.get("faults") or ()))

    @classmethod
    def random(
        cls,
        seed: int,
        duration_s: float = 40.0,
        max_faults: int = 3,
        nodes: int = 2,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> FaultPlan:
        """A seed-deterministic plan sized to a *duration_s*-second run.

        Faults start early enough (``at_s <= 0.6 * duration_s``) and end
        quickly enough that the run always has room to drain, so the
        property harness can require finite latency for *any* seed.
        """
        rng = random.Random(seed)
        count = rng.randint(1, max(1, max_faults))
        faults = []
        for _ in range(count):
            kind = rng.choice(list(kinds))
            at_s = round(rng.uniform(2.0, max(duration_s * 0.6, 3.0)), 3)
            duration = round(
                rng.uniform(0.25, min(5.0, max(duration_s * 0.15, 0.5))), 3
            )
            node = ALL_NODES if rng.random() < 0.2 else rng.randrange(max(nodes, 1))
            if kind == "checkpoint_timeout":
                factor = round(rng.uniform(0.3, 2.0), 3)
            elif kind == "kafka_backpressure":
                factor = round(rng.uniform(0.1, 1.5), 3)
            elif kind == "node_flap":
                factor = float(rng.randint(1, 3))
            else:
                factor = round(rng.uniform(0.1, 0.9), 3)
            faults.append(FaultSpec(kind=kind, at_s=at_s, duration_s=duration,
                                    node=node, factor=factor))
        faults.sort(key=lambda fault: (fault.at_s, fault.kind, fault.node))
        return cls(name=f"random-{seed}", faults=tuple(faults))

    def shrink(self) -> Iterator[FaultPlan]:
        """Strictly-simpler candidates: drop one fault, then halve one
        fault's duration.  Used to minimise a violating random plan."""
        if len(self.faults) > 1:
            for index in range(len(self.faults)):
                rest = self.faults[:index] + self.faults[index + 1:]
                yield replace(self, name=f"{self.name}-shrunk", faults=rest)
        for index, fault in enumerate(self.faults):
            if fault.duration_s > 0.5:
                halved = replace(fault, duration_s=round(fault.duration_s / 2, 6))
                yield replace(
                    self,
                    name=f"{self.name}-shrunk",
                    faults=self.faults[:index] + (halved,) + self.faults[index + 1:],
                )


def shrink_failing(
    plan: FaultPlan,
    still_fails: Callable[[FaultPlan], bool],
    max_rounds: int = 40,
) -> FaultPlan:
    """Greedy minimisation: keep taking the first shrink candidate that
    still fails *still_fails* until none does (or *max_rounds* runs out).
    Returns the smallest failing plan found, for the failure report."""
    current = plan
    for _ in range(max_rounds):
        for candidate in current.shrink():
            if still_fails(candidate):
                current = candidate
                break
        else:
            return current
    return current


#: Ready-made plans accepted by ``repro run --faults <name>``.
PRESET_PLANS = (
    "crash",
    "flush-stall",
    "compaction-stall",
    "slow-disk",
    "checkpoint-timeout",
    "backpressure",
    "chaos",
    "combined",
    "node-crash",
    "node-flap",
    "net-partition",
)


def preset_plan(name: str, at_s: float = 30.0, duration_s: float = 2.0,
                node: int = 0) -> FaultPlan:
    """Build one of the :data:`PRESET_PLANS` by name."""
    if name == "crash":
        faults: Tuple[FaultSpec, ...] = (
            FaultSpec(kind="worker_crash", at_s=at_s, duration_s=duration_s,
                      node=node),
        )
    elif name == "flush-stall":
        faults = (FaultSpec(kind="flush_stall", at_s=at_s,
                            duration_s=max(duration_s, 4.0), node=ALL_NODES),)
    elif name == "compaction-stall":
        faults = (FaultSpec(kind="compaction_stall", at_s=at_s,
                            duration_s=max(duration_s, 8.0), node=ALL_NODES),)
    elif name == "slow-disk":
        faults = (FaultSpec(kind="slow_disk", at_s=at_s,
                            duration_s=max(duration_s, 3.0), node=node,
                            factor=0.25),)
    elif name == "checkpoint-timeout":
        faults = (FaultSpec(kind="checkpoint_timeout", at_s=at_s,
                            duration_s=max(duration_s, 20.0), factor=0.5),)
    elif name == "backpressure":
        faults = (FaultSpec(kind="kafka_backpressure", at_s=at_s,
                            duration_s=max(duration_s, 4.0), factor=0.4),)
    elif name == "chaos":
        faults = (
            FaultSpec(kind="worker_crash", at_s=at_s, duration_s=duration_s,
                      node=node),
            FaultSpec(kind="slow_disk", at_s=at_s + 10.0, duration_s=3.0,
                      node=ALL_NODES, factor=0.3),
            FaultSpec(kind="flush_stall", at_s=at_s + 20.0, duration_s=2.0,
                      node=ALL_NODES),
            FaultSpec(kind="kafka_backpressure", at_s=at_s + 28.0,
                      duration_s=4.0, factor=0.5),
        )
    elif name == "node-crash":
        faults = (FaultSpec(kind="node_crash", at_s=at_s,
                            duration_s=max(duration_s, 3.0), node=node),)
    elif name == "node-flap":
        faults = (FaultSpec(kind="node_flap", at_s=at_s,
                            duration_s=max(duration_s, 6.0), node=node,
                            factor=3.0),)
    elif name == "net-partition":
        faults = (FaultSpec(kind="network_partition", at_s=at_s,
                            duration_s=max(duration_s, 4.0), node=node),)
    elif name == "combined":
        # sequential windows with recovery gaps between them — the soak
        # harness asserts the tail returns to baseline inside each gap
        faults = (
            FaultSpec(kind="flush_stall", at_s=at_s,
                      duration_s=max(duration_s, 4.0), node=ALL_NODES),
            FaultSpec(kind="slow_disk", at_s=at_s + 20.0, duration_s=4.0,
                      node=ALL_NODES, factor=0.3),
            FaultSpec(kind="checkpoint_timeout", at_s=at_s + 40.0,
                      duration_s=8.0, factor=0.5),
            FaultSpec(kind="worker_crash", at_s=at_s + 60.0,
                      duration_s=2.0, node=node),
        )
    else:
        raise ConfigurationError(
            f"unknown preset fault plan {name!r}; expected one of "
            f"{', '.join(PRESET_PLANS)}"
        )
    return FaultPlan(name=name, faults=faults)


def load_fault_plan(value) -> FaultPlan:
    """Resolve *value* into a :class:`FaultPlan`.

    Accepts an existing plan, a ``to_dict`` mapping, a preset name from
    :data:`PRESET_PLANS`, inline JSON, or a path to a JSON file.
    """
    if isinstance(value, FaultPlan):
        return value
    if isinstance(value, dict):
        return FaultPlan.from_dict(value)
    text = str(value)
    if text in PRESET_PLANS:
        return preset_plan(text)
    if text.lstrip().startswith("{"):
        return FaultPlan.from_dict(json.loads(text))
    if os.path.exists(text):
        with open(text, encoding="utf-8") as handle:
            return FaultPlan.from_dict(json.load(handle))
    raise ConfigurationError(
        f"unknown fault plan {text!r}: expected a preset "
        f"({', '.join(PRESET_PLANS)}), inline JSON, or a JSON file path"
    )
