"""A checkpointed WordCount data plane for recovery-equivalence tests.

:class:`CheckpointedWordCount` runs the §5.2 WordCount pipeline —
Kafka topic → per-partition LSM word counters — with coordinated
checkpoints (flush + state snapshot + offset commit, all atomic) and a
crash model that exercises the real recovery path:
:meth:`LSMStore.restore_from_checkpoint` plus
:meth:`KafkaBroker.restore_offsets`.

The equivalence property the test harness checks: for any crash
schedule, the final word counts equal the fault-free reference
reduction.  Without a WAL that holds because recovery rewinds *both*
state and offsets to the same checkpoint and replays; with a WAL it
holds because the log replays the puts the memtable lost.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import SimulationError
from ..lsm.options import LSMOptions
from ..lsm.store import LSMStore
from ..stream.kafka import KafkaBroker
from ..stream.messages import Record

__all__ = ["CheckpointedWordCount"]


class CheckpointedWordCount:
    """WordCount with coordinated checkpoints and crash recovery."""

    def __init__(
        self,
        partitions: int = 2,
        wal_enabled: bool = False,
        write_buffer_kib: int = 32,
        topic: str = "lines",
        group: str = "wordcount",
        committer=None,
        compaction_policy: str = "reference",
    ) -> None:
        if partitions < 1:
            raise SimulationError("need at least one partition")
        self.partitions = partitions
        self.wal_enabled = wal_enabled
        self.group = group
        self.broker = KafkaBroker()
        self.topic = self.broker.create_topic(topic, partitions=partitions)
        #: Offset commits go through this callable.  *committer* is a
        #: factory receiving the broker's raw commit and returning the
        #: wrapper to use — e.g.
        #: ``lambda c: ResilientKafkaCommitter(c, config.retry_policy())``
        #: to get retries and circuit breaking on the commit path.
        self.committer = None
        self._commit = self.broker.commit
        if committer is not None:
            wrapped = committer(self.broker.commit)
            self.committer = wrapped
            self._commit = getattr(wrapped, "commit", wrapped)
        self.stores: List[LSMStore] = [
            LSMStore(
                LSMOptions(
                    wal_enabled=wal_enabled,
                    write_buffer_size=write_buffer_kib * 1024,
                    compaction_policy=compaction_policy,
                ),
                name=f"count/{p}",
            )
            for p in range(partitions)
        ]
        #: partition -> next offset to read (the processing frontier;
        #: runs ahead of the broker's *committed* offset between
        #: checkpoints).
        self.processed: Dict[int, int] = {p: 0 for p in range(partitions)}
        #: partition -> state snapshot of the last checkpoint.
        self._snapshots: Dict[int, dict] = {}
        self._checkpoint_offsets: Dict[tuple, int] = {}
        self._clock = 0.0
        self.checkpoints = 0
        self.crashes = 0

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------

    def produce(self, records: Iterable[Record]) -> int:
        count = 0
        for record in records:
            self.topic.produce(record)
            count += 1
        return count

    def pending(self) -> int:
        """Records produced but not yet processed."""
        return sum(
            partition.end_offset - self.processed[partition.index]
            for partition in self.topic.partitions
        )

    def poll_once(self, max_records: int = 25) -> int:
        """Process up to *max_records* per partition; returns the total."""
        total = 0
        for partition in self.topic.partitions:
            index = partition.index
            batch = partition.read(self.processed[index], max_records)
            store = self.stores[index]
            for record in batch:
                self._apply(store, record)
            self.processed[index] += len(batch)
            total += len(batch)
        return total

    def _apply(self, store: LSMStore, record: Record) -> None:
        for word in record.value.decode().split():
            key = word.encode()
            current = store.get(key)
            store.put(key, str(int(current) + 1 if current else 1).encode())

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """One coordinated checkpoint: flush every store, snapshot its
        state, and commit the processing frontier — atomically."""
        for index, store in enumerate(self.stores):
            self._clock += 1.0
            flush = store.begin_flush(reason="checkpoint", now=self._clock)
            if flush is not None:
                store.finish_flush(flush, now=self._clock)
            while True:
                compaction = store.pick_compaction(now=self._clock)
                if compaction is None:
                    break
                store.finish_compaction(compaction, now=self._clock)
            self._snapshots[index] = store.snapshot_state()
            self._commit(
                self.group, self.topic.name, index, self.processed[index]
            )
        self._checkpoint_offsets = self.broker.snapshot_offsets(self.group)
        self.checkpoints += 1

    def crash_and_recover(self) -> None:
        """Lose all memtables; rewind state *and* offsets to the last
        checkpoint (cold start when none completed yet) and resume."""
        self.crashes += 1
        self.broker.restore_offsets(self.group, dict(self._checkpoint_offsets))
        for index, store in enumerate(self.stores):
            store.restore_from_checkpoint(self._snapshots.get(index))
            if self.wal_enabled:
                # the WAL replayed every put since the snapshot, so the
                # processing frontier survives the crash
                continue
            self.processed[index] = self.broker.committed(
                self.group, self.topic.name, index
            )

    # ------------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Merged word counts across all partitions."""
        merged: Dict[str, int] = {}
        for store in self.stores:
            for word, count in store.scan():
                merged[word.decode()] = merged.get(word.decode(), 0) + int(count)
        return merged

    def run_to_completion(
        self,
        batch: int = 25,
        checkpoint_every: int = 3,
        crash_at_steps: Tuple[int, ...] = (),
        max_steps: Optional[int] = None,
    ) -> Dict[str, int]:
        """Drain the topic, checkpointing every *checkpoint_every* polls
        and crashing after the polls named in *crash_at_steps*."""
        crash_at = set(crash_at_steps)
        step = 0
        limit = max_steps if max_steps is not None else 10_000
        while self.pending() > 0:
            step += 1
            if step > limit:
                raise SimulationError("wordcount failed to drain the topic")
            self.poll_once(batch)
            if step % checkpoint_every == 0:
                self.checkpoint()
            if step in crash_at:
                self.crash_and_recover()
        self.checkpoint()  # final barrier: everything processed is durable
        return self.counts()
