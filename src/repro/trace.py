"""Structured, simulation-wide tracing.

The paper's central methodological point (§3) is that only *fine-grained*
monitoring — sub-second windows, per-activity timestamps — reveals the
hidden flush/compaction synchronization behind the latency long tail.
This module is the reproduction's equivalent of that instrumentation
layer: a low-overhead :class:`Tracer` that components throughout the
stack (event kernel, thread pools, LSM stores, checkpoint coordinator)
emit structured events into.

Event model (a subset of the Chrome trace-event phases):

* **complete spans** (``ph="X"``): an activity with a start and a
  duration — a flush or compaction execution, a job's queue wait, a
  checkpoint barrier;
* **instants** (``ph="i"``): a point event — a trigger decision, an ack,
  a memtable freeze;
* **counters** (``ph="C"``): a sampled value — a store's L0 file count,
  CPU demand, windowed p99.9 latency.

Events carry a category (``cat``): ``"flush"``/``"compaction"`` spans,
``"checkpoint"`` lifecycle, per-node ``"cpu"`` counters, ``"fault"``
injection instants, and ``"resilience"`` — every overload-protection
action (``slo-trip``/``slo-recover``, ``shed-engage``/``shed-exhausted``/
``shed-disengage``, ``upload-retry``/``upload-timeout``/``upload-shed``/
``retry-exhausted``/``breaker-open``, ``watchdog-pool-restart``/
``watchdog-worker-restart``) as instants on the acting component's tid.

Timestamps are simulation seconds.  Export formats:

* **JSONL** — one event object per line, headed by a schema record;
  the stable interchange format (golden-tested);
* **Chrome trace-event JSON** — loadable directly in Perfetto or
  ``chrome://tracing`` (timestamps converted to microseconds, thread
  names mapped via metadata records).

The default tracer everywhere is the :data:`NULL_TRACER` singleton whose
``enabled`` flag is ``False``; hot paths guard on that single attribute,
so an untraced run does no per-event work and produces bit-identical
results to a run of code that predates tracing.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ensure_tracer",
    "read_jsonl",
    "events_in_window",
]

#: Bump when the JSONL record shape changes; readers check it.
TRACE_SCHEMA_VERSION = 1

#: The JSONL header record's format tag.
_FORMAT_TAG = "repro.trace"

_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "tid", "args")


class TraceEvent:
    """One trace record.

    ``ph`` is the phase: ``"X"`` complete span (``dur`` > 0 relevant),
    ``"i"`` instant, ``"C"`` counter (value(s) in ``args``), ``"M"``
    metadata.  ``ts`` and ``dur`` are simulation seconds; ``tid`` is a
    logical track (a pool, a node, a coordinator).
    """

    __slots__ = _EVENT_KEYS

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        ts: float,
        dur: float = 0.0,
        tid: str = "",
        args: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.dur = dur
        self.tid = tid
        self.args = args or {}

    @property
    def end(self) -> float:
        return self.ts + self.dur

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "dur": self.dur,
            "tid": self.tid,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, data: dict) -> TraceEvent:
        return cls(
            name=data["name"],
            cat=data["cat"],
            ph=data["ph"],
            ts=data["ts"],
            dur=data.get("dur", 0.0),
            tid=data.get("tid", ""),
            args=dict(data.get("args") or {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceEvent {self.ph} {self.cat}/{self.name!r} "
            f"ts={self.ts:.6f} dur={self.dur:.6f}>"
        )


def events_in_window(
    events: Iterable[TraceEvent],
    start: float,
    end: float,
    category: Optional[str] = None,
    eps: float = 1e-9,
) -> List[TraceEvent]:
    """Events with ``start < ts <= end`` (optionally one *category*).

    The half-open-on-the-left convention matches windowed state digests
    (a digest at window boundary *t* summarizes everything up to and
    including *t*), so the race sanitizer can map a divergent digest
    straight to the dispatches that produced it.  *eps* absorbs
    float-accumulated boundary error.
    """
    lo, hi = start - eps, end + eps
    return [
        e
        for e in events
        if lo < e.ts <= hi and (category is None or e.cat == category)
    ]


class Tracer:
    """An append-only event sink shared by every traced component.

    Parameters
    ----------
    categories:
        Restrict recording to these categories (``None`` records all).
        The event-dispatch category ``"kernel"`` is opt-in regardless —
        it records one instant per simulator event and would dominate
        any real trace; pass ``categories={"kernel", ...}`` explicitly
        to get it.
    """

    #: Guarded by hot paths before doing any per-event work.
    enabled = True

    def __init__(self, categories: Optional[Iterable[str]] = None) -> None:
        self.events: List[TraceEvent] = []
        self._categories = None if categories is None else set(categories)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def wants(self, cat: str) -> bool:
        if cat == "kernel":
            return self._categories is not None and "kernel" in self._categories
        return self._categories is None or cat in self._categories

    def complete(
        self, name: str, cat: str, ts: float, dur: float, tid: str = "", **args
    ) -> None:
        """Record a finished span (start *ts*, length *dur* seconds)."""
        if self.wants(cat):
            self.events.append(TraceEvent(name, cat, "X", ts, dur, tid, args))

    def instant(self, name: str, cat: str, ts: float, tid: str = "", **args) -> None:
        if self.wants(cat):
            self.events.append(TraceEvent(name, cat, "i", ts, 0.0, tid, args))

    def counter(
        self,
        name: str,
        cat: str,
        ts: float,
        value: Union[float, int, Dict[str, float]],
        tid: str = "",
    ) -> None:
        if self.wants(cat):
            args = dict(value) if isinstance(value, dict) else {"value": value}
            self.events.append(TraceEvent(name, cat, "C", ts, 0.0, tid, args))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def clear(self) -> None:
        self.events.clear()

    def select(
        self,
        cat: Optional[str] = None,
        ph: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[TraceEvent]:
        return [
            e
            for e in self.events
            if (cat is None or e.cat == cat)
            and (ph is None or e.ph == ph)
            and (name is None or e.name == name)
        ]

    def extend(self, events: Iterable[TraceEvent]) -> None:
        self.events.extend(events)

    def to_dicts(self) -> List[dict]:
        return [event.to_dict() for event in self.events]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def iter_jsonl(self) -> Iterator[str]:
        """Yield the JSONL lines: a schema header, then one event each."""
        header = {
            "name": "trace",
            "cat": "meta",
            "ph": "M",
            "ts": 0.0,
            "dur": 0.0,
            "tid": "",
            "args": {"format": _FORMAT_TAG, "schema": TRACE_SCHEMA_VERSION},
        }
        yield json.dumps(header, sort_keys=True, separators=(",", ":"))
        for event in self.events:
            yield json.dumps(
                event.to_dict(), sort_keys=True, separators=(",", ":")
            )

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.iter_jsonl():
                handle.write(line)
                handle.write("\n")

    def chrome_trace(self) -> dict:
        """The Chrome trace-event form (Perfetto / chrome://tracing).

        Simulation seconds become microseconds; string track ids become
        integer ``tid`` values with ``thread_name`` metadata so the
        viewer shows the logical track names.
        """
        tids: Dict[str, int] = {}
        records: List[dict] = []
        for event in self.events:
            tid = tids.setdefault(event.tid or "main", len(tids) + 1)
            record = {
                "name": event.name,
                "cat": event.cat,
                "ph": event.ph,
                "ts": event.ts * 1e6,
                "pid": 1,
                "tid": tid,
            }
            if event.ph == "X":
                record["dur"] = event.dur * 1e6
            if event.ph == "i":
                record["s"] = "t"  # instant scope: thread
            if event.args:
                record["args"] = event.args
            records.append(record)
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": "repro-sim"},
            }
        ]
        for track, tid in sorted(tids.items(), key=lambda item: item[1]):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return {"traceEvents": meta + records, "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer events={len(self.events)}>"


class NullTracer(Tracer):
    """The zero-cost default: records nothing, wants nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(categories=())

    def wants(self, cat: str) -> bool:
        return False

    def complete(self, name, cat, ts, dur, tid="", **args) -> None:
        pass

    def instant(self, name, cat, ts, tid="", **args) -> None:
        pass

    def counter(self, name, cat, ts, value, tid="") -> None:
        pass


#: Shared no-op instance; components default to this.
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: Optional[Tracer]) -> Tracer:
    """``None``-safe coercion used by constructors taking a tracer."""
    return NULL_TRACER if tracer is None else tracer


def read_jsonl(path_or_lines) -> List[TraceEvent]:
    """Load events from a JSONL trace (path or iterable of lines).

    The schema header is validated and dropped; metadata records are
    preserved as events so traces round-trip.
    """
    if isinstance(path_or_lines, (str, bytes)) or hasattr(path_or_lines, "__fspath__"):
        with open(path_or_lines, encoding="utf-8") as handle:
            lines: Sequence[str] = handle.readlines()
    else:
        lines = list(path_or_lines)
    events: List[TraceEvent] = []
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        if index == 0 and data.get("ph") == "M" and data.get("name") == "trace":
            schema = data.get("args", {}).get("schema")
            if schema != TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported trace schema {schema!r}; "
                    f"this reader expects {TRACE_SCHEMA_VERSION}"
                )
            continue
        events.append(TraceEvent.from_dict(data))
    return events
