"""Asynchronous HDFS-style remote backup.

After each checkpoint Dracena ships the new SSTable files to HDFS for
persistence.  The transfer is asynchronous and off the worker's CPU, so
it does not participate in ShadowSync — but it is part of the system
the paper describes, and its recovery-point metric (how far the remote
copy lags) is used by one of the examples.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..sim.kernel import Simulator
from ..sim.resource import ProcessorSharingResource, ResourceTask

__all__ = ["HdfsBackup"]


class HdfsBackup:
    """A shared-uplink remote backup target."""

    def __init__(
        self,
        sim: Simulator,
        uplink_mb_s: float = 500.0,
        replication: int = 3,
        name: str = "hdfs",
    ) -> None:
        self.sim = sim
        self.name = name
        self.replication = replication
        self._uplink = ProcessorSharingResource(sim, f"{name}-uplink", uplink_mb_s)
        #: (checkpoint_id, bytes, submit_time, completion_time)
        self.completed: List[Tuple[int, int, float, float]] = []
        self._pending = 0

    def backup(
        self,
        checkpoint_id: int,
        nbytes: int,
        on_done: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Ship *nbytes* of SSTables for *checkpoint_id* asynchronously.

        *on_done*, when given, is called with the checkpoint id once the
        transfer completes — the hook the resilience layer uses to race
        an upload against its deadline.
        """
        if nbytes <= 0:
            self.completed.append(
                (checkpoint_id, 0, self.sim.now, self.sim.now)
            )
            if on_done is not None:
                self.sim.call_soon(on_done, checkpoint_id)
            return
        submit = self.sim.now
        self._pending += 1

        def done(_task: ResourceTask) -> None:
            self._pending -= 1
            self.completed.append((checkpoint_id, nbytes, submit, self.sim.now))
            if on_done is not None:
                on_done(checkpoint_id)

        work_mb = nbytes * self.replication / 1e6
        self._uplink.submit(
            ResourceTask(
                name=f"backup-cp{checkpoint_id}",
                kind="backup",
                work=work_mb,
                demand=self._uplink.capacity,
                on_complete=done,
            )
        )

    @property
    def pending(self) -> int:
        return self._pending

    def recovery_point_lag(self) -> Optional[float]:
        """Transfer time of the most recent completed backup."""
        if not self.completed:
            return None
        _cp, _nbytes, submit, finish = self.completed[-1]
        return finish - submit
