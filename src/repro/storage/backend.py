"""Storage backends: where SSTables live.

The paper runs RocksDB on in-memory *tmpfs* (the headline experiments)
and on *NVMe SSDs* (§5.3), with HDFS as asynchronous remote backup.
What the experiments need from a backend is only its contribution to
flush/compaction duration: a write/read bandwidth shared by concurrent
jobs and a fixed per-operation latency.  Each worker node instantiates
one device resource per backend (see
:class:`~repro.stream.worker.WorkerNode`), so concurrent flushes share
bandwidth exactly like threads share CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError

__all__ = ["StorageProfile", "TMPFS", "NVME_SSD", "HDD", "profile_by_name"]


@dataclass(frozen=True)
class StorageProfile:
    """Performance envelope of one storage technology."""

    name: str
    #: Sequential write bandwidth available to one node, MB/s.
    write_bandwidth_mb_s: float
    #: Sequential read bandwidth available to one node, MB/s.
    read_bandwidth_mb_s: float
    #: Fixed setup latency charged per operation (file create, fsync).
    per_op_latency_s: float = 0.0
    #: CPU-seconds per MB moved through this backend — the kernel block
    #: layer, interrupt handling and copy costs that a tmpfs write does
    #: not pay.  This is why the paper measures *worse* tails on NVMe
    #: than on tmpfs (§5.3): every flush and compaction burns extra CPU
    #: in exactly the windows that are already contended.
    io_cpu_seconds_per_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.write_bandwidth_mb_s <= 0 or self.read_bandwidth_mb_s <= 0:
            raise ConfigurationError(f"backend {self.name!r}: bandwidth must be > 0")
        if self.per_op_latency_s < 0:
            raise ConfigurationError(f"backend {self.name!r}: negative latency")

    def write_work_mb(self, nbytes: float) -> float:
        """Device work units (MB) for writing *nbytes*."""
        return nbytes / 1e6

    def read_work_mb(self, nbytes: float) -> float:
        return nbytes / 1e6

    @property
    def device_capacity(self) -> float:
        """Capacity of the shared device resource in MB/s.

        Reads and writes share one sequential-bandwidth budget; we use
        the write figure, the binding constraint for flush/compaction.
        """
        return self.write_bandwidth_mb_s

    def degraded(self, factor: float) -> StorageProfile:
        """A copy with bandwidth scaled by *factor* — the envelope of a
        slow-disk episode (throttled device, failing media).

        Nested calls compose: the bandwidth factors multiply, and the
        name carries a single ``-degraded`` suffix rather than stacking
        one per call.
        """
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError(
                f"degradation factor must be in (0, 1], got {factor}"
            )
        base = self.name
        while base.endswith("-degraded"):
            base = base[: -len("-degraded")]
        return replace(
            self,
            name=f"{base}-degraded",
            write_bandwidth_mb_s=self.write_bandwidth_mb_s * factor,
            read_bandwidth_mb_s=self.read_bandwidth_mb_s * factor,
        )


#: In-memory tmpfs: effectively free I/O — the paper's headline config,
#: chosen exactly so that ShadowSync is a pure-CPU phenomenon.
TMPFS = StorageProfile("tmpfs", write_bandwidth_mb_s=20000.0,
                       read_bandwidth_mb_s=20000.0, per_op_latency_s=0.0)

#: A datacenter NVMe SSD (§5.3): fast, but flush/compaction I/O is no
#: longer negligible, lengthening every activity and hence every
#: ShadowSync window.
NVME_SSD = StorageProfile("nvme", write_bandwidth_mb_s=1200.0,
                          read_bandwidth_mb_s=2500.0, per_op_latency_s=0.0005,
                          io_cpu_seconds_per_mb=0.06)

#: A spinning disk, for ablations far outside the paper's envelope.
HDD = StorageProfile("hdd", write_bandwidth_mb_s=150.0,
                     read_bandwidth_mb_s=180.0, per_op_latency_s=0.004,
                     io_cpu_seconds_per_mb=0.08)

_PROFILES = {p.name: p for p in (TMPFS, NVME_SSD, HDD)}


def profile_by_name(name: str) -> StorageProfile:
    """Look up a built-in profile (``tmpfs`` / ``nvme`` / ``hdd``)."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown storage profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None
