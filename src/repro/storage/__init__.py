"""Storage backends (tmpfs / NVMe / HDD profiles) and HDFS backup."""

from .backend import HDD, NVME_SSD, TMPFS, StorageProfile, profile_by_name
from .hdfs import HdfsBackup

__all__ = [
    "HDD",
    "NVME_SSD",
    "TMPFS",
    "StorageProfile",
    "profile_by_name",
    "HdfsBackup",
]
