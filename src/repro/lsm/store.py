"""The LSM store façade: RocksDB's role in the benchmark.

One :class:`LSMStore` backs one stage instance's keyed state, exactly as
Flink embeds one RocksDB instance per stateful task.  The store is fully
functional — puts, gets, deletes, scans, flushes, leveled compactions —
and separately exposes the *control-plane* hooks the simulation drives:

* :meth:`begin_flush` / :meth:`finish_flush` bracket a flush whose
  simulated duration the engine charges to CPU/storage;
* :meth:`pick_compaction` / :meth:`finish_compaction` do the same for
  compactions;
* :attr:`l0_file_count` is the counter whose trip at
  ``effective_l0_trigger()`` creates the 4-checkpoint ShadowSync cycle.

The read path merges, newest first: active memtable → frozen memtables
→ L0 (newest first) → L1..L6 (binary search per level).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..errors import LSMError, StoreClosedError
from ..trace import NULL_TRACER
from .compaction import CompactionJob
from .flush import FlushJob
from .levels import LevelManager
from .memtable import TOMBSTONE, MemTable
from .options import LSMOptions
from .policies import CompactionPolicy, make_policy
from .sstable import SSTable
from .wal import WriteAheadLog

__all__ = ["StoreStats", "LSMStore"]


class StoreStats:
    """Lifetime counters of one store."""

    __slots__ = (
        "puts",
        "gets",
        "deletes",
        "flush_count",
        "flush_bytes",
        "compaction_count",
        "compaction_input_bytes",
        "memtable_full_flushes",
    )

    def __init__(self) -> None:
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.flush_count = 0
        self.flush_bytes = 0
        self.compaction_count = 0
        self.compaction_input_bytes = 0
        self.memtable_full_flushes = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class LSMStore:
    """A single-writer LSM key-value store."""

    def __init__(self, options: Optional[LSMOptions] = None, name: str = "store") -> None:
        self.options = options or LSMOptions()
        self.name = name
        self._active = MemTable(self.options.entry_overhead_bytes)
        self._frozen: List[MemTable] = []
        self.levels = LevelManager(self.options)
        #: The compaction/scheduling policy (see :mod:`repro.lsm.policies`).
        self.policy: CompactionPolicy = make_policy(
            self.options.compaction_policy,
            options=self.options,
            params=self.options.compaction_policy_params,
        )
        self.stats = StoreStats()
        self._closed = False
        self.wal: Optional[WriteAheadLog] = (
            WriteAheadLog() if self.options.wal_enabled else None
        )
        #: memtable id -> WAL segment id, resolved at finish_flush.
        self._wal_segment_of: dict = {}
        #: Bumped on every checkpoint restore; jobs picked before a
        #: restore carry the old generation and are discarded on finish.
        self.generation = 0
        self.restore_count = 0
        #: Memtable ids frozen at restore time: their in-flight flushes
        #: complete as no-ops instead of corrupting the restored levels.
        self._orphaned: set = set()
        #: Installed by the engine (the simulator's root tracer); the
        #: store emits memtable-freeze instants and L0-count counters.
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        if self.wal is not None:
            self.wal.log_put(key, value)
        self._active.put(key, value)
        self.stats.puts += 1

    def delete(self, key: bytes) -> None:
        self._check_open()
        if self.wal is not None:
            self.wal.log_delete(key)
        self._active.delete(key)
        self.stats.deletes += 1

    def account(self, entries: int, data_bytes: int) -> None:
        """Add logical write volume (sampled simulation mode)."""
        self._check_open()
        self._active.account(entries, data_bytes)

    @property
    def memtable_full(self) -> bool:
        """True when the active memtable exceeds ``write_buffer_size``."""
        return self._active.size_bytes >= self.options.write_buffer_size

    @property
    def memtable_bytes(self) -> int:
        return self._active.size_bytes

    @property
    def memtable_entries(self) -> float:
        """Physical plus accounted entries in the active memtable."""
        return self._active.entry_count

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        self._check_open()
        self.stats.gets += 1
        found = self._active.get(key)
        if found is None:
            for memtable in reversed(self._frozen):
                found = memtable.get(key)
                if found is not None:
                    break
        if found is None:
            for table in self.levels.level(0):
                found = table.get(key)
                if found is not None:
                    break
        if found is None:
            for index in range(1, self.levels.num_levels):
                for table in self.levels.level(index):
                    found = table.get(key)
                    if found is not None:
                        break
                if found is not None:
                    break
        if found is None or found is TOMBSTONE:
            return None
        return found

    def scan(
        self, low: Optional[bytes] = None, high: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Yield live ``(key, value)`` pairs with ``low <= key < high``.

        Built by merging all sources with newest-wins semantics; this is
        O(total entries) and intended for tests/examples, not hot paths.
        """
        self._check_open()
        merged: dict = {}
        sources: List[Iterator[Tuple[bytes, object]]] = []
        for index in range(self.levels.num_levels - 1, 0, -1):
            for table in self.levels.level(index):
                sources.append(table.scan(low, high))
        for table in reversed(self.levels.level(0)):
            sources.append(table.scan(low, high))
        for memtable in self._frozen:
            sources.append(memtable.scan(low, high))
        sources.append(self._active.scan(low, high))
        for source in sources:  # oldest first: later sources overwrite
            for key, value in source:
                merged[key] = value
        for key in sorted(merged):
            value = merged[key]
            if value is not TOMBSTONE:
                yield key, value

    # ------------------------------------------------------------------
    # flush control plane
    # ------------------------------------------------------------------

    def begin_flush(self, reason: str = "checkpoint", now: float = 0.0) -> Optional[FlushJob]:
        """Freeze the active memtable; return the job, or ``None`` when
        there is nothing to flush."""
        self._check_open()
        if self._active.is_empty:
            return None
        memtable = self._active
        memtable.freeze()
        self._frozen.append(memtable)
        if self.wal is not None:
            self._wal_segment_of[id(memtable)] = self.wal.seal_active_segment()
        self._active = MemTable(self.options.entry_overhead_bytes)
        self.stats.flush_count += 1
        self.stats.flush_bytes += memtable.size_bytes
        if reason == "memtable-full":
            self.stats.memtable_full_flushes += 1
        job = FlushJob(self, memtable, reason=reason, created_at=now)
        if self.tracer.enabled:
            self.tracer.instant(
                "memtable-freeze", "flush", now, tid=self.name, **job.trace_args()
            )
        return job

    def finish_flush(self, job: FlushJob, now: float = 0.0) -> SSTable:
        """Run the flush's data plane and install its L0 output."""
        self._check_open()
        if job.store is not self:
            raise LSMError("flush job belongs to a different store")
        if id(job.memtable) in self._orphaned:
            # the store was restored from a checkpoint while this flush
            # was in flight; its memtable no longer exists
            self._orphaned.discard(id(job.memtable))
            return job.run(now) if job.output is None else job.output
        if job.memtable not in self._frozen:
            raise LSMError("flush job's memtable is not pending")
        table = job.run(now) if job.output is None else job.output
        self._frozen.remove(job.memtable)
        if self.wal is not None:
            segment = self._wal_segment_of.pop(id(job.memtable), None)
            if segment is not None:
                self.wal.drop_segment(segment)
        self.levels.add_l0(table)
        if self.tracer.enabled:
            self.tracer.counter("l0", "lsm", now, self.l0_file_count, tid=self.name)
        return table

    # ------------------------------------------------------------------
    # compaction control plane
    # ------------------------------------------------------------------

    @property
    def l0_file_count(self) -> int:
        return self.levels.l0_file_count

    def compaction_due(self) -> bool:
        """Non-claiming check: is compaction work plausibly available?"""
        return self.policy.due(self.levels)

    def install_compaction_policy(self, policy, params: Optional[dict] = None) -> CompactionPolicy:
        """Switch this store to *policy* (a name or an instance)."""
        if isinstance(policy, CompactionPolicy):
            self.policy = policy
        else:
            self.policy = make_policy(policy, options=self.options, params=params)
        return self.policy

    def pick_compaction(self, now: float = 0.0) -> Optional[CompactionJob]:
        """Reserve the next due compaction as a job, or ``None``."""
        self._check_open()
        pick = self.policy.pick(self.levels, now=now)
        if pick is None:
            return None
        job = CompactionJob(self, pick, created_at=now, policy=self.policy.name)
        job.generation = self.generation
        return job

    def finish_compaction(self, job: CompactionJob, now: float = 0.0) -> SSTable:
        """Run the merge and install its output, freeing the inputs."""
        self._check_open()
        if job.store is not self:
            raise LSMError("compaction job belongs to a different store")
        if getattr(job, "generation", self.generation) != self.generation:
            # picked before a checkpoint restore: its inputs describe a
            # level structure that no longer exists
            self.levels.abandon_compaction(job.pick)
            return job.run(now) if job.output is None else job.output
        output = job.run(now) if job.output is None else job.output
        cap = self.options.live_data_cap_bytes
        if cap is not None and job.pick.target_level >= 1:
            output.logical_bytes = min(output.logical_bytes, cap)
        self.levels.apply_compaction(job.pick, output)
        self.stats.compaction_count += 1
        self.stats.compaction_input_bytes += job.input_bytes
        if self.tracer.enabled:
            self.tracer.counter("l0", "lsm", now, self.l0_file_count, tid=self.name)
        return output

    def cancel_compaction(self, job: CompactionJob) -> None:
        self.levels.abandon_compaction(job.pick)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"store {self.name!r} is closed")

    def total_bytes(self) -> int:
        """Logical bytes across memtables and all levels."""
        frozen = sum(m.size_bytes for m in self._frozen)
        return self._active.size_bytes + frozen + self.levels.total_bytes()

    def check_invariants(self) -> None:
        self.levels.check_invariants()

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """A checkpoint snapshot of the durable state: the level
        structure plus the WAL frontier it covers.

        Meant to be captured right after a checkpoint flush completes,
        when the memtable contents have reached L0.
        """
        self._check_open()
        return {
            "levels": self.levels.snapshot(),
            "wal_sequence": self.wal.last_sequence if self.wal is not None else 0,
        }

    def restore_from_checkpoint(self, snapshot: Optional[dict]) -> None:
        """Rewind this store **in place** to *snapshot* (crash recovery).

        Memtables are lost, the level structure reverts to the snapshot
        (``None`` = cold start: empty levels), and WAL records written
        after the snapshot's frontier are replayed into a fresh memtable.
        In-flight flushes and compactions from before the restore are
        orphaned and complete as no-ops.
        """
        self._check_open()
        for memtable in self._frozen:
            self._orphaned.add(id(memtable))
        self._frozen = []
        self._wal_segment_of.clear()
        self._active = MemTable(self.options.entry_overhead_bytes)
        if snapshot is None:
            self.levels.restore([[] for _ in range(self.levels.num_levels)])
            wal_sequence = 0
        else:
            self.levels.restore(snapshot["levels"])
            wal_sequence = snapshot.get("wal_sequence", 0)
        if self.wal is not None:
            # replayed writes are already in the log — apply them to the
            # fresh memtable without logging them again
            for record in self.wal.replay_since(wal_sequence):
                if record.op == "put":
                    self._active.put(record.key, record.value)
                else:
                    self._active.delete(record.key)
        self.generation += 1
        self.restore_count += 1
        # Transient scheduler state (cursors, holds, token deficits)
        # described the pre-crash timeline; the restored store starts clean.
        self.policy.reset()

    def simulate_crash_and_recover(self) -> LSMStore:
        """Crash model: memtables are lost, SSTables survive, the WAL
        (when enabled) is replayed into a fresh memtable.

        Returns the recovered store; this store is closed.  Without a
        WAL the recovered store only contains flushed data — exactly
        the durability Flink's checkpoint-based recovery provides.
        """
        self._check_open()
        recovered = LSMStore(self.options, name=f"{self.name}-recovered")
        # SSTables are immutable: the recovered store can share them.
        for index in range(self.levels.num_levels):
            recovered.levels._levels[index] = list(self.levels._levels[index])
        if self.wal is not None:
            from .memtable import TOMBSTONE  # local import to avoid cycle noise

            for record in self.wal.replay():
                if record.op == "put":
                    recovered.put(record.key, record.value)
                else:
                    recovered.delete(record.key)
        self.close()
        return recovered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LSMStore {self.name!r} memtable={self._active.size_bytes}B "
            f"L0={self.l0_file_count} total={self.total_bytes()}B>"
        )
