"""RocksDB-like configuration options for the LSM store.

Only the options that matter for the ShadowSync study are modelled, with
the same names and defaults RocksDB uses where applicable:

* ``write_buffer_size`` — memtable capacity; a full memtable forces a
  flush even without a checkpoint (this is what desynchronizes the L0
  counters during workload initialization, §3.3).
* ``l0_compaction_trigger`` — number of L0 SSTables that triggers an
  L0→L1 compaction (RocksDB default: 4).  The *scheduled* ShadowSync
  cycle length is exactly this trigger times the checkpoint interval.
* ``max_background_flushes`` / ``max_background_compactions`` — the soft
  resources of §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import ConfigurationError

__all__ = ["LSMOptions", "KiB", "MiB"]

KiB = 1024
MiB = 1024 * 1024


@dataclass
class LSMOptions:
    """Tuning knobs of one :class:`~repro.lsm.store.LSMStore`."""

    #: Memtable capacity in bytes before a size-triggered flush.
    write_buffer_size: int = 64 * MiB
    #: Number of L0 files that triggers an L0→L1 compaction.
    l0_compaction_trigger: int = 4
    #: Total number of levels (RocksDB default num_levels = 7: L0..L6).
    num_levels: int = 7
    #: Max total bytes at L1; each deeper level is larger by the
    #: multiplier below (RocksDB: max_bytes_for_level_base / multiplier).
    max_bytes_for_level_base: int = 256 * MiB
    level_size_multiplier: int = 10
    #: Target size of one SSTable file produced by compaction.
    target_file_size: int = 64 * MiB
    #: Background thread pool sizes (§4.2's soft resources).
    max_background_flushes: int = 16
    max_background_compactions: int = 16
    #: Write-stall triggers on the L0 file count (RocksDB:
    #: level0_slowdown_writes_trigger / level0_stop_writes_trigger,
    #: scaled down to per-subtask stores that flush one small file per
    #: checkpoint).  When compaction cannot keep up, L0 accumulates and
    #: the store first throttles, then stops, writes — the mechanism
    #: that makes a 1-thread compaction pool catastrophic (Figure 14).
    l0_slowdown_trigger: int = 8
    l0_stop_trigger: int = 12
    #: Log writes to a WAL for crash recovery.  Flink's state backend
    #: disables it (checkpoints are the recovery mechanism), so the
    #: default is off; see :mod:`repro.lsm.wal`.
    wal_enabled: bool = False
    #: Per-entry bookkeeping overhead used for size accounting.
    entry_overhead_bytes: int = 24
    #: Upper bound on the *live* logical bytes of this store (distinct
    #: keys × entry size, plus slack).  For overwrite-heavy keyed state
    #: compaction output can never exceed the live data; under sampled
    #: simulation the physical dedup ratio cannot see that, so the cap
    #: enforces it.  ``None`` means append-only (no cap).
    live_data_cap_bytes: Optional[int] = None
    #: Optional policy deciding the *effective* L0 trigger for this
    #: store instance.  The mitigation of §4.1 installs
    #: ``randomized_l0_trigger`` here; ``None`` keeps the static trigger.
    l0_trigger_policy: Optional[Callable[[], int]] = None
    #: Which registered compaction/scheduling policy the store uses
    #: (see :mod:`repro.lsm.policies`).  ``"reference"`` reproduces the
    #: RocksDB-leveled behavior the paper studies; the mitigation zoo
    #: registers stronger alternatives.
    compaction_policy: str = "reference"
    #: Constructor keyword arguments for the chosen policy (e.g.
    #: ``{"max_l0_files": 2}`` for ``vlsm_partial``).  ``None`` uses
    #: the policy's defaults.
    compaction_policy_params: Optional[Dict] = None

    def __post_init__(self) -> None:
        if self.write_buffer_size <= 0:
            raise ConfigurationError("write_buffer_size must be positive")
        if self.l0_compaction_trigger < 1:
            raise ConfigurationError("l0_compaction_trigger must be >= 1")
        if self.num_levels < 2:
            raise ConfigurationError("num_levels must be >= 2 (L0 and L1)")
        if self.max_background_flushes < 1 or self.max_background_compactions < 1:
            raise ConfigurationError("background pool sizes must be >= 1")
        if self.level_size_multiplier < 2:
            raise ConfigurationError("level_size_multiplier must be >= 2")
        if not (
            self.l0_compaction_trigger
            <= self.l0_slowdown_trigger
            <= self.l0_stop_trigger
        ):
            raise ConfigurationError(
                "need l0_compaction_trigger <= l0_slowdown_trigger "
                "<= l0_stop_trigger"
            )
        # Lazy import: policies imports levels which imports options.
        from .policies import policy_class

        policy_class(self.compaction_policy)
        if self.compaction_policy_params is not None and not isinstance(
            self.compaction_policy_params, dict
        ):
            raise ConfigurationError("compaction_policy_params must be a dict")

    def effective_l0_trigger(self) -> int:
        """The L0 trigger in force, honoring a mitigation policy."""
        if self.l0_trigger_policy is not None:
            trigger = int(self.l0_trigger_policy())
            if trigger < 1:
                raise ConfigurationError(
                    f"l0_trigger_policy produced invalid trigger {trigger}"
                )
            return trigger
        return self.l0_compaction_trigger

    def max_bytes_for_level(self, level: int) -> float:
        """Size limit for *level* (L1-based geometric progression)."""
        if level <= 0:
            raise ConfigurationError("L0 is limited by file count, not bytes")
        return self.max_bytes_for_level_base * (
            self.level_size_multiplier ** (level - 1)
        )
