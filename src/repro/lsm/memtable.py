"""The in-memory write buffer (memtable).

Writes append to the active memtable; a flush freezes it and dumps its
sorted contents into one L0 SSTable.  While an instance's memtable is
being flushed RocksDB blocks writers — the "stop-the-world" behaviour
that makes flushes matter for tail latency even though they are short.

Two accounting paths coexist:

* **Physical entries** — real key/value pairs, kept sorted on demand;
  every LSM correctness test and the read path use these.
* **Logical bytes** — simulations that model 60 k msg/s do not insert
  sixty thousand real keys per second; they call :meth:`account` to add
  the bytes those writes *would* occupy, while still writing sampled
  real entries.  Size-triggered flush decisions use logical bytes, so
  timing behaviour is exact even under sampling.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import FrozenMemtableError

__all__ = ["TOMBSTONE", "MemTable"]


class _Tombstone:
    """Sentinel marking a deleted key until compaction drops it."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<TOMBSTONE>"


TOMBSTONE = _Tombstone()


class MemTable:
    """A mutable, sorted-on-demand in-memory write buffer."""

    def __init__(self, entry_overhead_bytes: int = 24) -> None:
        self._data: Dict[bytes, object] = {}
        self._entry_overhead = entry_overhead_bytes
        self._physical_bytes = 0
        self._accounted_bytes = 0
        self._accounted_entries = 0
        self._frozen = False

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite *key*."""
        self._check_writable()
        old = self._data.get(key)
        if old is None:
            self._physical_bytes += len(key) + self._entry_overhead
        elif old is not TOMBSTONE:
            self._physical_bytes -= len(old)
        else:
            pass  # tombstone carried no value bytes
        self._data[key] = value
        self._physical_bytes += len(value)

    def delete(self, key: bytes) -> None:
        """Record a deletion (tombstone)."""
        self._check_writable()
        old = self._data.get(key)
        if old is None:
            self._physical_bytes += len(key) + self._entry_overhead
        elif old is not TOMBSTONE:
            self._physical_bytes -= len(old)
        self._data[key] = TOMBSTONE

    def account(self, entries: int, data_bytes: int) -> None:
        """Add *logical* write volume without physical entries."""
        self._check_writable()
        if entries < 0 or data_bytes < 0:
            raise ValueError("account() takes non-negative amounts")
        self._accounted_entries += entries
        self._accounted_bytes += data_bytes + entries * self._entry_overhead

    def _check_writable(self) -> None:
        if self._frozen:
            raise FrozenMemtableError("memtable is frozen for flush")

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[object]:
        """The stored value, :data:`TOMBSTONE`, or ``None`` if absent."""
        return self._data.get(key)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def __len__(self) -> int:
        """Number of physical entries (tombstones included)."""
        return len(self._data)

    @property
    def entry_count(self) -> int:
        """Physical plus accounted logical entries."""
        return len(self._data) + self._accounted_entries

    @property
    def size_bytes(self) -> int:
        """Logical size used for flush decisions."""
        return self._physical_bytes + self._accounted_bytes

    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def is_empty(self) -> bool:
        return not self._data and self._accounted_entries == 0

    # ------------------------------------------------------------------
    # flush support
    # ------------------------------------------------------------------

    def freeze(self) -> None:
        """Make the memtable immutable prior to flushing it."""
        self._frozen = True

    def sorted_entries(self) -> List[Tuple[bytes, object]]:
        """Physical entries in key order (values may be TOMBSTONE)."""
        return sorted(self._data.items())

    def scan(
        self, low: Optional[bytes] = None, high: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, object]]:
        """Yield physical entries with ``low <= key < high`` in order."""
        for key, value in self.sorted_entries():
            if low is not None and key < low:
                continue
            if high is not None and key >= high:
                break
            yield key, value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "frozen" if self._frozen else "active"
        return (
            f"<MemTable {state} entries={len(self._data)} "
            f"bytes={self.size_bytes}>"
        )
