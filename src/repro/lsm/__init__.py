"""A functional LSM-tree key-value store (RocksDB's role).

The store is real — sorted memtables, immutable SSTables, leveled
compaction with newest-wins merges and tombstones — while its *timing*
is charged to the simulation by whoever drives the control-plane hooks
(:meth:`~repro.lsm.store.LSMStore.begin_flush`,
:meth:`~repro.lsm.store.LSMStore.pick_compaction`, …).
"""

from .compaction import CompactionJob
from .flush import FlushJob
from .levels import CompactionPick, LevelManager
from .memtable import TOMBSTONE, MemTable
from .options import KiB, LSMOptions, MiB
from .policies import (
    DEFAULT_POLICY,
    CompactionPolicy,
    make_policy,
    policy_class,
    policy_names,
    register_policy,
)
from .sstable import SSTable, merge_tables
from .store import LSMStore, StoreStats

__all__ = [
    "CompactionJob",
    "FlushJob",
    "CompactionPick",
    "LevelManager",
    "TOMBSTONE",
    "MemTable",
    "KiB",
    "LSMOptions",
    "MiB",
    "DEFAULT_POLICY",
    "CompactionPolicy",
    "make_policy",
    "policy_class",
    "policy_names",
    "register_policy",
    "SSTable",
    "merge_tables",
    "LSMStore",
    "StoreStats",
]
