"""Leveled organization of SSTables (L0 … L6).

L0 holds whole flushed memtables, newest first, with overlapping key
ranges.  L1 and deeper hold non-overlapping sorted runs.  The level
manager answers the two questions the ShadowSync study revolves around:

* ``l0_file_count`` — the counter whose trip at the compaction trigger
  schedules a compaction (Figures 5 and 9);
* which compaction to run next (L0→L1 on the trigger; Ln→Ln+1 on byte
  overflow, as in RocksDB's leveled compaction).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..errors import LSMError
from .options import LSMOptions
from .sstable import SSTable

__all__ = ["CompactionPick", "LevelManager"]


class CompactionPick:
    """A chosen compaction: inputs and their destination level."""

    __slots__ = ("inputs", "source_level", "target_level", "reason")

    def __init__(
        self,
        inputs: List[SSTable],
        source_level: int,
        target_level: int,
        reason: str,
    ) -> None:
        self.inputs = inputs
        self.source_level = source_level
        self.target_level = target_level
        self.reason = reason

    @property
    def input_bytes(self) -> int:
        return sum(t.logical_bytes for t in self.inputs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompactionPick L{self.source_level}->L{self.target_level} "
            f"files={len(self.inputs)} bytes={self.input_bytes} ({self.reason})>"
        )


class LevelManager:
    """Tracks the SSTables of every level of one store."""

    def __init__(self, options: LSMOptions) -> None:
        self.options = options
        #: levels[0] is L0, newest table first.
        self._levels: List[List[SSTable]] = [[] for _ in range(options.num_levels)]
        #: Tables currently consumed by a running compaction.
        self._compacting: set = set()
        #: Structure version: bumped by every mutation of the level
        #: lists or the compacting set.  Lets pick_compaction() memoize
        #: a "nothing due" answer — the backend polls it after every
        #: flush, and most polls find no work.
        self._version = 0
        self._no_pick_memo: Tuple[int, int] = (-1, -1)
        #: Per-level byte totals (ints, so caching is exact); ``None``
        #: entries are recomputed on demand.  The overflow scan reads
        #: every level on every post-flush poll, and re-summing table
        #: lists each time dominates the no-op path.
        self._bytes_cache: List[Optional[int]] = [None] * options.num_levels
        self._limit_cache: List[float] = [
            options.max_bytes_for_level(level)
            for level in range(1, options.num_levels)
        ]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    def level(self, index: int) -> List[SSTable]:
        return list(self._levels[index])

    @property
    def l0_file_count(self) -> int:
        """The ShadowSync counter: L0 SSTables accumulated so far."""
        return len(self._levels[0])

    def level_bytes(self, index: int) -> int:
        cached = self._bytes_cache[index]
        if cached is None:
            cached = sum(t.logical_bytes for t in self._levels[index])
            self._bytes_cache[index] = cached
        return cached

    def total_bytes(self) -> int:
        return sum(self.level_bytes(i) for i in range(self.num_levels))

    def all_tables(self) -> Iterator[SSTable]:
        for level in self._levels:
            yield from level

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add_l0(self, table: SSTable) -> None:
        """Install a freshly flushed SSTable at L0 (newest first)."""
        if table.level != 0:
            raise LSMError(f"table {table!r} is not an L0 table")
        self._levels[0].insert(0, table)
        self._version += 1
        self._bytes_cache[0] = None

    def apply_compaction(self, pick: CompactionPick, output: SSTable) -> None:
        """Replace *pick*'s inputs with *output* at the target level."""
        for table in pick.inputs:
            level = self._levels[table.level]
            if table not in level:
                raise LSMError(f"compaction input {table!r} is not installed")
            level.remove(table)
            self._compacting.discard(table.table_id)
        if output.level != pick.target_level:
            raise LSMError("compaction output installed at wrong level")
        target = self._levels[pick.target_level]
        target.append(output)
        # keep deeper levels ordered by key for non-overlap invariants
        if pick.target_level >= 1:
            target.sort(key=lambda t: (t.min_key or b""))
        self._version += 1
        self._bytes_cache = [None] * len(self._levels)

    # ------------------------------------------------------------------
    # compaction picking
    # ------------------------------------------------------------------

    def needs_l0_compaction(self, trigger: Optional[int] = None) -> bool:
        """True when the number of *idle* L0 files reaches the trigger."""
        if trigger is None:
            trigger = self.options.effective_l0_trigger()
        return len(self.idle_l0()) >= trigger

    def idle_l0(self) -> List[SSTable]:
        """L0 tables not claimed by a running compaction, newest first."""
        return [t for t in self._levels[0] if t.table_id not in self._compacting]

    def l0_compaction_in_flight(self) -> bool:
        """True while any L0 table is claimed by a running compaction.

        Claimed inputs stay installed until :meth:`apply_compaction`,
        so this is exactly "an L0→L1 merge is in flight" — the guard
        partial-compaction policies use to keep L1 runs disjoint.
        """
        return self.level_claimed(0)

    def level_claimed(self, level: int) -> bool:
        """True while any table at *level* is claimed by a running compaction."""
        return any(t.table_id in self._compacting for t in self._levels[level])

    # -- the no-pick memo (shared by LevelManager and the policy layer)

    def no_pick_memoized(self, trigger: int) -> bool:
        """True when "nothing due at *trigger*" is known for this version."""
        return self._no_pick_memo == (self._version, trigger)

    def memoize_no_pick(self, trigger: int) -> None:
        self._no_pick_memo = (self._version, trigger)

    def claim(self, pick: CompactionPick) -> CompactionPick:
        """Reserve *pick*'s inputs against concurrent compactions."""
        for table in pick.inputs:
            self._compacting.add(table.table_id)
        # the claim set grew: new structure
        self._version += 1
        return pick

    def pick_compaction(self, trigger: Optional[int] = None) -> Optional[CompactionPick]:
        """Choose and claim the next compaction, or ``None`` when
        nothing is due.

        Priority mirrors RocksDB's leveled strategy: L0 file-count
        pressure first, then the most over-sized deeper level.  This is
        the ``reference`` policy of :mod:`repro.lsm.policies`; stores
        route their picks through the policy layer, which builds on the
        non-claiming helpers below.

        A "nothing due" answer is memoized against the structure
        version and the trigger in force — the poll after every flush
        mostly finds no work, and rescanning the levels each time is
        measurable.  Trigger policies are stable between ``advance()``
        calls (no RNG draw per read), so the memo key is exact.
        """
        effective = (
            trigger if trigger is not None else self.options.effective_l0_trigger()
        )
        if self.no_pick_memoized(effective):
            return None
        pick = self.build_l0_pick(effective)
        if pick is None:
            level = self.peek_overflow_level()
            if level is not None:
                pick = self.build_level_pick(level)
        if pick is None:
            self.memoize_no_pick(effective)
            return None
        return self.claim(pick)

    def build_l0_pick(
        self, trigger: Optional[int] = None, max_files: Optional[int] = None
    ) -> Optional[CompactionPick]:
        """The L0→L1 merge due at *trigger*, unclaimed, or ``None``.

        ``max_files`` limits the merge to the *oldest* that many L0
        files (vLSM-style partial compaction) — the oldest suffix keeps
        newest-wins intact, because every remaining L0 file is newer
        than everything that moved to L1.

        Refuses while any compaction touching L0 or L1 is in flight:
        two concurrent picks landing at L1 can emit overlapping runs
        (the range closure skips claimed tables, so nothing else keeps
        their outputs disjoint), and an overlapped L1 breaks the
        first-match read path.
        """
        if self.level_claimed(0) or self.level_claimed(1):
            return None
        if trigger is None:
            trigger = self.options.effective_l0_trigger()
        idle = self.idle_l0()
        if len(idle) < trigger:
            return None
        if max_files is not None and max_files < len(idle):
            # idle is newest first: the oldest max_files live at the end
            inputs = list(idle[len(idle) - max_files:])
        else:
            inputs = list(idle)
        # The merged output spans the *combined* key range of all L0
        # inputs, so every L1 run overlapping that combined range must
        # join — and pulling one in can extend the range further, so
        # iterate to a fixpoint (L1 runs are disjoint, so this is fast).
        while True:
            keyed = [t for t in inputs if len(t)]
            if not keyed:
                break
            low = min(t.min_key for t in keyed)
            high = max(t.max_key for t in keyed)
            grew = False
            for table in self._levels[1]:
                if table in inputs:
                    continue
                if len(table) and table.min_key <= high and low <= table.max_key:
                    inputs.append(table)
                    grew = True
            if not grew:
                break
        return CompactionPick(inputs, 0, 1, reason="l0-trigger")

    def overflow_ratio(self, level: int) -> float:
        """``level_bytes / limit`` for a deeper level (0.0 when unlimited)."""
        limit = self._limit_cache[level - 1]
        return self.level_bytes(level) / limit if limit else 0.0

    def overflow_ratios(self) -> List[Tuple[int, float]]:
        """``(level, ratio)`` for every level that can source a compaction."""
        return [
            (level, self.overflow_ratio(level))
            for level in range(1, self.num_levels - 1)
        ]

    def peek_overflow_level(self) -> Optional[int]:
        """The most over-sized deeper level (ratio > 1), or ``None``."""
        worst_level = None
        worst_ratio = 1.0
        for level in range(1, self.num_levels - 1):
            ratio = self.overflow_ratio(level)
            if ratio > worst_ratio:
                worst_level = level
                worst_ratio = ratio
        return worst_level

    def build_level_pick(self, level: int) -> Optional[CompactionPick]:
        """An Ln→Ln+1 merge seeded at *level*'s oldest run, unclaimed,
        or ``None``.

        Refuses while any compaction touching *level* or ``level + 1``
        is in flight — same disjointness argument as
        :meth:`build_l0_pick`: a second pick landing at ``level + 1``
        while the first is unfinished can emit an overlapping run.
        """
        if self.level_claimed(level) or self.level_claimed(level + 1):
            return None
        candidates = list(self._levels[level])
        if not candidates:
            return None
        # Compact the oldest run plus its overlap in the next level,
        # extended to a fixpoint over the combined output range (the
        # same range-closure rule as the L0 pick).
        seed = min(candidates, key=lambda t: t.created_at)
        inputs = [seed]
        next_level = list(self._levels[level + 1])
        if not len(seed):
            # accounting-only seed: no key range — take the whole next
            # level so size bookkeeping stays conservative
            inputs.extend(next_level)
        else:
            while True:
                keyed = [t for t in inputs if len(t)]
                low = min(t.min_key for t in keyed)
                high = max(t.max_key for t in keyed)
                grew = False
                for table in next_level:
                    if table in inputs:
                        continue
                    if len(table) and table.min_key <= high and low <= table.max_key:
                        inputs.append(table)
                        grew = True
                if not grew:
                    break
        return CompactionPick(
            inputs, level, level + 1, reason="size-overflow"
        )

    def abandon_compaction(self, pick: CompactionPick) -> None:
        """Release *pick*'s inputs without applying it."""
        for table in pick.inputs:
            self._compacting.discard(table.table_id)
        self._version += 1

    # ------------------------------------------------------------------
    # checkpoint snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> List[List[SSTable]]:
        """A point-in-time copy of every level's table list.

        SSTables are immutable once installed, so sharing the table
        objects between the live levels and the snapshot is safe.
        """
        return [list(level) for level in self._levels]

    def restore(self, snapshot: List[List[SSTable]]) -> None:
        """Replace the level structure with *snapshot* (crash recovery).

        Any in-flight compaction claims are dropped — their jobs belong
        to the pre-crash store generation and will be discarded.
        """
        if len(snapshot) != self.num_levels:
            raise LSMError(
                f"snapshot has {len(snapshot)} levels, store has {self.num_levels}"
            )
        self._levels = [list(level) for level in snapshot]
        self._compacting = set()
        self._version += 1
        self._bytes_cache = [None] * len(self._levels)

    # ------------------------------------------------------------------
    # invariants (used heavily by property tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`LSMError` when the level structure is invalid."""
        for index in range(1, self.num_levels):
            level = self._levels[index]
            for table in level:
                if table.level != index:
                    raise LSMError(
                        f"table {table!r} installed at L{index} but claims "
                        f"L{table.level}"
                    )
            ranges: List[Tuple[bytes, bytes]] = [
                (t.min_key, t.max_key) for t in level if len(t)
            ]
            ranges.sort()
            for (lo_a, hi_a), (lo_b, _hi_b) in zip(ranges, ranges[1:]):
                if lo_b <= hi_a:
                    raise LSMError(
                        f"L{index} runs overlap: [{lo_a!r},{hi_a!r}] and "
                        f"[{lo_b!r},...]"
                    )
