"""Flush jobs: memtable → one L0 SSTable.

A flush has two halves with different timing roles:

* ``begin`` (instant): freeze the active memtable and install a fresh
  one — this is the moment the stage instance's writes stall;
* ``run``/``finish`` (takes simulated time): serialize the frozen
  memtable into an SSTable and install it at L0, bumping the L0 counter
  that drives the ShadowSync cycle.

The simulation engine charges the flush's CPU and I/O cost between
``begin`` and ``finish``; the pure data-plane work happens in
:meth:`FlushJob.run` so correctness is independently testable.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import LSMError
from .memtable import MemTable
from .sstable import SSTable

__all__ = ["FlushJob"]

_flush_ids = itertools.count(1)


class FlushJob:
    """One flush of one frozen memtable."""

    def __init__(self, store, memtable: MemTable, reason: str, created_at: float) -> None:
        if not memtable.frozen:
            raise LSMError("flush job requires a frozen memtable")
        self.flush_id = next(_flush_ids)
        self.store = store
        self.memtable = memtable
        #: "checkpoint" (triggered by the coordinator) or "memtable-full".
        self.reason = reason
        self.created_at = created_at
        self.output: Optional[SSTable] = None

    @property
    def input_bytes(self) -> int:
        return self.memtable.size_bytes

    @property
    def input_entries(self) -> int:
        return self.memtable.entry_count

    def trace_args(self) -> dict:
        """Plain-data identity of this flush for trace span/instant args."""
        return {
            "flush_id": self.flush_id,
            "reason": self.reason,
            "input_bytes": self.input_bytes,
            "created_at": self.created_at,
        }

    def run(self, now: float = 0.0) -> SSTable:
        """Serialize the memtable into an L0 SSTable (data plane)."""
        if self.output is not None:
            raise LSMError(f"flush #{self.flush_id} already ran")
        entries = [
            (key, value) for key, value in self.memtable.sorted_entries()
        ]
        self.output = SSTable(
            entries,
            logical_bytes=self.memtable.size_bytes,
            level=0,
            created_at=now,
        )
        return self.output

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ran = "done" if self.output is not None else "pending"
        return (
            f"<FlushJob #{self.flush_id} {self.reason} "
            f"bytes={self.input_bytes} {ran}>"
        )
