"""Compaction jobs: merge a pick of SSTables into the next level.

Compaction is the heavyweight half of ShadowSync: it is CPU-intensive
(k-way merge over the full input volume), asynchronous, and — unlike
flush — runs *concurrently* with message processing, stealing CPU from
it.  The simulation engine charges its cost through the compaction
thread pool; the pure merge in :meth:`CompactionJob.run` is the testable
data plane.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import LSMError
from .levels import CompactionPick
from .sstable import SSTable, merge_tables

__all__ = ["CompactionJob"]

_compaction_ids = itertools.count(1)


class CompactionJob:
    """One compaction of one :class:`~repro.lsm.levels.CompactionPick`."""

    def __init__(
        self,
        store,
        pick: CompactionPick,
        created_at: float,
        policy: str = "reference",
    ) -> None:
        self.compaction_id = next(_compaction_ids)
        self.store = store
        self.pick = pick
        self.created_at = created_at
        #: Which scheduling policy picked this job, and under which store
        #: generation — millibottleneck attribution distinguishes zoo
        #: members by these labels.
        self.policy = policy
        self.generation = 0
        self.output: Optional[SSTable] = None

    @property
    def input_bytes(self) -> int:
        return self.pick.input_bytes

    @property
    def input_files(self) -> int:
        return len(self.pick.inputs)

    @property
    def is_bottommost(self) -> bool:
        return self.pick.target_level == self.store.levels.num_levels - 1

    def trace_args(self) -> dict:
        """Plain-data identity of this compaction for trace span args."""
        return {
            "compaction_id": self.compaction_id,
            "source_level": self.pick.source_level,
            "target_level": self.pick.target_level,
            "input_bytes": self.input_bytes,
            "files": self.input_files,
            "created_at": self.created_at,
            "policy": self.policy,
            "generation": self.generation,
        }

    def run(self, now: float = 0.0) -> SSTable:
        """Merge the inputs into one output table (data plane)."""
        if self.output is not None:
            raise LSMError(f"compaction #{self.compaction_id} already ran")
        self.output = merge_tables(
            self.pick.inputs,
            drop_tombstones=self.is_bottommost,
            level=self.pick.target_level,
            created_at=now,
        )
        return self.output

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ran = "done" if self.output is not None else "pending"
        return (
            f"<CompactionJob #{self.compaction_id} "
            f"L{self.pick.source_level}->L{self.pick.target_level} "
            f"bytes={self.input_bytes} {ran}>"
        )
