"""Immutable sorted runs (SSTables) and their k-way merge.

An SSTable is the unit the ShadowSync counters count: every flush adds
one to L0, and the L0 file count reaching the compaction trigger is what
fires a compaction burst.  Physically it is an immutable sorted list of
``(key, value)`` pairs with binary-search reads; logically it also
carries the byte volume it represents under sampled simulation (see
:mod:`repro.lsm.memtable`).
"""

from __future__ import annotations

import bisect
import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import LSMError
from .memtable import TOMBSTONE

__all__ = ["SSTable", "merge_tables"]

_ids = itertools.count(1)


class SSTable:
    """An immutable sorted run of key/value entries."""

    __slots__ = ("table_id", "level", "_keys", "_values", "logical_bytes", "created_at")

    def __init__(
        self,
        entries: Sequence[Tuple[bytes, object]],
        logical_bytes: int,
        level: int = 0,
        created_at: float = 0.0,
    ) -> None:
        keys = [k for k, _v in entries]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise LSMError("SSTable entries must be strictly sorted by key")
        if logical_bytes < 0:
            raise LSMError("SSTable logical_bytes must be non-negative")
        self.table_id = next(_ids)
        self.level = level
        self._keys: List[bytes] = keys
        self._values: List[object] = [v for _k, v in entries]
        self.logical_bytes = logical_bytes
        self.created_at = created_at

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[object]:
        """Value for *key* (may be TOMBSTONE), or ``None`` if absent."""
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            return self._values[idx]
        return None

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Tuple[bytes, object]]:
        return iter(zip(self._keys, self._values))

    def scan(
        self, low: Optional[bytes] = None, high: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, object]]:
        start = 0 if low is None else bisect.bisect_left(self._keys, low)
        for idx in range(start, len(self._keys)):
            if high is not None and self._keys[idx] >= high:
                break
            yield self._keys[idx], self._values[idx]

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------

    @property
    def min_key(self) -> Optional[bytes]:
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> Optional[bytes]:
        return self._keys[-1] if self._keys else None

    def key_range_overlaps(self, other: SSTable) -> bool:
        """True when the key ranges of the two tables intersect."""
        if not self._keys or not other._keys:
            return False
        return self.min_key <= other.max_key and other.min_key <= self.max_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SSTable #{self.table_id} L{self.level} entries={len(self)} "
            f"bytes={self.logical_bytes}>"
        )


def merge_tables(
    tables: Sequence[SSTable],
    drop_tombstones: bool,
    level: int,
    created_at: float = 0.0,
) -> SSTable:
    """K-way-merge *tables* into one table for *level*.

    Newer tables win on duplicate keys.  ``tables`` must be ordered
    newest-first (L0 order; for leveled inputs ranges are disjoint so
    the order is irrelevant).  Tombstones are dropped only when merging
    into the bottommost level — dropping them earlier would resurrect
    older versions below.
    """
    if not tables:
        raise LSMError("merge_tables needs at least one input")
    # Dict-merge: oldest table first, newer entries overwrite — same
    # newest-wins winner per key as a precedence-tagged k-way heap
    # merge, at a fraction of the per-entry cost.  Sorting the surviving
    # items afterwards restores the key order a streaming merge yields.
    winners: dict = {}
    for table in reversed(tables):
        for key, value in table:
            winners[key] = value
    if drop_tombstones:
        merged: List[Tuple[bytes, object]] = [
            (key, value)
            for key, value in sorted(winners.items())
            if value is not TOMBSTONE
        ]
    else:
        merged = sorted(winners.items())

    # Logical output volume shrinks by the observed dedup ratio of the
    # physical entries (updates/deletes collapse during compaction).
    input_logical = sum(t.logical_bytes for t in tables)
    input_physical = sum(len(t) for t in tables)
    ratio = (len(merged) / input_physical) if input_physical else 1.0
    logical = int(input_logical * ratio)
    return SSTable(merged, logical_bytes=logical, level=level, created_at=created_at)
