"""Pluggable compaction/scheduling policies — the mitigation zoo.

The reference store compacts the way RocksDB's leveled strategy does:
every L0 trigger trip merges *all* idle L0 files (plus their L1
overlap), and deeper levels compact worst-overflow-first.  ShadowSync's
long tail comes precisely from those merges landing in synchronized
bursts, and the related work names scheduling disciplines that spread,
reorder or defer them:

* ``reference`` — the RocksDB-leveled baseline (bit-identical to the
  store's historical behavior).
* ``vlsm_partial`` — vLSM-style partial compaction: only the *oldest*
  ``max_l0_files`` L0 files merge per compaction, leaving the newer
  sub-level in place, so each merge is smaller and the burst flattens.
  At most one L0→L1 compaction runs per store at a time (partial picks
  of disjoint L0 suffixes may still overlap in key range, and their L1
  outputs must not).
* ``greedy_minor`` — Luo & Carey's greedy scheduler: of every runnable
  candidate (the L0 merge and each overflowing level), run the one with
  the smallest input first — minimum-latency merges keep the scheduler
  responsive.
* ``round_robin`` — Luo & Carey's round-robin scheduler: a cursor walks
  the levels so no level starves behind a persistently noisy one.
* ``flush_first`` — I/O-scheduler-style prioritization: compaction
  submission is briefly held while the node's flush pool has work in
  flight, so checkpoint flushes never queue behind L0 merges.
* ``fair_tokens`` — fairness-aware token bucket: each store's compaction
  *byte rate* is capped, so one hot store cannot monopolize the shared
  compaction pool during a synchronized burst.

Every policy is deterministic (no RNG), keeps the LSM correctness
invariants (the differential harness in
``tests/test_lsm_policy_invariants.py`` holds each registered name to
contents-equivalence with the reference compactor, determinism, and
exactly-once under crash-and-restore), and is discoverable through the
registry::

    from repro.lsm.policies import make_policy, policy_names

    policy_names()             # ['fair_tokens', 'flush_first', ...]
    make_policy('vlsm_partial', params={'max_l0_files': 3})
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Type

from ..errors import ConfigurationError
from .levels import CompactionPick, LevelManager

__all__ = [
    "CompactionPolicy",
    "register_policy",
    "policy_names",
    "policy_class",
    "make_policy",
    "DEFAULT_POLICY",
]

#: The policy every store uses unless configured otherwise.
DEFAULT_POLICY = "reference"

_POLICIES: Dict[str, Type["CompactionPolicy"]] = {}


def register_policy(name: str):
    """Class decorator: add a :class:`CompactionPolicy` to the registry."""

    def decorate(cls):
        if name in _POLICIES:
            raise ConfigurationError(f"policy {name!r} already registered")
        cls.name = name
        _POLICIES[name] = cls
        return cls

    return decorate


def policy_names() -> List[str]:
    """All registered policy names, sorted."""
    return sorted(_POLICIES)


def policy_class(name: str) -> Type["CompactionPolicy"]:
    """The class registered under *name*."""
    try:
        return _POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown compaction policy {name!r}; "
            f"available: {policy_names()}"
        ) from None


def make_policy(
    name: str, options=None, params: Optional[dict] = None
) -> "CompactionPolicy":
    """Instantiate the policy registered under *name*.

    *params* are keyword arguments of the policy's constructor (e.g.
    ``{'max_l0_files': 3}`` for ``vlsm_partial``); unknown keys raise.
    """
    cls = policy_class(name)
    try:
        return cls(options=options, **(params or {}))
    except TypeError as exc:
        raise ConfigurationError(
            f"bad params for policy {name!r}: {exc}"
        ) from None


class CompactionPolicy(ABC):
    """Decides which compaction a store runs next, and when.

    The *picking* half (:meth:`pick`) chooses and claims inputs from a
    :class:`~repro.lsm.levels.LevelManager`; the *scheduling* half
    (:meth:`submission_hold` / :meth:`on_submitted`) lets the state
    backend defer or pace job submission.  The base class supplies the
    shared machinery — the no-pick memo and the claim step — so
    subclasses implement only :meth:`choose`.
    """

    #: Overridden by :func:`register_policy`.
    name = "abstract"

    def __init__(self, options=None) -> None:
        self.options = options
        #: Lifetime pick count (reset on checkpoint restore).
        self.picks = 0

    # ------------------------------------------------------------------
    # picking
    # ------------------------------------------------------------------

    def pick(
        self,
        levels: LevelManager,
        now: float = 0.0,
        trigger: Optional[int] = None,
    ) -> Optional[CompactionPick]:
        """Choose and claim the next compaction, or ``None``.

        A "nothing due" answer is memoized against the level structure
        version (every policy's choice is a pure function of the level
        structure, the claim set and the trigger in force — stateful
        policies only advance their state on successful picks, which
        bump the version, so the memo stays exact).
        """
        effective = (
            trigger
            if trigger is not None
            else levels.options.effective_l0_trigger()
        )
        if levels.no_pick_memoized(effective):
            return None
        pick = self.choose(levels, effective)
        if pick is None:
            levels.memoize_no_pick(effective)
            return None
        levels.claim(pick)
        self.picks += 1
        return pick

    @abstractmethod
    def choose(
        self, levels: LevelManager, trigger: int
    ) -> Optional[CompactionPick]:
        """Return an unclaimed pick, or ``None`` when nothing is due."""

    def due(self, levels: LevelManager) -> bool:
        """Non-claiming check: would :meth:`pick` plausibly return work?"""
        return (
            levels.needs_l0_compaction()
            or levels.peek_overflow_level() is not None
        )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def submission_hold(self, now: float, node=None, store=None) -> float:
        """Seconds to defer compaction submission (0 = submit now).

        Called by the state backend before draining a store's due
        compactions; *node* exposes the flush/compaction pools and
        *store* the L0 pressure.  The default never holds.
        """
        return 0.0

    def on_submitted(self, job, now: float = 0.0) -> None:
        """Account a submitted :class:`~repro.lsm.compaction.CompactionJob`."""

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Forget transient state (called on checkpoint restore)."""
        self.picks = 0

    def describe(self) -> dict:
        """Plain-data identity (for artifacts and trace labels)."""
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} picks={self.picks}>"


# ----------------------------------------------------------------------
# the zoo
# ----------------------------------------------------------------------


@register_policy("reference")
class ReferencePolicy(CompactionPolicy):
    """RocksDB's leveled strategy — the store's historical behavior.

    L0 file-count pressure first (merge *all* idle L0 files plus their
    L1 overlap), then the most over-sized deeper level.  Bit-identical
    to :meth:`LevelManager.pick_compaction`.
    """

    def choose(
        self, levels: LevelManager, trigger: int
    ) -> Optional[CompactionPick]:
        pick = levels.build_l0_pick(trigger)
        if pick is None:
            level = levels.peek_overflow_level()
            if level is not None:
                pick = levels.build_level_pick(level)
        return pick


@register_policy("vlsm_partial")
class VlsmPartialPolicy(CompactionPolicy):
    """vLSM-style sub-levels with overlapping partial compaction.

    Only the oldest ``max_l0_files`` L0 files merge per compaction; the
    newer files stay behind as an upper sub-level whose (overlapping)
    key ranges keep absorbing flushes.  Smaller merges mean shorter CPU
    bursts — the lever vLSM uses to cut the tail.  At most one L0→L1
    compaction is in flight per store (the builders refuse a second
    pick into a level with a merge outstanding, keeping L1 runs
    disjoint); deeper levels compact as in the reference policy.
    """

    def __init__(self, options=None, max_l0_files: Optional[int] = None) -> None:
        super().__init__(options)
        if max_l0_files is not None and max_l0_files < 1:
            raise ConfigurationError("max_l0_files must be >= 1")
        self.max_l0_files = max_l0_files

    def choose(
        self, levels: LevelManager, trigger: int
    ) -> Optional[CompactionPick]:
        if not levels.l0_compaction_in_flight():
            limit = self.max_l0_files if self.max_l0_files is not None else trigger
            pick = levels.build_l0_pick(trigger, max_files=limit)
            if pick is not None:
                return pick
        level = levels.peek_overflow_level()
        if level is not None:
            return levels.build_level_pick(level)
        return None

    def describe(self) -> dict:
        return {"name": self.name, "max_l0_files": self.max_l0_files}


@register_policy("greedy_minor")
class GreedyMinorPolicy(CompactionPolicy):
    """Luo & Carey's greedy scheduler: smallest runnable merge first.

    Candidates are the L0 merge (when due) and one pick per overflowing
    deeper level; the policy runs the candidate with the fewest input
    bytes.  Short merges complete quickly and release their claims,
    keeping the compaction backlog — and the write stalls behind it —
    low-variance.
    """

    def choose(
        self, levels: LevelManager, trigger: int
    ) -> Optional[CompactionPick]:
        candidates: List[CompactionPick] = []
        pick = levels.build_l0_pick(trigger)
        if pick is not None:
            candidates.append(pick)
        for level, ratio in levels.overflow_ratios():
            if ratio > 1.0:
                deeper = levels.build_level_pick(level)
                if deeper is not None:
                    candidates.append(deeper)
        if not candidates:
            return None
        # Deterministic: ties break toward the shallower source level.
        return min(candidates, key=lambda p: (p.input_bytes, p.source_level))


@register_policy("round_robin")
class RoundRobinPolicy(CompactionPolicy):
    """Luo & Carey's round-robin scheduler: levels take turns.

    A cursor walks L0, L1, …; each pick starts scanning at the cursor
    and runs the first level with work, then advances past it.  No
    level starves behind a persistently overflowing neighbor, which
    stabilizes per-level sizes under sustained skew.  The cursor moves
    only on successful picks, so the no-pick memo stays exact.
    """

    def __init__(self, options=None) -> None:
        super().__init__(options)
        self._cursor = 0

    def choose(
        self, levels: LevelManager, trigger: int
    ) -> Optional[CompactionPick]:
        span = levels.num_levels - 1  # L0 .. L(n-2) can be sources
        for step in range(span):
            level = (self._cursor + step) % span
            if level == 0:
                pick = levels.build_l0_pick(trigger)
            elif levels.overflow_ratio(level) > 1.0:
                pick = levels.build_level_pick(level)
            else:
                pick = None
            if pick is not None:
                self._cursor = (level + 1) % span
                return pick
        return None

    def reset(self) -> None:
        super().reset()
        self._cursor = 0

    def describe(self) -> dict:
        return {"name": self.name, "cursor": self._cursor}


@register_policy("flush_first")
class FlushFirstPolicy(CompactionPolicy):
    """Flush-over-L0 I/O prioritization.

    Picks exactly as the reference policy, but holds compaction
    *submission* while the node's flush pool has jobs queued or running
    — checkpoint flushes (which block their instance stop-the-world)
    never contend with freshly triggered L0 merges for CPU and device
    bandwidth.  A per-episode cap bounds the deferral so compactions
    cannot starve under continuous flush pressure.
    """

    def __init__(
        self, options=None, hold_s: float = 0.05, max_hold_s: float = 0.5
    ) -> None:
        super().__init__(options)
        if hold_s <= 0 or max_hold_s < hold_s:
            raise ConfigurationError("need 0 < hold_s <= max_hold_s")
        self.hold_s = hold_s
        self.max_hold_s = max_hold_s
        self._hold_started: Optional[float] = None

    def choose(
        self, levels: LevelManager, trigger: int
    ) -> Optional[CompactionPick]:
        pick = levels.build_l0_pick(trigger)
        if pick is None:
            level = levels.peek_overflow_level()
            if level is not None:
                pick = levels.build_level_pick(level)
        return pick

    def submission_hold(self, now: float, node=None, store=None) -> float:
        flush_pool = getattr(node, "flush_pool", None)
        if flush_pool is None or flush_pool.backlog == 0:
            self._hold_started = None
            return 0.0
        if self._hold_started is None:
            self._hold_started = now
        if now - self._hold_started >= self.max_hold_s:
            # anti-starvation: stop yielding after max_hold_s of deferral
            return 0.0
        return self.hold_s

    def reset(self) -> None:
        super().reset()
        self._hold_started = None

    def describe(self) -> dict:
        return {
            "name": self.name,
            "hold_s": self.hold_s,
            "max_hold_s": self.max_hold_s,
        }


@register_policy("fair_tokens")
class FairTokenPolicy(CompactionPolicy):
    """Fairness-aware token scheduler: per-store compaction byte-rate cap.

    Each store holds a token bucket refilled at ``rate_mb_s`` with a
    ``burst_mb`` ceiling; every submitted compaction spends tokens equal
    to its input megabytes, and submission waits while the bucket is in
    deficit.  During a synchronized burst no single store can flood the
    shared compaction pool — the noisy-neighbor fairness the multi-tenant
    scenario needs.
    """

    def __init__(
        self, options=None, rate_mb_s: float = 64.0, burst_mb: float = 256.0
    ) -> None:
        super().__init__(options)
        if rate_mb_s <= 0 or burst_mb <= 0:
            raise ConfigurationError("rate_mb_s and burst_mb must be > 0")
        self.rate_mb_s = rate_mb_s
        self.burst_mb = burst_mb
        self._tokens_mb = burst_mb
        self._refilled_at = 0.0

    def choose(
        self, levels: LevelManager, trigger: int
    ) -> Optional[CompactionPick]:
        pick = levels.build_l0_pick(trigger)
        if pick is None:
            level = levels.peek_overflow_level()
            if level is not None:
                pick = levels.build_level_pick(level)
        return pick

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = now
        self._tokens_mb = min(
            self.burst_mb, self._tokens_mb + elapsed * self.rate_mb_s
        )

    def submission_hold(self, now: float, node=None, store=None) -> float:
        self._refill(now)
        if self._tokens_mb > 0.0:
            return 0.0
        return -self._tokens_mb / self.rate_mb_s

    def on_submitted(self, job, now: float = 0.0) -> None:
        self._refill(now)
        self._tokens_mb -= job.input_bytes / 1e6

    def reset(self) -> None:
        super().reset()
        self._tokens_mb = self.burst_mb
        self._refilled_at = 0.0

    def describe(self) -> dict:
        return {
            "name": self.name,
            "rate_mb_s": self.rate_mb_s,
            "burst_mb": self.burst_mb,
        }
