"""Write-ahead log and crash recovery.

RocksDB's durability story: every write is appended to the WAL before
it enters the memtable; when a memtable is flushed to an SSTable, the
WAL segment that covered it is dropped.  After a crash the memtables
are gone, the SSTables survive, and replaying the remaining WAL
segments reconstructs the lost memtable state.

Flink's RocksDB state backend typically *disables* the WAL (the
checkpoint itself is the recovery mechanism), which is why the store
defaults to ``wal_enabled=False`` — but the substrate is complete, and
the examples/tests exercise full crash-recovery with it.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional

from ..errors import LSMError

__all__ = ["WalRecord", "WalSegment", "WriteAheadLog"]

_PUT = "put"
_DELETE = "delete"


class WalRecord:
    """One logged write."""

    __slots__ = ("sequence", "op", "key", "value")

    def __init__(self, sequence: int, op: str, key: bytes, value: Optional[bytes]) -> None:
        self.sequence = sequence
        self.op = op
        self.key = key
        self.value = value

    @property
    def size_bytes(self) -> int:
        overhead = 16  # sequence + framing
        return overhead + len(self.key) + (len(self.value or b""))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WalRecord #{self.sequence} {self.op} {self.key!r}>"


class WalSegment:
    """The log records covering one memtable's lifetime."""

    def __init__(self, segment_id: int) -> None:
        self.segment_id = segment_id
        self.records: List[WalRecord] = []
        self.sealed = False

    def append(self, record: WalRecord) -> None:
        if self.sealed:
            raise LSMError(f"segment {self.segment_id} is sealed")
        self.records.append(record)

    @property
    def size_bytes(self) -> int:
        return sum(r.size_bytes for r in self.records)

    def __len__(self) -> int:
        return len(self.records)


class WriteAheadLog:
    """An in-memory stand-in for the on-disk log file."""

    def __init__(self) -> None:
        self._sequence = itertools.count(1)
        self._segment_ids = itertools.count(1)
        self._active = WalSegment(next(self._segment_ids))
        self._sealed: List[WalSegment] = []
        self.appended_bytes = 0
        self._last_sequence = 0

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def log_put(self, key: bytes, value: bytes) -> int:
        return self._append(_PUT, key, value)

    def log_delete(self, key: bytes) -> int:
        return self._append(_DELETE, key, None)

    def _append(self, op: str, key: bytes, value: Optional[bytes]) -> int:
        record = WalRecord(next(self._sequence), op, key, value)
        self._active.append(record)
        self.appended_bytes += record.size_bytes
        self._last_sequence = record.sequence
        return record.sequence

    # ------------------------------------------------------------------
    # segment lifecycle (tied to memtable flushes)
    # ------------------------------------------------------------------

    def seal_active_segment(self) -> int:
        """Seal the active segment (its memtable froze); returns its id."""
        self._active.sealed = True
        self._sealed.append(self._active)
        self._active = WalSegment(next(self._segment_ids))
        return self._sealed[-1].segment_id

    def drop_segment(self, segment_id: int) -> None:
        """Drop a sealed segment (its memtable reached an SSTable)."""
        for i, segment in enumerate(self._sealed):
            if segment.segment_id == segment_id:
                del self._sealed[i]
                return
        raise LSMError(f"unknown WAL segment {segment_id}")

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def replay(self) -> Iterator[WalRecord]:
        """All surviving records in write order (sealed, then active)."""
        for segment in self._sealed:
            yield from segment.records
        yield from self._active.records

    def replay_since(self, sequence: int) -> Iterator[WalRecord]:
        """Surviving records with sequence strictly after *sequence* —
        the writes a checkpoint snapshot did not cover."""
        for record in self.replay():
            if record.sequence > sequence:
                yield record

    @property
    def last_sequence(self) -> int:
        """Sequence number of the most recently logged write (0 = none).

        Captured into checkpoint snapshots so recovery replays exactly
        the records the snapshot missed.
        """
        return self._last_sequence

    @property
    def live_bytes(self) -> int:
        return self._active.size_bytes + sum(s.size_bytes for s in self._sealed)

    @property
    def segment_count(self) -> int:
        """Sealed segments awaiting their flush, plus the active one."""
        return len(self._sealed) + 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WriteAheadLog segments={self.segment_count} "
            f"bytes={self.live_bytes}>"
        )
