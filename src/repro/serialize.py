"""One serialization protocol for result-shaped objects.

Before this module each result class grew its own ad-hoc ``as_dict``
(:class:`~repro.metrics.collector.CheckpointStats`,
:class:`~repro.analysis.overlap.OverlapReport`,
:class:`~repro.experiments.summary.RunSummary`,
:class:`~repro.experiments.runner.ExperimentSettings`) with no inverse.
The protocol here is the single supported surface:

* :func:`to_dict` — JSON-ready plain data for any participating object;
* :func:`from_dict` — the inverse, accepting either the class or its
  registered name, so stored payloads can be revived generically;
* :func:`register` — class decorator adding the class to the name
  registry (used by caches and trace payloads that store a type tag).

Participating classes implement ``to_dict()`` and a ``from_dict(data)``
classmethod; plain dataclasses get both derived automatically by
:func:`to_dict`/:func:`from_dict`.  Legacy ``as_dict()`` methods remain
as thin aliases of ``to_dict()``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Type, Union

__all__ = [
    "register",
    "registered",
    "to_dict",
    "from_dict",
    "roundtrip",
    "canonical_json",
]

_REGISTRY: Dict[str, type] = {}


def register(cls):
    """Class decorator: make *cls* revivable by name via :func:`from_dict`."""
    _REGISTRY[cls.__name__] = cls
    return cls


def registered(name: str) -> type:
    """The class registered under *name* (KeyError when unknown)."""
    return _REGISTRY[name]


def to_dict(obj: Any) -> dict:
    """Plain-data (JSON-ready) form of *obj*.

    Dispatch order: the object's own ``to_dict``, then legacy
    ``as_dict``, then :func:`dataclasses.asdict` for plain dataclasses.
    """
    method = getattr(obj, "to_dict", None)
    if callable(method):
        return method()
    method = getattr(obj, "as_dict", None)
    if callable(method):
        return method()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    raise TypeError(f"{type(obj).__name__} does not support to_dict()")


def from_dict(target: Union[str, Type], data: dict) -> Any:
    """Revive an object of *target* (a class or a registered name)."""
    cls = registered(target) if isinstance(target, str) else target
    method = getattr(cls, "from_dict", None)
    if callable(method):
        return method(data)
    if dataclasses.is_dataclass(cls):
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})
    raise TypeError(f"{cls.__name__} does not support from_dict()")


def roundtrip(obj: Any) -> Any:
    """``from_dict(type(obj), to_dict(obj))`` — the protocol's contract."""
    return from_dict(type(obj), to_dict(obj))


def canonical_json(data: Any) -> str:
    """Insertion-order-independent JSON text of plain data.

    Keys are sorted recursively and separators are minimal, so two
    structurally equal payloads serialize to the same bytes no matter
    how their dicts were built.  This is the one serialization every
    content address (cache keys, state digests) must go through — the
    order-sanitizer (:mod:`repro.sanitize.ordering`) verifies it.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))
