"""Golden-diagnostic tests for the static determinism lint."""

import json
from pathlib import Path

import pytest

from repro.experiments.cli import main
from repro.sanitize import (
    RULES,
    findings_json,
    lint_paths,
    lint_source,
    render_findings,
)

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
VIOLATIONS = FIXTURES / "violations.py"
CLEAN = FIXTURES / "clean.py"
PACKAGE = Path(__file__).parents[1] / "src" / "repro"


def test_rule_registry_is_complete():
    assert sorted(RULES) == ["DS101", "DS102", "DS103", "DS104", "DS105"]
    for rule in RULES.values():
        assert rule.hint and rule.summary and rule.name


@pytest.mark.parametrize(
    "rule_id, line, fragment",
    [
        ("DS101", 15, "time.time()"),
        ("DS102", 19, "random.random()"),
        ("DS102", 23, "numpy.random.rand()"),
        ("DS103", 27, "set literal"),
        ("DS104", 32, "mutable_default()"),
        ("DS105", 37, "shared_registry"),
    ],
)
def test_golden_diagnostics(rule_id, line, fragment):
    findings = lint_paths([VIOLATIONS])
    matches = [f for f in findings if f.rule_id == rule_id and f.line == line]
    assert len(matches) == 1, render_findings(findings)
    finding = matches[0]
    assert fragment in finding.message
    assert finding.location == f"{VIOLATIONS}:{line}:{finding.col}"
    assert RULES[rule_id].hint == finding.hint


def test_violation_fixture_has_exactly_the_planted_findings():
    findings = lint_paths([VIOLATIONS])
    assert [f.rule_id for f in findings] == [
        "DS101", "DS102", "DS102", "DS103", "DS104", "DS105",
    ]


def test_clean_fixture_and_suppressions():
    assert lint_paths([CLEAN]) == []


def test_inline_suppression_is_rule_specific():
    source = "import time\n\nt = time.time()  # repro: allow[DS101] boot stamp\n"
    assert lint_source(source, "x.py") == []
    # A suppression for a different rule must not silence the finding.
    wrong = "import time\n\nt = time.time()  # repro: allow[DS102]\n"
    findings = lint_source(wrong, "x.py")
    assert [f.rule_id for f in findings] == ["DS101"]


def test_suppression_accepts_rule_name_and_wildcard():
    by_name = "import time\nT = time.time()  # repro: allow[wall-clock]\n"
    assert lint_source(by_name, "x.py") == []
    wildcard = "import random\nV = random.random()  # repro: allow[*]\n"
    assert lint_source(wildcard, "x.py") == []


def test_suppression_on_preceding_line():
    source = (
        "import time\n"
        "# repro: allow[DS101] harness-only timing\n"
        "T = time.time()\n"
    )
    assert lint_source(source, "x.py") == []


def test_syntax_error_reports_ds000():
    findings = lint_source("def broken(:\n", "x.py")
    assert len(findings) == 1
    assert findings[0].rule_id == "DS000"


def test_findings_json_shape():
    report = findings_json(lint_paths([VIOLATIONS]))
    assert report["tool"] == "repro.sanitize.lint"
    assert report["count"] == 6
    assert set(report["rules"]) == set(RULES)
    assert json.loads(json.dumps(report)) == report
    first = report["findings"][0]
    assert {"path", "line", "col", "rule_id", "rule_name", "message",
            "hint"} <= set(first)


def test_render_findings_tallies_by_rule():
    text = render_findings(lint_paths([VIOLATIONS]))
    assert "6 finding(s)" in text
    assert "DS102 x2" in text
    assert f"{VIOLATIONS}:15:" in text


def test_repro_package_is_lint_clean():
    findings = lint_paths([PACKAGE])
    assert findings == [], render_findings(findings)


def test_cli_lint_exit_codes(capsys):
    assert main(["lint", str(VIOLATIONS)]) == 1
    out = capsys.readouterr().out
    assert "DS101[wall-clock]" in out
    assert main(["lint", str(CLEAN)]) == 0
    assert main(["lint", str(FIXTURES / "missing.py")]) == 2


def test_cli_lint_json(capsys):
    assert main(["lint", str(VIOLATIONS), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["count"] == 6
