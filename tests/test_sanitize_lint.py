"""Golden-diagnostic tests for the static determinism lint."""

import json
from pathlib import Path

import pytest

from repro.experiments.cli import main
from repro.sanitize import (
    RULES,
    findings_json,
    lint_paths,
    lint_source,
    render_findings,
)

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
VIOLATIONS = FIXTURES / "violations.py"
CLEAN = FIXTURES / "clean.py"
PACKAGE = Path(__file__).parents[1] / "src" / "repro"


def test_rule_registry_is_complete():
    assert sorted(RULES) == [
        "DS101", "DS102", "DS103", "DS104", "DS105",
        "DS201", "DS202", "DS203", "DS204", "DS205",
    ]
    for rule in RULES.values():
        assert rule.hint and rule.summary and rule.name


@pytest.mark.parametrize(
    "rule_id, line, fragment",
    [
        ("DS101", 15, "time.time()"),
        ("DS102", 19, "random.random()"),
        ("DS102", 23, "numpy.random.rand()"),
        ("DS103", 27, "set literal"),
        ("DS104", 32, "mutable_default()"),
        ("DS105", 37, "shared_registry"),
    ],
)
def test_golden_diagnostics(rule_id, line, fragment):
    findings = lint_paths([VIOLATIONS])
    matches = [f for f in findings if f.rule_id == rule_id and f.line == line]
    assert len(matches) == 1, render_findings(findings)
    finding = matches[0]
    assert fragment in finding.message
    assert finding.location == f"{VIOLATIONS}:{line}:{finding.col}"
    assert RULES[rule_id].hint == finding.hint


def test_violation_fixture_has_exactly_the_planted_findings():
    findings = lint_paths([VIOLATIONS])
    assert [f.rule_id for f in findings] == [
        "DS101", "DS102", "DS102", "DS103", "DS104", "DS105",
    ]


def test_clean_fixture_and_suppressions():
    assert lint_paths([CLEAN]) == []


def test_inline_suppression_is_rule_specific():
    source = "import time\n\nt = time.time()  # repro: allow[DS101] boot stamp\n"
    assert lint_source(source, "x.py") == []
    # A suppression for a different rule must not silence the finding.
    wrong = "import time\n\nt = time.time()  # repro: allow[DS102]\n"
    findings = lint_source(wrong, "x.py")
    assert [f.rule_id for f in findings] == ["DS101"]


def test_suppression_accepts_rule_name_and_wildcard():
    by_name = "import time\nT = time.time()  # repro: allow[wall-clock]\n"
    assert lint_source(by_name, "x.py") == []
    wildcard = "import random\nV = random.random()  # repro: allow[*]\n"
    assert lint_source(wildcard, "x.py") == []


def test_suppression_on_preceding_line():
    source = (
        "import time\n"
        "# repro: allow[DS101] harness-only timing\n"
        "T = time.time()\n"
    )
    assert lint_source(source, "x.py") == []


def test_syntax_error_reports_ds000():
    findings = lint_source("def broken(:\n", "x.py")
    assert len(findings) == 1
    assert findings[0].rule_id == "DS000"


def test_findings_json_shape():
    report = findings_json(lint_paths([VIOLATIONS]))
    assert report["tool"] == "repro.sanitize.lint"
    assert report["count"] == 6
    assert set(report["rules"]) == set(RULES)
    assert json.loads(json.dumps(report)) == report
    first = report["findings"][0]
    assert {"path", "line", "col", "rule_id", "rule_name", "message",
            "hint"} <= set(first)


def test_render_findings_tallies_by_rule():
    text = render_findings(lint_paths([VIOLATIONS]))
    assert "6 finding(s)" in text
    assert "DS102 x2" in text
    assert f"{VIOLATIONS}:15:" in text


def test_repro_package_is_lint_clean():
    findings = lint_paths([PACKAGE])
    assert findings == [], render_findings(findings)


def test_cli_lint_exit_codes(capsys):
    assert main(["lint", str(VIOLATIONS)]) == 1
    out = capsys.readouterr().out
    assert "DS101[wall-clock]" in out
    assert main(["lint", str(CLEAN)]) == 0
    assert main(["lint", str(FIXTURES / "missing.py")]) == 2


def test_cli_lint_json(capsys):
    assert main(["lint", str(VIOLATIONS), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["count"] == 6


def test_overlapping_paths_lint_each_file_once():
    once = lint_paths([FIXTURES])
    twice = lint_paths([FIXTURES, VIOLATIONS, FIXTURES])
    assert [f.location for f in twice] == [f.location for f in once]


def test_unreadable_file_reports_ds000(tmp_path):
    bad = tmp_path / "latin.py"
    bad.write_bytes(b"x = '\xe9'\n")  # not valid UTF-8
    findings = lint_paths([bad])
    assert [f.rule_id for f in findings] == ["DS000"]
    assert findings[0].rule_name == "unreadable-file"
    # A directory containing it still lints its healthy siblings.
    good = tmp_path / "ok.py"
    good.write_text("import time\nT = time.time()\n")
    findings = lint_paths([tmp_path])
    assert [(f.rule_id, Path(f.path).name) for f in findings] == [
        ("DS000", "latin.py"), ("DS101", "ok.py"),
    ]


def test_unknown_rule_label_has_did_you_mean():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError) as exc:
        lint_paths([CLEAN], rules=["DS10"])
    assert "did you mean" in str(exc.value)


def test_sarif_export_shape():
    from repro.sanitize import findings_sarif

    sarif = findings_sarif(lint_paths([VIOLATIONS]))
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert [r["id"] for r in driver["rules"]] == sorted(RULES)
    assert len(run["results"]) == 6
    first = run["results"][0]
    assert first["ruleId"] == "DS101"
    assert driver["rules"][first["ruleIndex"]]["id"] == "DS101"
    region = first["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 15
    assert json.loads(json.dumps(sarif)) == sarif


def test_sarif_result_for_unregistered_rule_has_no_index():
    from repro.sanitize import findings_sarif
    from repro.sanitize.lint import lint_source as _ls

    sarif = findings_sarif(_ls("def broken(:\n", "x.py"))
    (result,) = sarif["runs"][0]["results"]
    assert result["ruleId"] == "DS000"
    assert "ruleIndex" not in result


def test_cli_lint_format_sarif(capsys):
    assert main(["lint", str(VIOLATIONS), "--format", "sarif"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    assert len(sarif["runs"][0]["results"]) == 6


def test_cli_lint_rules_filter(capsys):
    assert main(["lint", str(VIOLATIONS), "--rules", "DS102", "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["count"] == 2
    assert main(["lint", str(VIOLATIONS), "--rules", "DS2xx"]) == 0
    capsys.readouterr()
    assert main(["lint", str(VIOLATIONS), "--rules", "bogus"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_cli_sync_static_only(capsys):
    assert main(["sync", "--static-only", str(PACKAGE)]) == 0
    out = capsys.readouterr().out
    assert "shadow-sync audit: clean" in out
