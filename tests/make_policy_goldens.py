#!/usr/bin/env python
"""Regenerate tests/data/policy_goldens.json after a deliberate change
to a compaction/scheduling policy's behavior.

Usage::

    PYTHONPATH=src python tests/make_policy_goldens.py
"""

import json
from pathlib import Path

from test_lsm_policy_invariants import compute_policy_tails

#: The library scenarios the golden table pins (one tail per policy).
SCENARIOS = ("baseline_traffic", "baseline_wordcount")


def main() -> None:
    out = Path(__file__).parent / "data" / "policy_goldens.json"
    golden = {name: compute_policy_tails(name) for name in SCENARIOS}
    out.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    for name, tails in golden.items():
        for policy, p999 in tails.items():
            print(f"  {name:20s} {policy:14s} p99.9 = {p999 * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
