"""Unit tests for the phi-accrual failure detector (no simulator)."""

from repro.cluster import PhiAccrualDetector


def make_detector(**kwargs):
    defaults = dict(interval_s=0.5, threshold=8.0, min_std_s=0.05, window=16)
    defaults.update(kwargs)
    return PhiAccrualDetector(**defaults)


def feed_heartbeats(detector, name, start, count, interval):
    detector.register(name, start)
    now = start
    for _ in range(count):
        now += interval
        detector.heartbeat(name, now)
    return now


def test_fresh_heartbeats_keep_phi_low():
    detector = make_detector()
    now = feed_heartbeats(detector, "n0", 0.0, 10, 0.5)
    # just past one interval of silence: barely suspicious
    assert detector.phi("n0", now + 0.5) < detector.threshold
    assert detector.check("n0", now + 0.5) is None


def test_silence_accrues_past_the_threshold():
    detector = make_detector()
    now = feed_heartbeats(detector, "n0", 0.0, 10, 0.5)
    phi = detector.check("n0", now + 5.0)
    assert phi is not None and phi >= detector.threshold
    assert "n0" in detector.suspected
    # the crossing is recorded once, not on every later check
    assert detector.check("n0", now + 6.0) is None
    (transition,) = detector.transitions
    assert transition["event"] == "suspect" and transition["node"] == "n0"


def test_phi_grows_monotonically_with_silence():
    detector = make_detector()
    now = feed_heartbeats(detector, "n0", 0.0, 10, 0.5)
    values = [detector.phi("n0", now + silence)
              for silence in (0.6, 1.0, 2.0, 4.0)]
    assert values == sorted(values)
    assert values[0] < values[-1]


def test_heartbeat_revives_a_suspected_node():
    detector = make_detector()
    now = feed_heartbeats(detector, "n0", 0.0, 10, 0.5)
    detector.check("n0", now + 5.0)
    assert detector.heartbeat("n0", now + 6.0) is True
    assert "n0" not in detector.suspected
    events = [t["event"] for t in detector.transitions]
    assert events == ["suspect", "revive"]
    # a routine heartbeat is not a revival
    assert detector.heartbeat("n0", now + 6.5) is False


def test_min_std_regularizes_jitterless_heartbeats():
    """Perfectly regular heartbeats have zero sample stddev; without the
    floor, phi would jump straight from 0 to infinity."""
    tight = make_detector(min_std_s=0.01)
    loose = make_detector(min_std_s=0.5)
    for detector in (tight, loose):
        feed_heartbeats(detector, "n0", 0.0, 16, 0.5)
    silence_at = 8.0 + 1.0
    assert tight.phi("n0", silence_at) > loose.phi("n0", silence_at)


def test_register_and_deregister_track_membership():
    detector = make_detector()
    detector.register("b", 0.0)
    detector.register("a", 0.0)
    assert detector.tracked() == ["a", "b"]
    detector.check("a", 10.0)
    detector.deregister("a")
    assert detector.tracked() == ["b"]
    assert "a" not in detector.suspected
    assert detector.phi("a", 11.0) == 0.0
