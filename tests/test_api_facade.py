"""Tests for the repro.api facade and the keyword-only constructors."""

import warnings

import pytest

from repro import api
from repro.experiments.parallel import RunSpec
from repro.experiments.runner import ExperimentSettings


def test_every_declared_export_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_facade_covers_the_advertised_surface():
    expected = {
        "run_traffic", "run_wordcount", "sweep", "run_grid",
        "ExperimentSettings", "RunSpec", "RunSummary", "MitigationPlan",
        "Tracer", "NullTracer", "build_traffic_job", "build_wordcount_job",
        "analyze_result", "analyze_summary", "analyze_trace",
        "to_dict", "from_dict",
    }
    assert expected <= set(api.__all__)


def test_facade_reexports_are_the_implementation_objects():
    from repro.experiments import runner
    from repro.trace import Tracer

    assert api.run_traffic is runner.run_traffic
    assert api.ExperimentSettings is runner.ExperimentSettings
    assert api.Tracer is Tracer


# ----------------------------------------------------------------------
# keyword-only constructors
# ----------------------------------------------------------------------


def test_settings_positional_args_warn_but_map_in_field_order():
    with pytest.warns(DeprecationWarning):
        settings = ExperimentSettings(120.0, 30.0, 5)
    assert settings.duration_s == 120.0
    assert settings.warmup_s == 30.0
    assert settings.seed == 5


def test_settings_keyword_args_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        settings = ExperimentSettings(duration_s=120.0, warmup_s=30.0)
        settings.with_seed(9)
        settings.seed_series(3)


def test_runspec_positional_args_warn():
    with pytest.warns(DeprecationWarning):
        spec = RunSpec("wordcount")
    assert spec.kind == "wordcount"
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        RunSpec(kind="traffic", interval_s=16.0).with_seed(3)


def test_positional_duplicate_and_overflow_raise():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError):
            ExperimentSettings(120.0, duration_s=100.0)
    with pytest.warns(DeprecationWarning):
        with pytest.raises(TypeError):
            ExperimentSettings(*range(10))
