"""Unit tests for StreamJob construction, wiring and accounting."""

import pytest

from repro.config import CheckpointConfig, ClusterConfig, CostModel
from repro.core import MitigationPlan
from repro.errors import ConfigurationError, SimulationError
from repro.stream import ConstantSource, StageSpec, StreamJob


def two_stage_job(**overrides):
    kwargs = dict(
        stages=[
            StageSpec("a", parallelism=4, state_entry_bytes=100.0,
                      distinct_keys=4000, selectivity=0.5),
            StageSpec("b", parallelism=4, state_entry_bytes=100.0,
                      distinct_keys=2000),
        ],
        source=ConstantSource(4000.0),
        cluster=ClusterConfig(num_nodes=2, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=4.0, first_at_s=4.0),
        cost=CostModel(cpu_seconds_per_message=0.0002),
        seed=3,
    )
    kwargs.update(overrides)
    return StreamJob(**kwargs)


def test_round_robin_placement():
    job = two_stage_job()
    for stage in job.stages:
        per_node = {n: len(v) for n, v in stage.instances_by_node.items()}
        assert per_node == {"node0": 2, "node1": 2}


def test_unique_stage_names_required():
    with pytest.raises(ConfigurationError):
        StreamJob(
            stages=[StageSpec("x", 1), StageSpec("x", 1)],
            source=ConstantSource(1.0),
        )


def test_empty_stage_list_rejected():
    with pytest.raises(ConfigurationError):
        StreamJob(stages=[], source=ConstantSource(1.0))


def test_expected_stage_rate_applies_selectivity():
    job = two_stage_job()
    assert job.expected_stage_rate(0) == 4000.0
    assert job.expected_stage_rate(1) == 2000.0


def test_expected_flush_bytes_saturates_at_distinct_keys():
    job = two_stage_job()
    spec = job.stages[0].spec
    expected = job.expected_flush_bytes(spec, 0)
    saturated = spec.distinct_keys_per_instance * spec.state_entry_bytes
    assert expected <= saturated


def test_initial_l0_preload_sets_counters():
    job = two_stage_job(initial_l0={"a": 2, "b": 0})
    for instance in job.stage("a").instances:
        assert instance.store.l0_file_count == 2
    for instance in job.stage("b").instances:
        assert instance.store.l0_file_count == 0


def test_initial_l0_preload_validates_range():
    with pytest.raises(ConfigurationError):
        two_stage_job(initial_l0={"a": 4})  # >= trigger


def test_initial_l0_accepts_callable():
    job = two_stage_job(initial_l0={"a": lambda inst: inst.index % 3})
    counts = [inst.store.l0_file_count for inst in job.stage("a").instances]
    assert counts == [0, 1, 2, 0]


def test_mitigation_pool_sizes_applied_to_nodes():
    job = two_stage_job(mitigation=MitigationPlan(flush_threads=2,
                                                  compaction_threads=3))
    for node in job.nodes:
        assert node.flush_pool.size == 2
        assert node.compaction_pool.size == 3


def test_source_rate_splits_across_hosting_nodes():
    job = two_stage_job()
    job.set_source_rate(4000.0)
    stage_a = job.stage("a")
    assert stage_a.flows["node0"].arrival_rate == pytest.approx(2000.0)
    assert stage_a.flows["node1"].arrival_rate == pytest.approx(2000.0)


def test_run_produces_checkpoints_flushes_and_state():
    job = two_stage_job()
    result = job.run(20.0)
    assert len(job.coordinator.records) == 5  # t = 4, 8, 12, 16, 20
    assert len(result.flush_spans()) > 0
    some_store = job.stage("a").instances[0].store
    assert some_store.stats.puts > 0  # sampled real state writes
    assert some_store.total_bytes() > 0


def test_run_twice_rejected():
    job = two_stage_job()
    job.run(5.0)
    with pytest.raises(SimulationError):
        job.run(5.0)


def test_memtable_accounting_saturates_at_distinct_keys():
    job = two_stage_job()
    job.run(20.0)
    for instance in job.stage("a").instances:
        cap = instance.spec.distinct_keys_per_instance
        assert instance.store.memtable_entries <= cap * 1.1


def test_downstream_arrival_follows_upstream_output():
    job = two_stage_job()
    job.run(12.0)
    stage_b = job.stage("b")
    total_b = sum(f.arrival_rate for f in stage_b.flows.values())
    # selectivity 0.5 on 4000 msg/s -> ~2000 msg/s entering b
    assert total_b == pytest.approx(2000.0, rel=0.05)


def test_stage_lookup_errors():
    job = two_stage_job()
    with pytest.raises(ConfigurationError):
        job.stage("nope")


def test_end_to_end_latency_has_base_floor():
    job = two_stage_job()
    result = job.run(20.0)
    _t, latency, _w = result.end_to_end_latency(start=2.0, end=20.0)
    assert latency.min() >= job.cost.base_latency_seconds - 1e-9
