"""ScenarioSpec/WorkloadSpec validation, serialization round-trips and
cache-key stability goldens for every library scenario."""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.experiments.parallel import RunSpec, cache_key_from_dict
from repro.experiments.runner import ExperimentSettings
from repro.faults import FaultPlan, FaultSpec
from repro.resilience import DEFAULT_RESILIENCE
from repro.scenarios import (
    SCENARIOS,
    SOAK_POOL,
    ScenarioSpec,
    WorkloadSpec,
    sample_scenario,
    sample_scenarios,
    scenario,
    scenario_names,
)
from repro.serialize import from_dict, roundtrip, to_dict

GOLDEN_KEYS = Path(__file__).parent / "data" / "scenario_cache_keys.json"


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------


def test_workload_rejects_unknown_arrival():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(arrival="poisson")


def test_workload_piecewise_needs_schedule():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(arrival="piecewise")


def test_workload_closed_loop_needs_clients():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(arrival="closed_loop")


def test_workload_validates_skew_entries():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(skew=((0.0, 1.5, 0),))  # fraction > 1


def test_scenario_rejects_unknown_app():
    with pytest.raises(ConfigurationError):
        ScenarioSpec(app="fraud-detection")


def test_scenario_rejects_bad_tenants():
    with pytest.raises(ConfigurationError):
        ScenarioSpec(tenants=0)


def test_scenario_coerces_nested_dicts():
    spec = ScenarioSpec(
        app="traffic",
        workload={"arrival": "constant", "rate": 1000.0},
        faults={"name": "one", "faults": [
            {"kind": "worker_crash", "at_s": 10.0, "duration_s": 1.0},
        ]},
        resilience=True,
    )
    assert isinstance(spec.workload, WorkloadSpec)
    assert isinstance(spec.faults, FaultPlan)
    assert spec.resilience == DEFAULT_RESILIENCE


def test_unknown_library_scenario_is_an_error():
    with pytest.raises(ConfigurationError):
        scenario("no-such-scenario")


# ----------------------------------------------------------------------
# serialization round-trips
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_library_scenario_roundtrips(name):
    spec = scenario(name)
    assert roundtrip(spec) == spec
    # and through plain JSON text, as the CLI / cache would store it
    payload = json.loads(json.dumps(to_dict(spec)))
    assert from_dict(ScenarioSpec, payload) == spec


def test_custom_spec_with_faults_roundtrips():
    spec = ScenarioSpec(
        name="custom",
        app="join",
        workload=WorkloadSpec(arrival="diurnal", rate=5000.0,
                              bursts=((10.0, 5.0, 2.0),)),
        faults=FaultPlan(name="p", faults=(
            FaultSpec(kind="worker_crash", at_s=30.0, duration_s=2.0),
        )),
        resilience=True,
        tenants=2,
    )
    again = roundtrip(spec)
    assert again == spec
    assert again.workload.bursts == ((10.0, 5.0, 2.0),)


def test_workload_roundtrip_preserves_tuples():
    wl = WorkloadSpec(arrival="piecewise",
                      schedule=((0.0, 100.0), (10.0, 200.0)),
                      skew=((5.0, 0.5, 1),))
    again = roundtrip(wl)
    assert again == wl
    assert isinstance(again.schedule, tuple)
    assert isinstance(again.skew, tuple)


# ----------------------------------------------------------------------
# cache keys
# ----------------------------------------------------------------------


def test_cache_keys_match_goldens():
    """The content hash of every library scenario is pinned.

    A mismatch means the scenario definition (or the key-dict schema)
    changed: previously cached results would silently no longer apply.
    If the change is intentional, regenerate the golden file (see
    tests/data/scenario_cache_keys.json)."""
    goldens = json.loads(GOLDEN_KEYS.read_text())
    assert sorted(goldens) == scenario_names()
    for name, expected in goldens.items():
        key = cache_key_from_dict(scenario(name).key_dict(),
                                  version="golden")
        assert key == expected, f"cache key drifted for scenario {name!r}"


def test_name_and_description_do_not_affect_the_key():
    spec = scenario("baseline_traffic")
    renamed = replace(spec, name="x", description="y")
    assert renamed.key_dict() == spec.key_dict()


def test_workload_change_changes_the_key():
    spec = scenario("baseline_traffic")
    faster = replace(spec, workload=replace(spec.workload, rate=61000.0))
    assert faster.key_dict() != spec.key_dict()


def test_runspec_scenario_key_is_stable_and_distinct():
    settings = ExperimentSettings(duration_s=10.0, warmup_s=2.0, seed=1)
    a = RunSpec(kind="scenario", scenario=scenario("baseline_traffic"),
                settings=settings)
    b = RunSpec(kind="scenario", scenario=scenario("windowed_join"),
                settings=settings)
    assert a.key_dict() != b.key_dict()
    # legacy specs keep their historical key shape: no scenario entry
    legacy = RunSpec(kind="traffic", settings=settings)
    assert "scenario" not in legacy.key_dict()


# ----------------------------------------------------------------------
# the library and its sampler
# ----------------------------------------------------------------------


def test_library_names_are_consistent():
    assert scenario_names() == sorted(SCENARIOS)
    for name, spec in SCENARIOS.items():
        assert spec.name == name
        assert spec.description  # the catalog depends on these


def test_soak_pool_is_a_library_subset():
    assert set(SOAK_POOL) <= set(SCENARIOS)


def test_sampler_is_deterministic_and_seed_sensitive():
    assert sample_scenario(7) == sample_scenario(7)
    names = {sample_scenario(s).name for s in range(32)}
    assert len(names) > 1  # different seeds reach different scenarios
    assert names <= set(SOAK_POOL)
    specs = sample_scenarios((1, 2, 3))
    assert [s.name for s in specs] == [sample_scenario(s).name
                                       for s in (1, 2, 3)]


def test_sampler_salt_changes_the_draws():
    draws_a = [sample_scenario(s, salt=0).name for s in range(16)]
    draws_b = [sample_scenario(s, salt=1).name for s in range(16)]
    assert draws_a != draws_b


def test_sampler_rejects_empty_pool():
    with pytest.raises(ConfigurationError):
        sample_scenario(1, pool=())
