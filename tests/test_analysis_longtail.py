"""Unit tests for spike detection and tail statistics."""

import numpy as np
import pytest

from repro.analysis import find_spikes, reduction_ratio, spike_period
from repro.errors import AnalysisError


def timeline_with_spikes(period=32.0, spike_height=2.0, floor=0.3,
                         spike_width=2.0, horizon=200.0, dt=0.25):
    times = np.arange(0.0, horizon, dt)
    values = np.full_like(times, floor)
    t = period
    while t < horizon:
        mask = (times >= t) & (times < t + spike_width)
        values[mask] = spike_height
        t += period
    return times, values


def test_find_spikes_detects_each_excursion():
    times, values = timeline_with_spikes()
    spikes = find_spikes(times, values, threshold=1.0)
    assert len(spikes) == 6  # at 32, 64, ..., 192 within 200 s
    assert all(s.peak == pytest.approx(2.0) for s in spikes)


def test_spike_period_recovers_cadence():
    times, values = timeline_with_spikes(period=32.0)
    spikes = find_spikes(times, values, threshold=1.0)
    assert spike_period(spikes) == pytest.approx(32.0, abs=0.5)


def test_nearby_excursions_merge_into_one_spike():
    times = np.arange(0.0, 10.0, 0.1)
    values = np.where((times > 2.0) & (times < 2.4), 2.0, 0.1)
    values = np.where((times > 2.6) & (times < 3.0), 1.8, values)
    spikes = find_spikes(times, values, threshold=1.0, min_gap=1.0)
    assert len(spikes) == 1
    assert spikes[0].peak == pytest.approx(2.0)


def test_no_spikes_below_threshold():
    times, values = timeline_with_spikes(spike_height=0.5)
    assert find_spikes(times, values, threshold=1.0) == []
    assert spike_period([]) is None


def test_spike_fields():
    times, values = timeline_with_spikes(period=50.0, horizon=120.0)
    spikes = find_spikes(times, values, threshold=1.0)
    spike = spikes[0]
    assert spike.start <= spike.peak_time <= spike.end
    assert spike.duration > 0


def test_mismatched_shapes_raise():
    with pytest.raises(AnalysisError):
        find_spikes(np.arange(5.0), np.arange(4.0), 1.0)


def test_reduction_ratio():
    assert reduction_ratio(2.0, 0.4) == pytest.approx(0.2)
    with pytest.raises(AnalysisError):
        reduction_ratio(0.0, 1.0)
    with pytest.raises(AnalysisError):
        reduction_ratio(1.0, -1.0)
