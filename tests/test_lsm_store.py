"""Unit tests for the LSMStore façade."""

import pytest

from repro.errors import LSMError, StoreClosedError
from repro.lsm import KiB, LSMOptions, LSMStore


def small_store(**overrides):
    defaults = dict(
        write_buffer_size=4 * KiB,
        l0_compaction_trigger=4,
        max_bytes_for_level_base=64 * KiB,
    )
    defaults.update(overrides)
    return LSMStore(LSMOptions(**defaults), "test")


def flush(store, now=0.0):
    job = store.begin_flush(now=now)
    if job is not None:
        store.finish_flush(job, now=now)
    return job


def compact_all(store, now=0.0):
    count = 0
    while True:
        job = store.pick_compaction(now=now)
        if job is None:
            return count
        store.finish_compaction(job, now=now)
        count += 1


def test_put_get_delete_through_memtable():
    store = small_store()
    store.put(b"k", b"v")
    assert store.get(b"k") == b"v"
    store.delete(b"k")
    assert store.get(b"k") is None


def test_reads_hit_sstables_after_flush():
    store = small_store()
    store.put(b"k", b"v")
    flush(store)
    assert store.memtable_bytes == 0
    assert store.l0_file_count == 1
    assert store.get(b"k") == b"v"


def test_newest_value_wins_across_memtable_and_sstables():
    store = small_store()
    store.put(b"k", b"old")
    flush(store)
    store.put(b"k", b"new")
    assert store.get(b"k") == b"new"
    flush(store)
    assert store.get(b"k") == b"new"


def test_delete_shadows_older_sstable_value():
    store = small_store()
    store.put(b"k", b"v")
    flush(store)
    store.delete(b"k")
    flush(store)
    assert store.get(b"k") is None
    compact_all(store)
    assert store.get(b"k") is None


def test_flush_of_empty_memtable_returns_none():
    store = small_store()
    assert store.begin_flush() is None


def test_compaction_triggered_at_l0_threshold():
    store = small_store(l0_compaction_trigger=3)
    for i in range(3):
        store.put(f"k{i}".encode(), b"v")
        flush(store)
    assert store.compaction_due()
    assert compact_all(store) >= 1
    assert store.l0_file_count == 0
    store.check_invariants()


def test_memtable_full_flag():
    store = small_store(write_buffer_size=100)
    assert not store.memtable_full
    store.put(b"key", b"x" * 200)
    assert store.memtable_full


def test_scan_merges_all_sources_newest_wins():
    store = small_store(l0_compaction_trigger=2)
    expected = {}
    for round_ in range(5):
        for i in range(8):
            key = f"k{i}".encode()
            value = f"r{round_}v{i}".encode()
            store.put(key, value)
            expected[key] = value
        flush(store, now=float(round_))
        compact_all(store, now=float(round_))
    store.put(b"k0", b"latest")
    expected[b"k0"] = b"latest"
    assert dict(store.scan()) == expected


def test_scan_excludes_tombstones():
    store = small_store()
    store.put(b"a", b"1")
    store.put(b"b", b"2")
    store.delete(b"a")
    assert dict(store.scan()) == {b"b": b"2"}


def test_account_feeds_flush_volume():
    store = small_store()
    store.account(100, 50_000)
    job = store.begin_flush()
    assert job is not None
    assert job.input_bytes >= 50_000
    table = store.finish_flush(job)
    assert table.logical_bytes >= 50_000


def test_live_data_cap_clamps_compaction_output():
    store = small_store(l0_compaction_trigger=2, live_data_cap_bytes=1000)
    store.account(10, 5000)
    flush(store)
    store.account(10, 5000)
    flush(store)
    compact_all(store)
    assert store.levels.level_bytes(1) <= 1000


def test_closed_store_rejects_operations():
    store = small_store()
    store.put(b"k", b"v")
    store.close()
    assert store.closed
    for operation in (
        lambda: store.put(b"a", b"b"),
        lambda: store.get(b"k"),
        lambda: store.delete(b"k"),
        lambda: store.begin_flush(),
        lambda: store.pick_compaction(),
    ):
        with pytest.raises(StoreClosedError):
            operation()


def test_finish_flush_from_other_store_rejected():
    store_a = small_store()
    store_b = small_store()
    store_a.put(b"k", b"v")
    job = store_a.begin_flush()
    with pytest.raises(LSMError):
        store_b.finish_flush(job)


def test_stats_track_operations():
    store = small_store(l0_compaction_trigger=2)
    store.put(b"a", b"1")
    store.get(b"a")
    store.delete(b"a")
    flush(store)
    store.put(b"b", b"2")
    flush(store)
    compact_all(store)
    stats = store.stats.as_dict()
    assert stats["puts"] == 2
    assert stats["gets"] == 1
    assert stats["deletes"] == 1
    assert stats["flush_count"] == 2
    assert stats["compaction_count"] >= 1
    assert stats["compaction_input_bytes"] > 0


def test_memtable_full_flush_reason_counted():
    store = small_store()
    store.put(b"k", b"v")
    job = store.begin_flush(reason="memtable-full")
    store.finish_flush(job)
    assert store.stats.memtable_full_flushes == 1


def test_total_bytes_spans_memtable_and_levels():
    store = small_store()
    store.put(b"a", b"x" * 100)
    before = store.total_bytes()
    assert before > 100
    flush(store)
    assert store.total_bytes() == pytest.approx(before, rel=0.01)


def test_cancel_compaction_releases_inputs():
    store = small_store(l0_compaction_trigger=2)
    for i in range(2):
        store.put(f"k{i}".encode(), b"v")
        flush(store)
    job = store.pick_compaction()
    assert job is not None
    store.cancel_compaction(job)
    assert store.pick_compaction() is not None
