"""Tests for declarative fault plans: validation, serialization,
seeded generation, shrinking, presets, and the loader."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    ALL_NODES,
    FAULT_KINDS,
    PRESET_PLANS,
    FaultPlan,
    FaultSpec,
    load_fault_plan,
    preset_plan,
    shrink_failing,
)
from repro.serialize import from_dict, to_dict


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="meteor_strike")
    with pytest.raises(ConfigurationError):
        FaultSpec(at_s=-1.0)
    with pytest.raises(ConfigurationError):
        FaultSpec(duration_s=0.0)
    with pytest.raises(ConfigurationError):
        FaultSpec(factor=0.0)
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="slow_disk", factor=1.5)
    # a backpressure factor above 1 is a rate increase, which is legal
    FaultSpec(kind="kafka_backpressure", factor=1.5)


def test_plan_round_trips_through_dict():
    plan = FaultPlan(
        name="mixed",
        faults=(
            FaultSpec(kind="worker_crash", at_s=10.0, duration_s=2.0, node=1),
            FaultSpec(kind="slow_disk", at_s=20.0, duration_s=3.0,
                      node=ALL_NODES, factor=0.25),
        ),
    )
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone == plan
    assert json.loads(json.dumps(plan.to_dict())) == plan.to_dict()


def test_plan_round_trips_through_serialize_registry():
    plan = preset_plan("chaos")
    payload = to_dict(plan)
    assert from_dict(FaultPlan, payload) == plan
    # @register makes the plan revivable by name, as caches store it
    assert from_dict("FaultPlan", payload) == plan
    assert from_dict("FaultSpec", to_dict(plan.faults[0])) == plan.faults[0]


def test_plan_coerces_dict_faults():
    plan = FaultPlan(name="p", faults=(
        {"kind": "flush_stall", "at_s": 5.0, "duration_s": 1.0},
    ))
    assert isinstance(plan.faults[0], FaultSpec)
    assert plan.faults[0].end_s == 6.0


def test_random_plans_are_seed_deterministic():
    a = FaultPlan.random(seed=42)
    b = FaultPlan.random(seed=42)
    c = FaultPlan.random(seed=43)
    assert a == b
    assert a != c
    assert 1 <= len(a) <= 3
    for fault in a:
        assert fault.kind in FAULT_KINDS
        assert fault.at_s >= 2.0
        assert fault.end_s <= 40.0 * 0.6 + 5.0 + 1e-9


def test_random_plans_fit_the_run_window():
    for seed in range(50):
        plan = FaultPlan.random(seed=seed, duration_s=30.0)
        for fault in plan:
            assert fault.at_s <= 18.0 + 1e-9
            assert fault.duration_s <= 5.0 + 1e-9


def test_shrink_produces_strictly_simpler_plans():
    plan = FaultPlan.random(seed=7, max_faults=3)
    total = plan_size(plan)
    candidates = list(plan.shrink())
    assert candidates
    for candidate in candidates:
        assert plan_size(candidate) < total


def plan_size(plan: FaultPlan) -> float:
    return len(plan) * 1000.0 + sum(fault.duration_s for fault in plan)


def test_shrink_failing_minimises_to_the_culprit():
    plan = FaultPlan(
        name="big",
        faults=tuple(
            FaultSpec(kind=kind, at_s=5.0 + i, duration_s=4.0, node=0)
            for i, kind in enumerate(
                ("flush_stall", "worker_crash", "compaction_stall")
            )
        ),
    )

    def still_fails(candidate: FaultPlan) -> bool:
        return any(fault.kind == "worker_crash" for fault in candidate)

    minimal = shrink_failing(plan, still_fails)
    assert [fault.kind for fault in minimal] == ["worker_crash"]
    assert minimal.faults[0].duration_s < 4.0


def test_every_preset_builds():
    for name in PRESET_PLANS:
        plan = preset_plan(name)
        assert len(plan) >= 1
        assert plan.name == name
    with pytest.raises(ConfigurationError):
        preset_plan("nope")


def test_load_fault_plan_accepts_every_form(tmp_path):
    plan = preset_plan("crash")
    assert load_fault_plan(plan) is plan
    assert load_fault_plan(plan.to_dict()) == plan
    assert load_fault_plan("crash") == plan
    inline = json.dumps(plan.to_dict())
    assert load_fault_plan(inline) == plan
    path = tmp_path / "plan.json"
    path.write_text(inline, encoding="utf-8")
    assert load_fault_plan(str(path)) == plan
    with pytest.raises(ConfigurationError):
        load_fault_plan("no-such-preset")
