"""Unit tests for activity spans and the span log."""

import pytest

from repro.metrics import ActivitySpan, SpanLog


def span(kind="flush", stage="s0", start=0.0, end=1.0, instance=0,
         node="node0", input_bytes=0):
    return ActivitySpan(
        kind=kind, name=f"{kind}-{stage}/{instance}", stage=stage,
        instance=instance, node=node, start=start, end=end,
        input_bytes=input_bytes,
    )


def test_span_duration_and_overlap():
    a = span(start=0.0, end=2.0)
    b = span(start=1.0, end=3.0)
    c = span(start=2.0, end=4.0)
    assert a.duration == 2.0
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)  # touching endpoints do not overlap
    assert a.overlap_duration(b) == pytest.approx(1.0)
    assert a.overlap_duration(c) == 0.0


def test_filtering_by_kind_stage_node_window():
    log = SpanLog()
    log.add(span(kind="flush", stage="s0", node="node0", start=0, end=1))
    log.add(span(kind="flush", stage="s1", node="node1", start=5, end=6))
    log.add(span(kind="compaction", stage="s0", node="node0", start=2, end=4))
    assert log.count(kind="flush") == 2
    assert log.count(stage="s0") == 2
    assert log.count(node="node1") == 1
    assert log.count(kind="flush", window=(4.0, 10.0)) == 1
    assert len(log) == 3


def test_total_input_bytes_and_mean_duration():
    log = SpanLog()
    log.add(span(kind="compaction", input_bytes=100, start=0, end=1))
    log.add(span(kind="compaction", input_bytes=300, start=0, end=3))
    assert log.total_input_bytes(kind="compaction") == 400
    assert log.mean_duration(kind="compaction") == pytest.approx(2.0)
    assert log.mean_duration(kind="flush") == 0.0


def test_concurrency_series_counts_overlaps():
    log = SpanLog()
    log.add(span(start=0.0, end=2.0))
    log.add(span(start=1.0, end=3.0))
    times, counts = log.concurrency_series(0.0, 4.0, dt=0.5)
    at = lambda t: counts[int(t / 0.5)]
    assert at(0.0) == 1
    assert at(1.5) == 2
    assert at(2.5) == 1
    assert at(3.5) == 0


def test_peak_concurrency():
    log = SpanLog()
    for i in range(5):
        log.add(span(start=1.0, end=2.0, instance=i))
    assert log.peak_concurrency(0.0, 3.0) == 5


def test_overlap_seconds_between_kinds():
    log = SpanLog()
    log.add(span(kind="flush", start=0.0, end=1.0))
    log.add(span(kind="compaction", start=0.5, end=2.0))
    overlap = log.overlap_seconds("flush", "compaction", 0.0, 3.0, dt=0.01)
    assert overlap == pytest.approx(0.5, abs=0.05)


def test_per_cycle_counts_assigns_by_start_time():
    log = SpanLog()
    log.add(span(kind="compaction", stage="s0", start=1.0, end=9.0))
    log.add(span(kind="compaction", stage="s0", start=8.5, end=9.0))
    log.add(span(kind="compaction", stage="s1", start=17.0, end=18.0))
    counts = log.per_cycle_counts([0.0, 8.0, 16.0], kind="compaction", stage="s0")
    assert counts == {0: 1, 1: 1, 2: 0}
    counts_s1 = log.per_cycle_counts([0.0, 8.0, 16.0], kind="compaction", stage="s1")
    assert counts_s1[2] == 1
