"""Unit tests for the traffic and wordcount workload generators."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import SentenceGenerator, TrafficModel, count_words, street_key


# ---------------------------------------------------------------- traffic

def test_traffic_model_emits_one_event_per_car():
    model = TrafficModel(num_cars=50, seed=1)
    events = list(model.events())
    assert len(events) == 50
    keys = {e.key for e in events}
    assert len(keys) == 50


def test_event_payload_size_matches_paper():
    model = TrafficModel(num_cars=5, payload_bytes=6000, seed=1)
    for event in model.events():
        assert event.size_bytes >= 6000


def test_cars_move_and_stay_in_city():
    model = TrafficModel(num_cars=30, seed=2)
    before = [(c.x, c.y) for c in model.cars]
    for _ in range(30):
        model.tick(1.0)
    after = [(c.x, c.y) for c in model.cars]
    assert before != after
    for car in model.cars:
        assert 0.0 <= car.x <= model.city_extent
        assert 0.0 <= car.y <= model.city_extent


def test_street_key_grid_mapping():
    assert street_key(0.0, 0.0, 250.0) == b"street:0:0"
    assert street_key(251.0, 499.0, 250.0) == b"street:1:1"


def test_street_densities_cover_all_cars():
    model = TrafficModel(num_cars=200, seed=3)
    densities = model.street_densities()
    assert sum(densities.values()) == 200


def test_hotspot_skew_concentrates_downtown():
    skewed = TrafficModel(num_cars=3000, hotspot_skew=3.0, seed=4)
    uniform = TrafficModel(num_cars=3000, hotspot_skew=0.0, seed=4)
    centre = skewed.city_extent / 2.0

    def mean_radius(model):
        return sum(
            ((c.x - centre) ** 2 + (c.y - centre) ** 2) ** 0.5 for c in model.cars
        ) / len(model.cars)

    assert mean_radius(skewed) < mean_radius(uniform)


def test_traffic_validation():
    with pytest.raises(ConfigurationError):
        TrafficModel(num_cars=0)
    with pytest.raises(ConfigurationError):
        TrafficModel(grid_size=0.0)


def test_traffic_deterministic_by_seed():
    a = TrafficModel(num_cars=10, seed=9)
    b = TrafficModel(num_cars=10, seed=9)
    assert [(c.x, c.y) for c in a.cars] == [(c.x, c.y) for c in b.cars]


# ---------------------------------------------------------------- wordcount

def test_sentences_have_requested_word_count():
    generator = SentenceGenerator(vocabulary_size=100, words_per_sentence=6, seed=1)
    sentence = generator.sentence()
    assert len(sentence.split()) == 6


def test_words_within_vocabulary():
    generator = SentenceGenerator(vocabulary_size=50, seed=2)
    for _ in range(500):
        word = generator.word()
        assert word.startswith("w")
        assert 0 <= int(word[1:]) < 50


def test_zipf_skew_concentrates_on_low_ranks():
    generator = SentenceGenerator(vocabulary_size=1000, zipf_s=1.2, seed=3)
    counts = {}
    for _ in range(5000):
        word = generator.word()
        counts[word] = counts.get(word, 0) + 1
    top = counts.get("w0000000", 0)
    assert top > 5000 / 1000 * 10  # far above uniform share


def test_count_words_reference():
    generator = SentenceGenerator(vocabulary_size=20, seed=4)
    records = list(generator.sentences(100))
    counts = count_words(records)
    assert sum(counts.values()) == 100 * generator.words_per_sentence


def test_wordcount_validation():
    with pytest.raises(ConfigurationError):
        SentenceGenerator(vocabulary_size=0)
    with pytest.raises(ConfigurationError):
        SentenceGenerator(words_per_sentence=0)
    with pytest.raises(ConfigurationError):
        SentenceGenerator(zipf_s=0.0)


def test_generator_deterministic_by_seed():
    a = SentenceGenerator(vocabulary_size=100, seed=7).sentence()
    b = SentenceGenerator(vocabulary_size=100, seed=7).sentence()
    assert a == b
