"""Unit tests for the §6 capacity-disturbance injectors."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import (
    ColocationInterferenceInjector,
    DvfsThrottleInjector,
    FluidFlow,
    GcPauseInjector,
    ProcessorSharingResource,
    Simulator,
)


def loaded_node(capacity=16.0, rate=30000.0):
    sim = Simulator(seed=4)
    cpu = ProcessorSharingResource(sim, "n", capacity)
    flow = FluidFlow(sim, "f", work_per_message=0.0004, max_parallelism=16.0)
    cpu.add_flow(flow)
    flow.set_arrival_rate(rate)
    return sim, cpu, flow


def test_gc_pause_stops_the_world_and_restores_capacity():
    sim, cpu, flow = loaded_node()
    gc = GcPauseInjector(interval_s=10.0, pause_s=0.3, jitter=0.0)
    gc.install(sim, cpu)
    sim.run_for(26.0)
    flow.finalize(sim.now)
    assert len(gc.windows) == 3  # at 5, 15, 25 (first_at=5)
    for _name, start, end in gc.windows:
        assert end - start == pytest.approx(0.3, abs=1e-6)
    # 0.3 s outage at 30 000 msg/s -> ~9 000 queued
    assert max(s.queue for s in flow.segments) == pytest.approx(9000.0, rel=0.05)
    assert cpu.capacity == 16.0  # restored


def test_gc_pause_causes_latency_spike():
    sim, cpu, flow = loaded_node()
    gc = GcPauseInjector(interval_s=30.0, pause_s=0.4, jitter=0.0)
    gc.install(sim, cpu)
    sim.run_for(20.0)
    flow.finalize(sim.now)
    from repro.metrics import latency_from_segments

    times, latency, _w = latency_from_segments(flow.segments, 0.0, 20.0, dt=0.01)
    assert latency.max() > 0.35  # the pause is visible end to end
    assert latency[times < 4.5].max() < 0.05  # quiet before the pause


def test_dvfs_reduces_capacity_by_factor():
    sim, cpu, _flow = loaded_node()
    dvfs = DvfsThrottleInjector(mean_interval_s=5.0, duration_s=0.5,
                                frequency_factor=0.6)
    observed = []
    dvfs.install(sim, cpu)
    sim.schedule(3.25, lambda: observed.append(cpu.capacity))  # during 1st dip
    sim.run_for(10.0)
    assert observed == [pytest.approx(16.0 * 0.6)]
    assert cpu.capacity == 16.0
    assert len(dvfs.windows) >= 1


def test_colocation_steals_share():
    sim, cpu, _flow = loaded_node()
    coloc = ColocationInterferenceInjector(steal_fraction=0.25)
    coloc.install(sim, cpu)
    sim.run_for(60.0)
    assert len(coloc.windows) >= 1
    assert cpu.capacity in (16.0, pytest.approx(12.0))


def test_overlapping_dips_do_not_compound():
    sim = Simulator(seed=1)
    cpu = ProcessorSharingResource(sim, "n", 16.0)
    injector = DvfsThrottleInjector(mean_interval_s=100.0, duration_s=1.0,
                                    frequency_factor=0.5)
    from repro.sim.process import spawn

    spawn(sim, injector._dip(sim, cpu, 0.5, 1.0))
    spawn(sim, injector._dip(sim, cpu, 0.5, 1.0), delay=0.5)
    observed = []
    sim.schedule(0.75, lambda: observed.append(cpu.capacity))
    sim.run()
    assert observed == [pytest.approx(8.0)]  # 0.5x once, not 0.25x
    assert cpu.capacity == 16.0


def test_overlap_across_different_injectors_restores_capacity():
    """Regression: a GC pause overlapping a DVFS window must not save
    the already-dipped capacity as 'undisturbed' (which would ratchet
    the node down permanently)."""
    sim = Simulator(seed=1)
    cpu = ProcessorSharingResource(sim, "n", 16.0)
    dvfs = DvfsThrottleInjector(mean_interval_s=100.0, duration_s=2.0,
                                frequency_factor=0.5)
    gc = GcPauseInjector(interval_s=100.0, pause_s=0.5)
    from repro.sim.process import spawn

    spawn(sim, dvfs._dip(sim, cpu, 0.5, 2.0))            # 0..2 at 8 cores
    spawn(sim, gc._dip(sim, cpu, 0.0, 0.5), delay=1.0)   # 1..1.5 stopped
    observed = {}
    sim.schedule(1.25, lambda: observed.setdefault("during-gc", cpu.capacity))
    sim.schedule(1.75, lambda: observed.setdefault("after-gc", cpu.capacity))
    sim.run()
    assert observed["during-gc"] < 0.1
    assert cpu.capacity == 16.0  # fully restored, not ratcheted to 8


def test_injector_validation():
    with pytest.raises(ConfigurationError):
        GcPauseInjector(interval_s=0.0)
    with pytest.raises(ConfigurationError):
        GcPauseInjector(jitter=1.5)
    with pytest.raises(ConfigurationError):
        DvfsThrottleInjector(frequency_factor=1.5)
    with pytest.raises(ConfigurationError):
        ColocationInterferenceInjector(steal_fraction=0.0)


def test_engine_integration_gc_sees_checkpoints():
    from repro.config import CheckpointConfig, ClusterConfig, CostModel
    from repro.stream import ConstantSource, StageSpec, StreamJob

    gc = GcPauseInjector(interval_s=8.0, pause_s=0.2, jitter=0.0,
                         checkpoint_bias=0.5)
    job = StreamJob(
        stages=[StageSpec("s", parallelism=2, state_entry_bytes=100.0,
                          distinct_keys=1000)],
        source=ConstantSource(1000.0),
        cluster=ClusterConfig(num_nodes=1, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=4.0, first_at_s=4.0),
        cost=CostModel(cpu_seconds_per_message=0.0002),
        disturbances=[gc],
        seed=2,
    )
    job.run(20.0)
    assert gc._checkpoint_times  # wired to the coordinator
    assert len(gc.windows) >= 1
