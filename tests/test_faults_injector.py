"""Behavioural tests for the fault injector and invariant checker on a
small two-node, two-stage job."""

import math

import pytest

from repro.config import CheckpointConfig, ClusterConfig
from repro.errors import SimulationError
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InvariantChecker,
    inject_faults,
)
from repro.faults.invariants import INVARIANTS, invariant
from repro.stream.engine import StreamJob
from repro.stream.sources import ConstantSource
from repro.stream.stage import StageSpec
from repro.trace import Tracer

DURATION = 40.0


def small_job(seed=3, faults=None, tracer=None):
    return StreamJob(
        stages=[
            StageSpec(name="a", parallelism=2, state_entry_bytes=600.0,
                      distinct_keys=3000, selectivity=0.5),
            StageSpec(name="b", parallelism=2, state_entry_bytes=400.0,
                      distinct_keys=1500, selectivity=0.0),
        ],
        source=ConstantSource(1500.0),
        cluster=ClusterConfig(num_nodes=2, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=4.0, first_at_s=4.0),
        seed=seed,
        faults=faults,
        tracer=tracer,
    )


def plan_of(*faults) -> FaultPlan:
    return FaultPlan(name="test", faults=tuple(faults))


def test_worker_crash_restores_from_last_checkpoint():
    plan = plan_of(FaultSpec(kind="worker_crash", at_s=14.0, duration_s=2.0,
                             node=0))
    job = small_job(faults=plan)
    result = job.run(DURATION)
    (event,) = job.fault_injector.events
    assert event["kind"] == "worker_crash"
    assert event["start"] == pytest.approx(14.0)
    assert event["end"] == pytest.approx(16.0)
    # the node hosts both stages' instance 0; each store-bearing
    # instance was rewound to the newest completed checkpoint (t=12)
    assert event["restores"]
    for restore in event["restores"]:
        assert restore["restored"]
        assert restore["snapshot_time"] == pytest.approx(12.0)
    assert event["rewound_to_s"] == pytest.approx(12.0)
    # the source kept producing for 14 - 12 = 2 s since the snapshot
    assert event["replayed_messages"] > 0
    assert job.coordinator.restore_events
    assert not job.invariant_checker.violations
    assert math.isfinite(result.tail_summary(start=20.0)["p50"])


def test_worker_crash_aborts_in_flight_checkpoints():
    # crash right after a trigger, before its flushes can all ack
    plan = plan_of(FaultSpec(kind="worker_crash", at_s=12.001,
                             duration_s=2.0, node=0))
    job = small_job(faults=plan)
    job.run(DURATION)
    aborted = job.coordinator.aborted
    assert len(aborted) == 1
    assert aborted[0].abort_reason == "crash:node0"
    assert aborted[0].snapshots == {}
    # late acks to the aborted checkpoint were dropped, and later
    # checkpoints completed normally (the trigger at t=40 may still be
    # in flight when the run ends)
    assert job.coordinator.in_flight <= 1
    assert any(
        record.checkpoint_id > aborted[0].checkpoint_id
        for record in job.coordinator.completed
    )
    assert not job.invariant_checker.violations


def test_flush_stall_pauses_the_pool_for_the_window():
    plan = plan_of(FaultSpec(kind="flush_stall", at_s=10.0, duration_s=6.0,
                             node=0))
    tracer = Tracer()
    job = small_job(faults=plan, tracer=tracer)
    job.run(DURATION)
    assert not job.nodes[0].flush_pool.paused
    pauses = tracer.select(cat="pool", name="pause:node0-flush")
    resumes = tracer.select(cat="pool", name="resume:node0-flush")
    assert [e.ts for e in pauses] == [pytest.approx(10.0)]
    assert [e.ts for e in resumes] == [pytest.approx(16.0)]
    assert not job.invariant_checker.violations


def test_slow_disk_dips_and_restores_device_capacity():
    plan = plan_of(FaultSpec(kind="slow_disk", at_s=10.0, duration_s=5.0,
                             node=1, factor=0.25))
    job = small_job(faults=plan)
    device = job.nodes[1].device
    before = device.capacity
    job.run(DURATION)
    assert device.capacity == pytest.approx(before)
    (event,) = job.fault_injector.events
    assert event["node"] == "node1"
    assert not job.invariant_checker.violations


def test_checkpoint_timeout_aborts_slow_checkpoints():
    # a 1 ms timeout window covering two triggers: they must abort, and
    # the coordinator's timeout reverts to the config value afterwards
    plan = plan_of(FaultSpec(kind="checkpoint_timeout", at_s=11.0,
                             duration_s=6.0, factor=0.001))
    job = small_job(faults=plan)
    job.run(DURATION)
    reasons = {record.abort_reason for record in job.coordinator.aborted}
    assert reasons == {"timeout"}
    assert len(job.coordinator.aborted) >= 1
    assert job.coordinator.timeout_s is None  # restored to the default
    assert job.coordinator.completed  # checkpoints after the window pass
    assert not job.invariant_checker.violations


def test_kafka_backpressure_throttles_and_restores_the_source():
    plan = plan_of(FaultSpec(kind="kafka_backpressure", at_s=10.0,
                             duration_s=8.0, factor=0.4))
    job = small_job(faults=plan)
    job.run(DURATION)
    (event,) = job.fault_injector.events
    assert event["end"] == pytest.approx(18.0)
    # after the window the stage-0 flows see the steady rate again
    stage0 = job.stages[0]
    total_rate = sum(flow.arrival_rate for flow in stage0.flows.values())
    assert total_rate == pytest.approx(job.source.steady_rate())
    assert not job.invariant_checker.violations


def test_fault_windows_and_trace_instants_line_up():
    plan = plan_of(FaultSpec(kind="flush_stall", at_s=10.0, duration_s=2.0,
                             node=0))
    tracer = Tracer()
    job = small_job(faults=plan, tracer=tracer)
    job.run(DURATION)
    assert job.fault_injector.windows == [
        ("flush_stall@node0", pytest.approx(10.0), pytest.approx(12.0))
    ]
    injects = tracer.select(cat="fault", name="fault-inject")
    clears = tracer.select(cat="fault", name="fault-clear")
    assert [e.ts for e in injects] == [pytest.approx(10.0)]
    assert [e.ts for e in clears] == [pytest.approx(12.0)]


def test_summary_carries_fault_report():
    plan = plan_of(FaultSpec(kind="worker_crash", at_s=14.0, duration_s=2.0,
                             node=0))
    job = small_job(faults=plan)
    result = job.run(DURATION)
    summary = result.summary()
    assert summary["faults"]["plan"]["name"] == "test"
    assert len(summary["faults"]["events"]) == 1
    assert summary["faults"]["invariant_violations"] == []
    assert result.fault_events == job.fault_injector.events
    assert result.invariant_violations == []


def test_fault_free_run_has_no_faults_key():
    job = small_job()
    result = job.run(DURATION)
    assert "faults" not in result.summary()
    assert result.fault_events == []
    assert result.invariant_violations == []


def test_double_injection_is_rejected():
    job = small_job(faults=plan_of(
        FaultSpec(kind="flush_stall", at_s=10.0, duration_s=1.0, node=0)
    ))
    with pytest.raises(SimulationError):
        inject_faults(job, "crash")


def test_invariant_checker_rejects_unknown_names():
    with pytest.raises(SimulationError):
        InvariantChecker(names=["no-such-invariant"])


def test_halt_on_violation_aborts_the_simulation():
    @invariant("test-always-fails")
    def always_fails(checker, checked_job):
        yield "synthetic failure", {}

    try:
        job = small_job()
        checker = InvariantChecker(
            names=["test-always-fails"], halt_on_violation=True
        )
        checker.install(job)
        job.run(DURATION)
        assert job.sim.aborted
        assert "test-always-fails" in job.sim.abort_reason
        assert checker.violations
        assert job.sim.now < DURATION
    finally:
        del INVARIANTS["test-always-fails"]


def test_checkpoint_timeout_during_kafka_backpressure():
    """Interaction: a checkpoint-timeout window nested inside a Kafka
    backpressure window.  Both faults must apply and clear independently
    — the source rate is restored, the coordinator's timeout reverts,
    and later checkpoints complete — with exactly-once intact."""
    plan = plan_of(
        FaultSpec(kind="kafka_backpressure", at_s=8.0, duration_s=12.0,
                  factor=0.3),
        FaultSpec(kind="checkpoint_timeout", at_s=10.0, duration_s=6.0,
                  factor=0.001),
    )
    job = small_job(faults=plan)
    job.run(DURATION)
    kinds = sorted(e["kind"] for e in job.fault_injector.events)
    assert kinds == ["checkpoint_timeout", "kafka_backpressure"]
    # checkpoints triggered while throttled *and* timing out aborted...
    assert {r.abort_reason for r in job.coordinator.aborted} == {"timeout"}
    # ...but both windows unwound cleanly: timeout back to the config
    # default, source back to the steady rate, later checkpoints pass
    assert job.coordinator.timeout_s is None
    stage0 = job.stages[0]
    total_rate = sum(flow.arrival_rate for flow in stage0.flows.values())
    assert total_rate == pytest.approx(job.source.steady_rate())
    assert any(
        record.completed_at > 20.0 for record in job.coordinator.completed
    )
    assert not job.invariant_checker.violations


def test_crash_inside_flush_stall_window():
    """Interaction: a worker crashes while its flush pool is stalled.
    The crash restarts the pool (clearing the stall's pause early); the
    stall's late resume must be absorbed, not unbalance the pool, and
    recovery must still rewind to the last completed checkpoint."""
    plan = plan_of(
        FaultSpec(kind="flush_stall", at_s=13.0, duration_s=6.0, node=0),
        FaultSpec(kind="worker_crash", at_s=15.0, duration_s=1.0, node=0),
    )
    job = small_job(faults=plan)
    job.run(DURATION)
    crash = next(
        e for e in job.fault_injector.events if e["kind"] == "worker_crash"
    )
    assert crash["restores"]
    assert crash["rewound_to_s"] == pytest.approx(12.0)
    # after both windows the pool is running: neither the stall's pause
    # nor the crash's pause survived, and the stall's resume at t=19
    # (after the restart) was forgiven rather than double-resumed
    pool = job.nodes[0].flush_pool
    assert not pool.paused
    assert not job.nodes[0].crashed
    assert not job.invariant_checker.violations


def test_identical_seed_and_plan_reproduce_event_for_event():
    plan = plan_of(
        FaultSpec(kind="worker_crash", at_s=13.0, duration_s=1.5, node=0),
        FaultSpec(kind="slow_disk", at_s=20.0, duration_s=2.0, node=1,
                  factor=0.5),
    )
    events = []
    tails = []
    for _ in range(2):
        job = small_job(seed=9, faults=plan)
        result = job.run(DURATION)
        events.append(job.fault_injector.events)
        tails.append(result.tail_summary(start=20.0))
    assert events[0] == events[1]
    assert tails[0] == tails[1]
