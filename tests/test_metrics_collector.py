"""Unit tests for the run-level metrics collector."""

import pytest

from repro.metrics import MetricsCollector
from repro.sim import (
    JobPhase,
    ProcessorSharingResource,
    SimJob,
    SimThreadPool,
    Simulator,
)


def build_scene():
    sim = Simulator()
    cpu = ProcessorSharingResource(sim, "node0", 4.0)
    pool = SimThreadPool(sim, "pool", 4)
    collector = MetricsCollector()
    collector.watch_resource(cpu)
    collector.watch_pool(pool, node="node0")
    return sim, cpu, pool, collector


def submit(sim, cpu, pool, kind, stage, instance, work=1.0, input_bytes=1000):
    pool.submit(
        SimJob(
            f"{kind}-{stage}/{instance}",
            kind,
            [JobPhase(cpu, work)],
            metadata={"stage": stage, "instance": instance,
                      "input_bytes": input_bytes},
        )
    )


def test_pool_jobs_become_spans():
    sim, cpu, pool, collector = build_scene()
    submit(sim, cpu, pool, "flush", "s0", 3)
    sim.run()
    spans = list(collector.spans)
    assert len(spans) == 1
    span = spans[0]
    assert span.kind == "flush"
    assert span.stage == "s0"
    assert span.instance == 3
    assert span.node == "node0"
    assert span.input_bytes == 1000
    assert span.end > span.start


def test_checkpoint_stats_groups_by_start_period():
    sim, cpu, pool, collector = build_scene()
    collector.note_checkpoint(0.0)
    collector.note_checkpoint(10.0)
    submit(sim, cpu, pool, "flush", "s0", 0)
    submit(sim, cpu, pool, "compaction", "s0", 0, work=2.0, input_bytes=2_000_000)
    sim.schedule(10.5, lambda: submit(sim, cpu, pool, "flush", "s1", 1))
    sim.run()
    stats = collector.checkpoint_stats()
    assert len(stats) == 2
    first, second = stats
    assert first.flush_count == {"s0": 1}
    assert first.compaction_count == {"s0": 1}
    assert first.compaction_input_mb == pytest.approx(2.0)
    assert second.flush_count == {"s1": 1}
    assert first.flush_ms["s0"] > 0
    assert first.compaction_ms["s0"] > first.flush_ms["s0"]


def test_cpu_series_single_and_mean():
    sim = Simulator()
    a = ProcessorSharingResource(sim, "node0", 4.0)
    b = ProcessorSharingResource(sim, "node1", 4.0)
    collector = MetricsCollector()
    collector.watch_resource(a)
    collector.watch_resource(b)
    from repro.sim import ResourceTask

    a.submit(ResourceTask("t", "x", work=4.0, demand=2.0))
    sim.run()
    assert collector.cpu_series("node0").value_at(1.0) == pytest.approx(2.0)
    assert collector.cpu_series("node1").value_at(1.0) == pytest.approx(0.0)
    assert collector.cpu_series(None).value_at(1.0) == pytest.approx(1.0)
    with pytest.raises(KeyError):
        collector.cpu_series("ghost")
    assert collector.node_names() == ["node0", "node1"]


def test_empty_collector_stats():
    collector = MetricsCollector()
    assert collector.checkpoint_stats() == []
