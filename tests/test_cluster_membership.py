"""Membership lifecycle on a small two-node job: install, scheduled
join/leave, rebalancing, ownership accounting and determinism."""

import pytest

from repro.cluster import ClusterSpec, MembershipEvent, install_cluster
from repro.config import CheckpointConfig, ClusterConfig
from repro.errors import ConfigurationError, SimulationError
from repro.serialize import canonical_json
from repro.stream.engine import StreamJob
from repro.stream.sources import ConstantSource
from repro.stream.stage import StageSpec
from repro.trace import Tracer

DURATION = 40.0


def small_job(seed=3, tracer=None, nodes=2):
    # parallelism 4 over 2 nodes: each node hosts two instances per
    # stage, so a join has surplus to migrate onto the new node
    return StreamJob(
        stages=[
            StageSpec(name="a", parallelism=4, state_entry_bytes=600.0,
                      distinct_keys=3000, selectivity=0.5),
            StageSpec(name="b", parallelism=4, state_entry_bytes=400.0,
                      distinct_keys=1500, selectivity=0.0),
        ],
        source=ConstantSource(1500.0),
        cluster=ClusterConfig(num_nodes=nodes, cores_per_node=4),
        checkpoint=CheckpointConfig(interval_s=4.0, first_at_s=4.0),
        seed=seed,
        tracer=tracer,
    )


def cluster_spec(*events, **kwargs):
    return ClusterSpec(events=tuple(events), **kwargs)


def hosted_partitions(job):
    hosts = {}
    for stage in job.stages:
        for node_name, instances in stage.instances_by_node.items():
            for instance in instances:
                hosts[instance.name] = node_name
    return hosts


def test_install_sets_manager_and_rejects_double_install():
    job = small_job()
    manager = install_cluster(job, cluster_spec())
    assert job.cluster_manager is manager
    assert sorted(manager.live) == ["node0", "node1"]
    with pytest.raises(SimulationError):
        install_cluster(job, cluster_spec())


def test_initial_nodes_mismatch_raises():
    job = small_job()
    with pytest.raises(ConfigurationError):
        install_cluster(job, cluster_spec(initial_nodes=3))


def test_scheduled_join_adds_a_node_and_rebalances():
    job = small_job()
    manager = install_cluster(
        job, cluster_spec(MembershipEvent(action="join", at_s=10.0, count=1))
    )
    result = job.run(DURATION)
    assert sorted(manager.live) == ["node0", "node1", "node2"]
    hosts = hosted_partitions(job)
    # the new node took at least one partition of each stage's surplus
    assert "node2" in set(hosts.values())
    # every migration completed and ownership matches physical hosting
    assert all(m["status"] == "completed" for m in manager.migrations)
    assert manager.owner == hosts
    assert manager.unowned_partitions() == []
    assert result.invariant_violations == []
    labels = [label for label, _, _ in manager.windows]
    assert labels == ["rebalance:scale-out:+1"]


def test_scheduled_leave_drains_and_retires():
    job = small_job()
    manager = install_cluster(
        job, cluster_spec(MembershipEvent(action="leave", at_s=10.0, count=1))
    )
    result = job.run(DURATION)
    assert sorted(manager.live) == ["node0"]
    assert manager.retired == ["node1"]
    hosts = hosted_partitions(job)
    assert set(hosts.values()) == {"node0"}
    assert manager.unowned_partitions() == []
    # drains ship a live snapshot: state arrives intact at the dest
    for migration in manager.migrations:
        assert migration["kind"] == "drain"
        assert migration["status"] == "completed"
        assert migration["digest_restored"] == migration["digest_source"]
    assert result.invariant_violations == []


def test_leave_keeps_at_least_one_node():
    job = small_job()
    manager = install_cluster(
        job, cluster_spec(MembershipEvent(action="leave", at_s=10.0, count=5))
    )
    job.run(30.0)
    assert sorted(manager.live) == ["node0"]


def test_migration_records_ride_the_summary():
    job = small_job()
    install_cluster(
        job, cluster_spec(MembershipEvent(action="join", at_s=10.0, count=1))
    )
    result = job.run(DURATION)
    summary = result.summary()
    assert summary["cluster"]["nodes"]["live"] == ["node0", "node1", "node2"]
    assert summary["cluster"]["migrations"]
    assert summary["cluster"]["unowned_partitions"] == []
    # a static run keeps the legacy summary shape (no cluster key)
    static = small_job().run(20.0)
    assert "cluster" not in static.summary()


def test_cluster_events_are_traced():
    tracer = Tracer()
    job = small_job(tracer=tracer)
    install_cluster(
        job, cluster_spec(MembershipEvent(action="join", at_s=10.0, count=1))
    )
    job.run(30.0)
    names = {e.name for e in tracer if e.cat == "cluster"}
    assert {"node-join", "rebalance-plan", "partition-migrate",
            "ownership-flip", "rebalance-complete"} <= names


def test_elastic_run_is_deterministic():
    """Same seed + same membership schedule => byte-identical summary."""
    def run_once():
        job = small_job(seed=7)
        install_cluster(job, cluster_spec(
            MembershipEvent(action="join", at_s=8.0, count=2),
            MembershipEvent(action="leave", at_s=24.0, count=1),
        ))
        return canonical_json(job.run(DURATION).summary())

    assert run_once() == run_once()


def test_ownership_log_is_contiguous():
    job = small_job()
    manager = install_cluster(job, cluster_spec(
        MembershipEvent(action="join", at_s=8.0, count=1),
        MembershipEvent(action="leave", at_s=20.0, count=1),
    ))
    job.run(DURATION)
    last_owner = {}
    for flip in manager.ownership_log:
        partition = flip["partition"]
        if partition in last_owner:
            assert flip["from"] == last_owner[partition]
        last_owner[partition] = flip["to"]
