"""Unit tests for stage specs, instances and blocked-fraction logic."""

import pytest

from repro.errors import ConfigurationError
from repro.lsm import LSMOptions
from repro.stream.stage import Stage, StageInstance, StageSpec


class FakeNode:
    def __init__(self, name="node0"):
        self.name = name


def spec(**overrides):
    defaults = dict(name="s0", parallelism=4, state_entry_bytes=100.0,
                    distinct_keys=400)
    defaults.update(overrides)
    return StageSpec(**defaults)


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        spec(parallelism=0)
    with pytest.raises(ConfigurationError):
        spec(selectivity=-1.0)
    with pytest.raises(ConfigurationError):
        spec(state_entry_bytes=-1.0)
    with pytest.raises(ConfigurationError):
        spec(distinct_keys=-1)
    with pytest.raises(ConfigurationError):
        spec(work_multiplier=0.0)


def test_distinct_keys_per_instance():
    assert spec(parallelism=4, distinct_keys=400).distinct_keys_per_instance == 100.0
    assert spec(distinct_keys=0).distinct_keys_per_instance == 0.0


def test_stateful_instance_gets_a_store():
    instance = StageInstance(spec(), 0, FakeNode(), LSMOptions())
    assert instance.store is not None
    assert instance.name == "s0/0"


def test_stateless_instance_has_no_store():
    instance = StageInstance(spec(stateful=False), 1, FakeNode())
    assert instance.store is None


def test_blocked_fraction_counts_flush_blocks_and_stalls():
    stage = Stage(spec(parallelism=4))
    node = FakeNode()
    instances = [StageInstance(stage.spec, i, node) for i in range(4)]
    for instance in instances:
        stage.add_instance(instance)
    assert stage.blocked_fraction("node0") == 0.0
    instances[0].blocked = True
    assert stage.blocked_fraction("node0") == 0.25
    instances[1].stall_level = 0.5
    assert stage.blocked_fraction("node0") == pytest.approx(0.375)
    instances[0].stall_level = 1.0  # blocked dominates its own stall
    assert stage.blocked_fraction("node0") == pytest.approx(0.375)


def test_blocked_fraction_of_unknown_node_is_zero():
    stage = Stage(spec())
    assert stage.blocked_fraction("nowhere") == 0.0


def test_instances_by_node_grouping():
    stage = Stage(spec(parallelism=4))
    node_a, node_b = FakeNode("a"), FakeNode("b")
    for i in range(4):
        stage.add_instance(StageInstance(stage.spec, i, node_a if i % 2 else node_b))
    assert sorted(stage.nodes()) == ["a", "b"]
    assert len(stage.instances_by_node["a"]) == 2
